#!/usr/bin/env bash
# Tier-1 gate: offline build, full test suite, and a smoke run of the
# kernel benchmark (which asserts kernel-vs-naive agreement internally).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test -q --release --offline --workspace
cargo run --release --offline -p spca-bench --bin bench_kernels -- --smoke --out /tmp/BENCH_kernels_smoke.json
echo "ci: all gates passed"
