#!/usr/bin/env bash
# Tier-1 gate: offline build, full test suite, a bounded wire-codec fuzz,
# smoke runs of the kernel, EM, fault and wire benchmarks (the first two
# assert agreement against naive/row-at-a-time references internally,
# bench_em additionally asserts worker-count bit-determinism, and bench_wire
# asserts the encoded-size contract plus bitwise decode), and the
# observability smoke: collect Chrome traces from the smoke benches and from
# a traced two-engine sPCA run, then validate all of them with the std-only
# trace_check (strict JSON + traceEvents key; benchmark result JSON is
# validated via --plain).
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE_DIR="${TRACE_DIR:-/tmp/spca-traces}"
mkdir -p "$TRACE_DIR"

# Every benchmark artifact the docs reference must actually be committed —
# a BENCH_*.json mentioned in README/DESIGN but absent at the repo root
# fails the gate (this is how BENCH_faults.json went missing once).
missing=0
for ref in $(grep -ohE 'BENCH_[A-Za-z0-9_]+\.json' README.md DESIGN.md | sort -u); do
    if [[ ! -f "$ref" ]]; then
        echo "ci: docs reference $ref but it is not committed at the repo root" >&2
        missing=1
    fi
done
[[ "$missing" -eq 0 ]] || exit 1

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test -q --release --offline --workspace
# Bounded wire-codec fuzz: the seeded round-trip property suite at a higher
# iteration count (deterministic — failures reproduce with the same seed).
WIRE_FUZZ_ITERS=512 cargo test -q --release --offline -p linalg --test wire_roundtrip
cargo run --release --offline -p spca-bench --bin bench_kernels -- \
    --smoke --out /tmp/BENCH_kernels_smoke.json --trace "$TRACE_DIR/bench_kernels.json"
cargo run --release --offline -p spca-bench --bin bench_em -- \
    --smoke --out "$TRACE_DIR/BENCH_em.json" --trace "$TRACE_DIR/bench_em.json"
# Per-arm smoke runs of the precision ladder: each asserts worker-count
# bit-determinism of its own arm and records speedup/divergence vs f64.
cargo run --release --offline -p spca-bench --bin bench_em -- \
    --smoke --precision f32 --out "$TRACE_DIR/BENCH_em_f32.json"
cargo run --release --offline -p spca-bench --bin bench_em -- \
    --smoke --precision bf16 --out "$TRACE_DIR/BENCH_em_bf16.json"
cargo run --release --offline -p spca-bench --bin bench_faults -- \
    --smoke --out "$TRACE_DIR/BENCH_faults.json"
# bench_wire covers the codec arms (v2/v3/v3q) per record family in one
# run and asserts the v3 2x bar on sparse shuffle records internally.
cargo run --release --offline -p spca-bench --bin bench_wire -- \
    --smoke --out "$TRACE_DIR/BENCH_wire.json"
cargo run --release --offline -p spca-bench --bin trace_report -- \
    --trace "$TRACE_DIR/trace_report.json" > "$TRACE_DIR/trace_report.txt"
cargo run --release --offline -p spca-bench --bin trace_check -- \
    "$TRACE_DIR/bench_kernels.json" "$TRACE_DIR/bench_em.json" \
    "$TRACE_DIR/trace_report.json" \
    --plain "$TRACE_DIR/BENCH_em.json" "$TRACE_DIR/BENCH_em_f32.json" \
    "$TRACE_DIR/BENCH_em_bf16.json" "$TRACE_DIR/BENCH_faults.json" \
    "$TRACE_DIR/BENCH_wire.json"
echo "ci: all gates passed (traces in $TRACE_DIR)"
