#!/usr/bin/env bash
# Tier-1 gate: offline build, full test suite, a bounded wire-codec fuzz,
# smoke runs of the kernel, EM, fault and wire benchmarks (the first two
# assert agreement against naive/row-at-a-time references internally,
# bench_em additionally asserts worker-count bit-determinism, and bench_wire
# asserts the encoded-size contract plus bitwise decode), and the
# observability smoke: collect Chrome traces from the smoke benches and from
# a traced two-engine sPCA run, then validate all of them with the std-only
# trace_check (strict JSON + traceEvents key; benchmark result JSON is
# validated via --plain). The fit-running producers (bench_faults,
# trace_report, spca-cli) additionally write RUN_*.json run ledgers, which
# perf_gate diffs against the committed baselines in results/baselines/.
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE_DIR="${TRACE_DIR:-/tmp/spca-traces}"
mkdir -p "$TRACE_DIR"

# Every benchmark artifact the docs reference must actually be committed —
# a BENCH_*.json mentioned in README/DESIGN but absent at the repo root
# fails the gate (this is how BENCH_faults.json went missing once).
missing=0
for ref in $(grep -ohE 'BENCH_[A-Za-z0-9_]+\.json' README.md DESIGN.md | sort -u); do
    if [[ ! -f "$ref" ]]; then
        echo "ci: docs reference $ref but it is not committed at the repo root" >&2
        missing=1
    fi
done
[[ "$missing" -eq 0 ]] || exit 1

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test -q --release --offline --workspace
# Bounded wire-codec fuzz: the seeded round-trip property suite at a higher
# iteration count (deterministic — failures reproduce with the same seed).
WIRE_FUZZ_ITERS=512 cargo test -q --release --offline -p linalg --test wire_roundtrip
cargo run --release --offline -p spca-bench --bin bench_kernels -- \
    --smoke --out /tmp/BENCH_kernels_smoke.json --trace "$TRACE_DIR/bench_kernels.json"
cargo run --release --offline -p spca-bench --bin bench_em -- \
    --smoke --out "$TRACE_DIR/BENCH_em.json" --trace "$TRACE_DIR/bench_em.json"
# Per-arm smoke runs of the precision ladder: each asserts worker-count
# bit-determinism of its own arm and records speedup/divergence vs f64.
cargo run --release --offline -p spca-bench --bin bench_em -- \
    --smoke --precision f32 --out "$TRACE_DIR/BENCH_em_f32.json"
cargo run --release --offline -p spca-bench --bin bench_em -- \
    --smoke --precision bf16 --out "$TRACE_DIR/BENCH_em_bf16.json"
cargo run --release --offline -p spca-bench --bin bench_faults -- \
    --smoke --out "$TRACE_DIR/BENCH_faults.json" --ledger "$TRACE_DIR/RUN_faults.json"
# bench_wire covers the codec arms (v2/v3/v3q) per record family in one
# run and asserts the v3 2x bar on sparse shuffle records internally.
cargo run --release --offline -p spca-bench --bin bench_wire -- \
    --smoke --out "$TRACE_DIR/BENCH_wire.json"
# bench_rpca runs the three-way PPCA-EM vs Mahout-SSVD vs randomized
# time-to-accuracy comparison and asserts the randomized arm's
# worker-count bit-determinism; its hashes/bytes gate below.
cargo run --release --offline -p spca-bench --bin bench_rpca -- \
    --smoke --out "$TRACE_DIR/BENCH_rpca.json"
# bench_scale asserts the event-engine throughput floor (1M events/sec),
# the ≤100% per-link utilization invariant at 1000 virtual nodes, and
# timing-model bit-identity of the fitted models.
cargo run --release --offline -p spca-bench --bin bench_scale -- \
    --smoke --out "$TRACE_DIR/BENCH_scale.json"
# bench_serving replays the skewed multi-tenant fit+serve mix under all
# three scheduler policies and asserts fair-share beats FIFO on the light
# tenants' p99 wait; its virtual latencies and trace hashes gate below.
cargo run --release --offline -p spca-bench --bin bench_serving -- \
    --smoke --out "$TRACE_DIR/BENCH_serving.json"
cargo run --release --offline -p spca-bench --bin trace_report -- \
    --trace "$TRACE_DIR/trace_report.json" --ledger "$TRACE_DIR/RUN_trace_report.json" \
    > "$TRACE_DIR/trace_report.txt"
# The same report under the contended (event-driven) timing model: prints
# the per-link contention tables and asserts concurrent shuffles actually
# contend. Deliberately NOT ledgered — the committed RUN_trace_report.json
# baseline is an uncontended-model artifact.
cargo run --release --offline -p spca-bench --bin trace_report -- \
    --timing contended > "$TRACE_DIR/trace_report_contended.txt"
# End-to-end ledger through the CLI: generate a small matrix, fit it with
# --ledger, and gate that artifact like any other.
cargo run --release --offline --bin spca-cli -- \
    generate tweets 400 120 --seed 5 -o /tmp/spca_ci_tweets.sm
cargo run --release --offline --bin spca-cli -- \
    fit -i /tmp/spca_ci_tweets.sm -o /tmp/spca_ci_model.txt -d 4 --iters 3 \
    --seed 11 --partitions 8 --ledger "$TRACE_DIR/RUN_cli.json"
# A fit-running producer that silently drops its run ledger is a CI
# failure even before perf_gate diffs it against the baseline.
for ledger in RUN_faults.json RUN_trace_report.json RUN_cli.json; do
    if [[ ! -s "$TRACE_DIR/$ledger" ]]; then
        echo "ci: $ledger missing or empty in $TRACE_DIR — a bench forgot its ledger" >&2
        exit 1
    fi
done
cargo run --release --offline -p spca-bench --bin trace_check -- \
    "$TRACE_DIR/bench_kernels.json" "$TRACE_DIR/bench_em.json" \
    "$TRACE_DIR/trace_report.json" \
    --plain "$TRACE_DIR/BENCH_em.json" "$TRACE_DIR/BENCH_em_f32.json" \
    "$TRACE_DIR/BENCH_em_bf16.json" "$TRACE_DIR/BENCH_faults.json" \
    "$TRACE_DIR/BENCH_wire.json" "$TRACE_DIR/BENCH_rpca.json" \
    "$TRACE_DIR/BENCH_scale.json" \
    "$TRACE_DIR/BENCH_serving.json" "$TRACE_DIR/RUN_faults.json" \
    "$TRACE_DIR/RUN_trace_report.json" "$TRACE_DIR/RUN_cli.json"
# Performance regression gate: diff the fresh ledgers and benchmark JSON
# against the committed baselines. Bit-exact on byte meters, model hashes
# and counts; a wide band on virtual-time metrics (CI machines differ —
# fixtures use 0.05, see crates/bench/src/gate.rs); host noise ignored.
cargo run --release --offline -p spca-bench --bin perf_gate -- \
    --baselines results/baselines --fresh "$TRACE_DIR" --time-band 0.75
echo "ci: all gates passed (traces in $TRACE_DIR)"
