#!/usr/bin/env bash
# Tier-1 gate: offline build, full test suite, a smoke run of the kernel
# benchmark (which asserts kernel-vs-naive agreement internally), and the
# observability smoke: collect a Chrome trace from the smoke bench and from
# a traced two-engine sPCA run, then validate both with the std-only
# trace_check (strict JSON + traceEvents key).
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE_DIR="${TRACE_DIR:-/tmp/spca-traces}"
mkdir -p "$TRACE_DIR"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test -q --release --offline --workspace
cargo run --release --offline -p spca-bench --bin bench_kernels -- \
    --smoke --out /tmp/BENCH_kernels_smoke.json --trace "$TRACE_DIR/bench_kernels.json"
cargo run --release --offline -p spca-bench --bin trace_report -- \
    --trace "$TRACE_DIR/trace_report.json" > "$TRACE_DIR/trace_report.txt"
cargo run --release --offline -p spca-bench --bin trace_check -- \
    "$TRACE_DIR/bench_kernels.json" "$TRACE_DIR/trace_report.json"
echo "ci: all gates passed (traces in $TRACE_DIR)"
