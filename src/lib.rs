//! Umbrella crate for the sPCA reproduction.
//!
//! Re-exports every workspace crate under one roof so the root-level
//! examples and integration tests can exercise the full public API the way
//! a downstream user would:
//!
//! ```
//! use spca_repro::prelude::*;
//!
//! let mut rng = Prng::seed_from_u64(7);
//! let data = lowrank::sparse_lowrank(&lowrank::LowRankSpec::small_test(), &mut rng);
//! assert!(data.rows() > 0);
//! ```

pub use baselines;
pub use dcluster;
pub use datasets;
pub use linalg;
pub use mapreduce;
pub use sparkle;
pub use spca_core;

/// The names most programs need, in one import.
pub mod prelude {
    pub use baselines::{mahout_ssvd::MahoutPca, mllib_pca::MllibPca};
    pub use baselines::{MahoutConfig, MllibConfig};
    pub use datasets::{biotext, diabetes, images, lowrank, tweets};
    pub use dcluster::{ClusterConfig, SimCluster};
    pub use linalg::{Mat, Prng, SparseMat};
    pub use spca_core::config::SmartGuess;
    pub use spca_core::{PcaModel, Spca, SpcaConfig, SpcaRun};
}
