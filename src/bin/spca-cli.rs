//! `spca-cli` — command-line front end for the sPCA reproduction.
//!
//! ```text
//! spca-cli generate tweets 20000 4000 --seed 1 -o tweets.sm
//! spca-cli info -i tweets.sm
//! spca-cli fit -i tweets.sm -o model.txt -d 10 --engine spark --iters 8
//! spca-cli fit -i tweets.sm -o model.txt -d 10 --algorithm randomized --power-iters 3
//! spca-cli transform -i tweets.sm -m model.txt -o latent.dm
//! spca-cli likelihood -i tweets.sm -m model.txt
//! ```
//!
//! Matrices use the `spca-sparse`/`spca-dense` text formats of
//! [`linalg::io`]; models use [`spca_core::PcaModel`]'s text format.

use std::process::ExitCode;

use dcluster::{ClusterConfig, SimCluster};
use linalg::{io as mio, Prng, SparseMat};
use spca_core::model::PcaModel;
use spca_core::{likelihood, Spca, SpcaConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  spca-cli generate <tweets|biotext|diabetes|images|lowrank> <rows> <cols>
           [--seed N] -o FILE
  spca-cli info -i FILE
  spca-cli fit -i DATA -o MODEL [-d N] [--engine spark|mapreduce]
           [--algorithm em|randomized] [--iters N] [--seed N] [--nodes N]
           [--partitions N] [--oversample N] [--power-iters N]
           [--precision f64|f32|bf16] [--codec v2|v3|v3q]
           [--timing uncontended|contended] [--ledger FILE]
  spca-cli transform -i DATA -m MODEL -o OUT
  spca-cli likelihood -i DATA -m MODEL
  spca-cli serve -i DATA -m MODEL [--tenants N] [--batches N]
           [--batch-rows N] [--rate R] [--policy fifo|fair|backfill]
           [--fit-jobs N] [--nodes N] [--seed N] [--queue-cap N]
           [--cache-bytes N]";

/// Minimal flag parser: positional arguments plus `--flag value` pairs.
struct Args<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix('-') {
                let name = name.strip_prefix('-').unwrap_or(name);
                let value =
                    it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name, value.as_str()));
            } else {
                positional.push(a.as_str());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flag(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }
}

fn run(raw: &[String]) -> Result<(), String> {
    let command = raw.first().map(String::as_str).ok_or("no command given")?;
    let args = Args::parse(&raw[1..])?;
    match command {
        "generate" => generate(&args),
        "info" => info(&args),
        "fit" => fit(&args),
        "transform" => transform(&args),
        "likelihood" => likelihood_cmd(&args),
        "serve" => serve(&args),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_data(args: &Args<'_>) -> Result<SparseMat, String> {
    let path = args.required("i")?;
    mio::load_sparse(path).map_err(|e| format!("{path}: {e}"))
}

fn load_model(args: &Args<'_>) -> Result<PcaModel, String> {
    let path = args.required("m")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    PcaModel::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn generate(args: &Args<'_>) -> Result<(), String> {
    let [kind, rows, cols] = args.positional[..] else {
        return Err("generate needs: <kind> <rows> <cols>".into());
    };
    let rows: usize = rows.parse().map_err(|e| format!("rows: {e}"))?;
    let cols: usize = cols.parse().map_err(|e| format!("cols: {e}"))?;
    let seed: u64 = args.numeric("seed", 42)?;
    let out = args.required("o")?;

    let mut rng = Prng::seed_from_u64(seed);
    let m = match kind {
        "tweets" => datasets::tweets::generate(rows, cols, &mut rng),
        "biotext" => datasets::biotext::generate(rows, cols, &mut rng),
        "diabetes" => datasets::diabetes::generate_sparse(rows, cols, &mut rng),
        "images" => datasets::images::generate_sparse(rows, cols, &mut rng),
        "lowrank" => {
            let spec = datasets::LowRankSpec {
                rows,
                cols,
                ..datasets::LowRankSpec::small_test()
            };
            datasets::sparse_lowrank(&spec, &mut rng)
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    mio::save_sparse(out, &m).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}: {} x {} with {} non-zeros", m.rows(), m.cols(), m.nnz());
    Ok(())
}

fn info(args: &Args<'_>) -> Result<(), String> {
    let m = load_data(args)?;
    println!("rows     : {}", m.rows());
    println!("columns  : {}", m.cols());
    println!("non-zeros: {}", m.nnz());
    println!("density  : {:.6}%", 100.0 * m.density());
    let means = m.col_means();
    let max_mean = means.iter().cloned().fold(0.0_f64, f64::max);
    println!("max column mean: {max_mean:.4}");
    Ok(())
}

fn fit(args: &Args<'_>) -> Result<(), String> {
    let y = load_data(args)?;
    let out = args.required("o")?;
    let d: usize = args.numeric("d", 10)?;
    let iters: usize = args.numeric("iters", 10)?;
    let seed: u64 = args.numeric("seed", 0x5bca)?;
    let nodes: usize = args.numeric("nodes", 8)?;
    let engine = args.flag("engine").unwrap_or("spark");

    let mut cluster_cfg = ClusterConfig::paper_cluster().with_nodes(nodes);
    if let Some(codec) = args.flag("codec") {
        let codec = linalg::WireCodec::parse(codec)
            .ok_or_else(|| format!("--codec: unknown codec {codec:?} (use v2|v3|v3q)"))?;
        cluster_cfg = cluster_cfg.with_wire_codec(codec);
    }
    if let Some(timing) = args.flag("timing") {
        let timing = dcluster::TimingModel::parse(timing).ok_or_else(|| {
            format!("--timing: unknown model {timing:?} (use uncontended|contended)")
        })?;
        cluster_cfg = cluster_cfg.with_timing(timing);
    }
    let cluster = SimCluster::new(cluster_cfg);
    let mut config = SpcaConfig::new(d).with_max_iters(iters).with_seed(seed);
    if let Some(parts) = args.flag("partitions") {
        config = config.with_partitions(parts.parse().map_err(|e| format!("--partitions: {e}"))?);
    }
    if let Some(precision) = args.flag("precision") {
        let precision = linalg::Precision::parse(precision)
            .ok_or_else(|| format!("--precision: unknown arm {precision:?} (use f64|f32|bf16)"))?;
        config = config.with_precision(precision);
    }
    if let Some(alg) = args.flag("algorithm") {
        let alg = spca_core::Algorithm::parse(alg)
            .ok_or_else(|| format!("--algorithm: unknown algorithm {alg:?} (use em|randomized)"))?;
        config = config.with_algorithm(alg);
    }
    if let Some(p) = args.flag("oversample") {
        config = config.with_rpca_oversample(p.parse().map_err(|e| format!("--oversample: {e}"))?);
    }
    if let Some(q) = args.flag("power-iters") {
        config =
            config.with_rpca_power_iters(q.parse().map_err(|e| format!("--power-iters: {e}"))?);
    }
    config.validate(y.cols()).map_err(|e| e.to_string())?;

    // --ledger FILE: capture a versioned machine-readable run ledger of
    // the fit (config fingerprint, per-iteration telemetry, category
    // attribution) — the artifact perf_gate diffs against baselines.
    let ledger_path = args.flag("ledger");
    let ledger_collector = ledger_path.map(|_| {
        obs::ledger::install_sink();
        obs::install_new()
    });

    let run = match engine {
        "spark" => Spca::new(config).fit_spark(&cluster, &y),
        "mapreduce" | "mr" => Spca::new(config).fit_mapreduce(&cluster, &y),
        other => return Err(format!("unknown engine {other:?} (use spark|mapreduce)")),
    }
    .map_err(|e| e.to_string())?;

    if let (Some(path), Some(c)) = (ledger_path, ledger_collector) {
        let _ = obs::uninstall();
        let ledger = obs::ledger::RunLedger {
            tool: "spca-cli".to_string(),
            runs: obs::ledger::drain_sink(),
            dropped_events: c.dropped(),
            nesting_violations: c.nesting_violations(),
            collector_registry: c.registry().snapshot(),
        };
        std::fs::write(path, ledger.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("run ledger written to: {path}");
    }

    std::fs::write(out, run.model.to_text()).map_err(|e| format!("{out}: {e}"))?;
    println!("fit {} components on the {engine} engine:", run.model.output_dim());
    for it in &run.iterations {
        println!(
            "  iter {:>2}: error {:.4}  ss {:.5}  t={:.1}s",
            it.iteration, it.error, it.ss, it.virtual_time_secs
        );
    }
    println!("simulated time    : {:.1} s", run.virtual_time_secs);
    if let Some(engine) = cluster.engine_stats() {
        let peak = cluster.link_stats().iter().map(|l| l.peak_util).fold(0.0_f64, f64::max);
        println!(
            "contended engine  : {} events, {} rate re-solves, peak link util {:.1}%",
            engine.events,
            engine.resolves,
            100.0 * peak
        );
    }
    println!("intermediate data : {} bytes", run.intermediate_bytes);
    println!("model written to  : {out}");
    Ok(())
}

fn transform(args: &Args<'_>) -> Result<(), String> {
    let y = load_data(args)?;
    let model = load_model(args)?;
    let out = args.required("o")?;
    let x = model.transform_sparse(&y).map_err(|e| e.to_string())?;
    mio::save_dense(out, &x).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}: {} x {} latent coordinates", x.rows(), x.cols());
    Ok(())
}

/// Replays a multi-tenant serving mix on the simulated cluster: N
/// tenants answer batched transform requests against MODEL (drawn from
/// DATA's rows), optionally interleaved with background fit jobs, under
/// the selected job scheduler. All reported latencies are virtual
/// (modeled) time and bitwise reproducible for a given seed.
fn serve(args: &Args<'_>) -> Result<(), String> {
    use spca_core::serving::{run_serving, FitJob, ServeLoad, ServeSpec, TenantWorkload};

    let y = std::sync::Arc::new(load_data(args)?);
    let model = load_model(args)?;
    if y.cols() != model.input_dim() {
        return Err(format!(
            "data has {} columns but the model expects {}",
            y.cols(),
            model.input_dim()
        ));
    }
    let tenants: usize = args.numeric("tenants", 2)?;
    let batches: usize = args.numeric("batches", 100)?;
    let batch_rows: usize = args.numeric("batch-rows", 8)?;
    let rate: f64 = args.numeric("rate", 50.0)?;
    let fit_jobs: usize = args.numeric("fit-jobs", 0)?;
    let nodes: usize = args.numeric("nodes", 8)?;
    let seed: u64 = args.numeric("seed", 0x5eaf)?;
    let policy = args.flag("policy").unwrap_or("fair");
    let policy = dcluster::SchedulerPolicy::parse(policy)
        .ok_or_else(|| format!("--policy: unknown policy {policy:?} (use fifo|fair|backfill)"))?;

    let mut cluster_cfg = ClusterConfig::paper_cluster()
        .with_nodes(nodes)
        .with_scheduler(policy)
        .with_fair_share_weights(vec![1.0; tenants + 1]);
    if let Some(cap) = args.flag("queue-cap") {
        cluster_cfg = cluster_cfg
            .with_admission_queue_capacity(cap.parse().map_err(|e| format!("--queue-cap: {e}"))?);
    }
    if let Some(bytes) = args.flag("cache-bytes") {
        cluster_cfg = cluster_cfg
            .with_model_cache_bytes(bytes.parse().map_err(|e| format!("--cache-bytes: {e}"))?);
    }
    let cluster = SimCluster::new(cluster_cfg);
    let total_cores = cluster.config().total_cores();

    let mut spec = ServeSpec::new(seed);
    let mut background = TenantWorkload { name: "background".into(), ..Default::default() };
    for i in 0..fit_jobs {
        background.fit_jobs.push(FitJob {
            id: format!("background-{i}"),
            submit_secs: 0.01 * i as f64,
            cores: total_cores,
            y: std::sync::Arc::clone(&y),
            config: SpcaConfig::new(model.output_dim()).with_max_iters(3).with_seed(seed),
        });
    }
    spec.tenants.push(background);
    for t in 0..tenants {
        spec.tenants.push(TenantWorkload {
            name: format!("tenant-{t}"),
            fit_jobs: vec![],
            serve: Some(ServeLoad {
                pool: std::sync::Arc::clone(&y),
                batches,
                batch_rows,
                rate_per_sec: rate,
                start_secs: 0.0,
            }),
            model: Some(model.clone()),
        });
    }

    let out = run_serving(&cluster, &spec).map_err(|e| e.to_string())?;
    println!("scheduler {policy}: {} fit jobs dispatched, {} rejected", out.schedule.records.len(), out.schedule.rejected.len());
    println!(
        "served {} requests in {} batches ({} rejected) across {nodes} nodes",
        out.requests_total, out.batches_total, out.rejected_total
    );
    for t in &out.tenants {
        if t.requests == 0 && t.jobs_completed == 0 {
            continue;
        }
        println!(
            "  {:<12} jobs {} (wait {:.2}s, run {:.2}s)  requests {:>8}  qps {:>8.1}  \
             cache hit {:>5.1}%  p50 {:.4}s  p99 {:.4}s",
            t.name,
            t.jobs_completed,
            t.wait_secs_total,
            t.run_secs_total,
            t.requests,
            t.qps,
            100.0 * t.cache_hit_rate(),
            t.latency_p50_secs,
            t.latency_p99_secs,
        );
    }
    println!("model pushes      : {} ({} re-broadcasts)", out.broadcasts, out.rebroadcasts);
    println!("virtual p50 / p99 : {:.4} s / {:.4} s", out.latency_p50_secs, out.latency_p99_secs);
    println!("virtual makespan  : {:.1} s", out.makespan_secs);
    println!("trace hash        : {:#018x}", out.trace_hash);
    Ok(())
}

fn likelihood_cmd(args: &Args<'_>) -> Result<(), String> {
    let y = load_data(args)?;
    let model = load_model(args)?;
    let ll = likelihood::avg_log_likelihood(&y, &model).map_err(|e| e.to_string())?;
    println!("average log-likelihood per row: {ll:.6}");
    Ok(())
}
