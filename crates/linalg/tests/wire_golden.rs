//! Golden-blob conformance fixtures for the wire format.
//!
//! Each fixture is a committed hex string captured from the version-1
//! encoder. The tests pin the format in both directions:
//!
//! * **encoder conformance** — encoding the documented value reproduces the
//!   fixture byte-for-byte, so an accidental layout change (varint width,
//!   field order, delta base) fails loudly instead of silently re-encoding
//!   old data differently;
//! * **decoder conformance** — the fixture decodes back to the documented
//!   value, so blobs written by any v1 encoder stay readable.
//!
//! The companion SPCACKPT-v1 checkpoint fixture lives with the checkpoint
//! codec in `spca-core` (`checkpoint::tests::v1_golden_blob_still_decodes`).
//! If a fixture here ever needs to change, that is a format break: bump
//! `wire::WIRE_VERSION` and keep the old decoder path.

use linalg::bytes::SparseUpdate;
use linalg::wire::{
    decode_framed, decode_framed_v3, encode_framed, encode_framed_v3, Wire, WireError,
    WIRE_VERSION, WIRE_VERSION_V3,
};
use linalg::{Mat, SparseMat};

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd hex fixture");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("bad hex fixture"))
        .collect()
}

fn assert_golden<T: Wire>(value: &T, hex: &str, what: &str) -> T {
    let blob = unhex(hex);
    assert_eq!(value.encode(), blob, "{what}: encoder no longer reproduces the fixture");
    assert_eq!(value.encoded_size(), blob.len() as u64, "{what}: size contract");
    T::decode(&blob).unwrap_or_else(|e| panic!("{what}: fixture no longer decodes: {e}"))
}

#[test]
fn golden_u64_varint() {
    // 624485 is the canonical LEB128 worked example: 0xE5 0x8E 0x26.
    let back = assert_golden(&624_485u64, "e58e26", "u64");
    assert_eq!(back, 624_485);
}

#[test]
fn golden_f64_negative_zero() {
    // Raw IEEE-754 little-endian bits; -0.0 keeps its sign bit.
    let back = assert_golden(&-0.0f64, "0000000000000080", "f64");
    assert_eq!(back.to_bits(), (-0.0f64).to_bits());
}

#[test]
fn golden_vec_f64_with_nan_payload() {
    // varint len 3, then raw bits: 1.0, quiet NaN 0x7ff8…, -2.5.
    let v = vec![1.0, f64::from_bits(0x7ff8_0000_0000_0000), -2.5];
    let back = assert_golden(
        &v,
        "03000000000000f03f000000000000f87f00000000000004c0",
        "Vec<f64>",
    );
    let bits: Vec<u64> = back.iter().map(|x| x.to_bits()).collect();
    assert_eq!(bits, v.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
}

#[test]
fn golden_key_value_pair() {
    // Shuffle record shape: varint key 300 (0xAC 0x02), then 1.5 raw bits.
    let back = assert_golden(&(300u32, 1.5f64), "ac02000000000000f83f", "(u32, f64)");
    assert_eq!(back, (300, 1.5));
}

#[test]
fn golden_option_tag() {
    // 1-byte presence tag, then varint 128 (0x80 0x01).
    let back = assert_golden(&Some(128u64), "018001", "Option<u64>");
    assert_eq!(back, Some(128));
}

#[test]
fn golden_dense_mat() {
    // varint rows 2, cols 3, then 6 raw f64s row-major.
    let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let back = assert_golden(
        &m,
        "0203000000000000f03f000000000000004000000000000008400000000000001040\
         00000000000014400000000000001840",
        "Mat",
    );
    assert_eq!(back.data(), m.data());
}

#[test]
fn golden_sparse_mat_delta_indices() {
    // Layout: rows 3, cols 8, nnz 3; per row varint length then
    // delta-encoded indices (first absolute, then gap−1): row 0 holds
    // columns {1, 4} → 02 01 02; row 1 is empty → 00; row 2 holds {7} →
    // 01 07; then the three values' raw bits (0.5, −0.25, 1e−3).
    let m = SparseMat::from_rows(
        3,
        8,
        vec![vec![(1, 0.5), (4, -0.25)], vec![], vec![(7, 1e-3)]],
    );
    let back = assert_golden(
        &m,
        "030803020102000107000000000000e03f000000000000d0bffca9f1d24d62503f",
        "SparseMat",
    );
    assert_eq!(back, m);
}

#[test]
fn golden_sparse_update() {
    // varint entry count, then per entry: varint index, varint row length,
    // raw f64s. Index 700 encodes as 0xBC 0x05; its row is empty.
    let u = SparseUpdate { entries: vec![(2, vec![0.5, -0.5]), (700, vec![])] };
    let back = assert_golden(
        &u,
        "020202000000000000e03f000000000000e0bfbc0500",
        "SparseUpdate",
    );
    assert_eq!(back, u);
}

#[test]
fn golden_framed_blob() {
    // "SPWR" magic, version 1 little-endian u16, then the payload (1×1
    // matrix holding 42.0).
    let m = Mat::from_vec(1, 1, vec![42.0]);
    let blob = unhex("53505752010001010000000000004540");
    assert_eq!(encode_framed(&m), blob, "framed encoder drifted");
    let back: Mat = decode_framed(&blob).expect("framed fixture decodes");
    assert_eq!(back.data(), m.data());
    assert_eq!(&blob[..4], b"SPWR", "magic is the literal ASCII tag");
}

// ---- v3 fast path fixtures ----
//
// The v3 body is a different layout behind the same magic: version 3
// frames, bitpacked index deltas, mode-tagged f64 payloads. These
// fixtures pin the v3 layout with the same encoder/decoder conformance
// contract as the v1 ones above.

fn assert_golden_v3<T: Wire>(value: &T, quantize: bool, hex: &str, what: &str) -> T {
    let blob = unhex(hex);
    assert_eq!(value.encode_v3(quantize), blob, "{what}: v3 encoder drifted");
    assert_eq!(value.encoded_size_v3(quantize), blob.len() as u64, "{what}: v3 size contract");
    T::decode_v3(&blob).unwrap_or_else(|e| panic!("{what}: v3 fixture no longer decodes: {e}"))
}

#[test]
fn golden_v3_vec_integral_payload() {
    // len 4, mode 02 (zigzag integers): 1→02, 0→00, −3→05, 250→500=F4 03.
    let v = vec![1.0f64, 0.0, -3.0, 250.0];
    let back = assert_golden_v3(&v, false, "0402020005f403", "Vec<f64> INT");
    assert_eq!(back, v);
}

#[test]
fn golden_v3_vec_raw_and_quantized_payloads() {
    // Fractional values: lossless arm keeps mode 00 (raw f64 bits)...
    let v = vec![0.5f64, -0.25];
    let back =
        assert_golden_v3(&v, false, "0200000000000000e03f000000000000d0bf", "Vec<f64> RAW");
    assert_eq!(back, v);
    // ...while the quantized arm switches to mode 01 (f32 LE bits):
    // 0.5 → 3F000000, −0.25 → BE800000. Exactly representable, so even
    // the lossy arm round-trips these two.
    let back = assert_golden_v3(&v, true, "02010000003f000080be", "Vec<f64> F32");
    assert_eq!(back, v);
    // π genuinely loses precision: comes back as the nearest f32.
    let pi = vec![std::f64::consts::PI];
    let back = assert_golden_v3(&pi, true, "0101db0f4940", "Vec<f64> F32 lossy");
    assert_eq!(back[0].to_bits(), f64::from(std::f64::consts::PI as f32).to_bits());
}

#[test]
fn golden_v3_sparse_mat_bitpacked_indices() {
    // rows 3, cols 8, nnz 3; row {1,4}: first 1, width 2 (gap−1 = 2),
    // one 2-bit delta → 02 01 02 02; empty row → 00; row {7}: single
    // index, varint only → 01 07; values: mode 02, three zigzag 1s.
    let m = SparseMat::from_rows(3, 8, vec![vec![(1, 1.0), (4, 1.0)], vec![], vec![(7, 1.0)]]);
    let back = assert_golden_v3(&m, false, "0308030201020200010702020202", "SparseMat v3");
    assert_eq!(back, m);
    // A 12-byte-per-nnz v2 record vs ~2 bytes in v3 on this shape.
    assert!(m.encoded_size_v3(false) * 2 <= m.encoded_size());
}

#[test]
fn golden_v3_sparse_mat_wide_deltas() {
    // Indices {3, 10, 500} in 1000 columns: gaps−1 are 6 and 489, so the
    // bit width is 9; the two 9-bit deltas pack LSB-first into 06 D2 03.
    let m = SparseMat::from_rows(1, 1000, vec![vec![(3, 1.0), (10, 1.0), (500, 1.0)]]);
    let back = assert_golden_v3(&m, false, "01e8070303030906d20302020202", "SparseMat wide");
    assert_eq!(back, m);
}

#[test]
fn golden_v3_framed_blob_and_cross_version_rejection() {
    // Same "SPWR" magic, version 3 little-endian, then the v3 body:
    // 1×1 matrix of 42.0 → integral payload, 2 bytes instead of 8.
    let m = Mat::from_vec(1, 1, vec![42.0]);
    let blob = unhex("53505752030001010254");
    assert_eq!(encode_framed_v3(&m, false), blob, "framed v3 encoder drifted");
    let back: Mat = decode_framed_v3(&blob).expect("framed v3 fixture decodes");
    assert_eq!(back.data(), m.data());

    // The typed cross-version contract: each decoder rejects the other
    // generation's frames with BadVersion, never a silent mis-decode.
    assert_eq!(
        decode_framed::<Mat>(&blob),
        Err(WireError::BadVersion(WIRE_VERSION_V3)),
        "v2 decoder must reject v3 frames"
    );
    let v2_blob = unhex("53505752010001010000000000004540");
    assert_eq!(
        decode_framed_v3::<Mat>(&v2_blob),
        Err(WireError::BadVersion(WIRE_VERSION)),
        "v3 decoder must reject v2 frames"
    );
}
