//! Randomized round-trip property suite for every `linalg::wire` type.
//!
//! Each case draws seeded values (degenerate shapes included: empty
//! containers, all-zero sparse rows, NaN/±Inf/-0.0 payloads, arbitrary
//! f64 bit patterns) and asserts two invariants the metered paths rely on:
//!
//! 1. `encoded_size() == encode().len()` — meters charge exactly what the
//!    codec produces;
//! 2. `decode(encode(v))` is *bitwise* identical to `v` — shipping a value
//!    through the wire never perturbs the arithmetic.
//!
//! Iteration count is bounded and overridable: set `WIRE_FUZZ_ITERS` to run
//! a longer fuzz (the CI smoke gate does). The seed is fixed, so failures
//! reproduce deterministically.

use linalg::bytes::SparseUpdate;
use linalg::wire::{
    decode_framed, decode_framed_v3, encode_framed, encode_framed_v3, framed_size, framed_size_v3,
    Wire,
};
use linalg::{Mat, Prng, SparseMat};

fn iters() -> u64 {
    std::env::var("WIRE_FUZZ_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Draws an f64 biased toward the encodings' edge cases.
fn edge_f64(rng: &mut Prng) -> f64 {
    match rng.index(8) {
        0 => 0.0,
        1 => -0.0,
        2 => f64::NAN,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => -1e-300,
        // Arbitrary bit pattern — exercises payload NaNs and subnormals.
        6 => f64::from_bits(rng.next_u64()),
        _ => rng.normal(),
    }
}

/// Encodes, checks the size contract, decodes, checks full consumption.
fn roundtrip<T: Wire>(v: &T) -> T {
    let bytes = v.encode();
    assert_eq!(
        bytes.len() as u64,
        v.encoded_size(),
        "encoded_size() must equal encode().len()"
    );
    T::decode(&bytes).expect("decode of a fresh encoding must succeed")
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length drift");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit drift at {i}");
    }
}

fn assert_sparse_bits_eq(a: &SparseMat, b: &SparseMat) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    assert_eq!(a.nnz(), b.nnz());
    for r in 0..a.rows() {
        let (ra, rb) = (a.row(r), b.row(r));
        assert_eq!(ra.indices, rb.indices, "row {r}: index drift");
        assert_bits_eq(ra.values, rb.values, "sparse row values");
    }
}

#[test]
fn f64_roundtrip_preserves_every_bit_pattern() {
    let mut rng = Prng::seed_from_u64(0x51ca_0001);
    for _ in 0..iters() {
        let v = edge_f64(&mut rng);
        assert_eq!(roundtrip(&v).to_bits(), v.to_bits());
    }
}

#[test]
fn varint_scalars_roundtrip_across_magnitudes() {
    let mut rng = Prng::seed_from_u64(0x51ca_0002);
    for boundary in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
        assert_eq!(roundtrip(&boundary), boundary);
    }
    for _ in 0..iters() {
        // Shift drags the value across every varint length class.
        let v = rng.next_u64() >> rng.index(64);
        assert_eq!(roundtrip(&v), v);
        let v32 = v as u32;
        assert_eq!(roundtrip(&v32), v32);
        let vus = v as usize;
        assert_eq!(roundtrip(&vus), vus);
    }
}

#[test]
fn vec_f64_roundtrip_including_empty_and_single() {
    let mut rng = Prng::seed_from_u64(0x51ca_0003);
    for _ in 0..iters() {
        let len = match rng.index(4) {
            0 => 0,
            1 => 1,
            _ => rng.index(64),
        };
        let v: Vec<f64> = (0..len).map(|_| edge_f64(&mut rng)).collect();
        assert_bits_eq(&roundtrip(&v), &v, "Vec<f64>");
    }
}

#[test]
fn tuple_and_option_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x51ca_0004);
    for _ in 0..iters() {
        let pair = (rng.next_u64() as u32, edge_f64(&mut rng));
        let back = roundtrip(&pair);
        assert_eq!(back.0, pair.0);
        assert_eq!(back.1.to_bits(), pair.1.to_bits());

        let opt = if rng.index(2) == 0 { None } else { Some(rng.next_u64()) };
        assert_eq!(roundtrip(&opt), opt);
    }
    assert_eq!(roundtrip(&()), ());
}

#[test]
fn mat_roundtrip_including_degenerate_shapes() {
    let mut rng = Prng::seed_from_u64(0x51ca_0005);
    for (rows, cols) in [(0, 0), (0, 5), (5, 0), (1, 1)] {
        let m = Mat::zeros(rows, cols);
        let back = roundtrip(&m);
        assert_eq!((back.rows(), back.cols()), (rows, cols));
    }
    for _ in 0..iters() {
        let rows = rng.index(7);
        let cols = rng.index(7);
        let m = Mat::from_fn(rows, cols, |_, _| edge_f64(&mut rng));
        let back = roundtrip(&m);
        assert_eq!((back.rows(), back.cols()), (rows, cols));
        assert_bits_eq(back.data(), m.data(), "Mat");
    }
}

#[test]
fn sparse_mat_roundtrip_including_degenerate_shapes() {
    // Fixed degenerate shapes first.
    let degenerates = [
        SparseMat::from_rows(0, 0, vec![]),
        SparseMat::from_rows(0, 17, vec![]),
        SparseMat::from_rows(3, 9, vec![vec![], vec![], vec![]]),
        // All-zero rows: `from_rows` drops the zero values, leaving empty rows.
        SparseMat::from_rows(2, 4, vec![vec![(0, 0.0), (3, 0.0)], vec![(1, 0.0)]]),
        SparseMat::from_rows(1, 1, vec![vec![(0, -1e-9)]]),
    ];
    for m in &degenerates {
        assert_sparse_bits_eq(&roundtrip(m), m);
    }

    let mut rng = Prng::seed_from_u64(0x51ca_0006);
    for _ in 0..iters() {
        let rows = 1 + rng.index(12);
        let cols = 1 + rng.index(40);
        let entries: Vec<Vec<(u32, f64)>> = (0..rows)
            .map(|_| {
                let k = rng.index(cols + 1);
                rng.sample_indices(cols, k)
                    .into_iter()
                    .map(|c| {
                        // Nonzero, NaN/Inf-capable values; zeros are dropped
                        // by the constructor so they can't survive either way.
                        let mut v = edge_f64(&mut rng);
                        if v == 0.0 {
                            v = 1.0;
                        }
                        (c as u32, v)
                    })
                    .collect()
            })
            .collect();
        let m = SparseMat::from_rows(rows, cols, entries);
        assert_sparse_bits_eq(&roundtrip(&m), &m);
    }
}

#[test]
fn sparse_update_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x51ca_0007);
    assert_eq!(roundtrip(&SparseUpdate::default()), SparseUpdate::default());
    for _ in 0..iters() {
        let entries: Vec<(u32, Vec<f64>)> = (0..rng.index(6))
            .map(|_| {
                let idx = (rng.next_u64() >> rng.index(64)) as u32;
                let row: Vec<f64> = (0..rng.index(8)).map(|_| edge_f64(&mut rng)).collect();
                (idx, row)
            })
            .collect();
        let u = SparseUpdate { entries };
        let back = roundtrip(&u);
        assert_eq!(back.entries.len(), u.entries.len());
        for ((ia, ra), (ib, rb)) in back.entries.iter().zip(&u.entries) {
            assert_eq!(ia, ib);
            assert_bits_eq(ra, rb, "SparseUpdate row");
        }
    }
}

#[test]
fn framed_blobs_roundtrip_and_size_contract_holds() {
    let mut rng = Prng::seed_from_u64(0x51ca_0008);
    for _ in 0..iters().min(16) {
        let m = Mat::from_fn(1 + rng.index(4), 1 + rng.index(4), |_, _| edge_f64(&mut rng));
        let blob = encode_framed(&m);
        assert_eq!(blob.len() as u64, framed_size(&m));
        let back: Mat = decode_framed(&blob).expect("framed decode");
        assert_bits_eq(back.data(), m.data(), "framed Mat");
    }
}

/// Encodes via the v3 fast path, checks the size contract, decodes.
fn roundtrip_v3<T: Wire>(v: &T, quantize: bool) -> T {
    let bytes = v.encode_v3(quantize);
    assert_eq!(
        bytes.len() as u64,
        v.encoded_size_v3(quantize),
        "encoded_size_v3() must equal encode_v3().len()"
    );
    T::decode_v3(&bytes).expect("v3 decode of a fresh encoding must succeed")
}

/// Lossless v3 is bitwise: the integral fast mode only fires when the
/// zigzag re-expansion reproduces the exact f64 bits, so -0.0, NaN and
/// subnormals all fall back to raw mode and survive untouched.
#[test]
fn v3_lossless_roundtrip_is_bitwise() {
    let mut rng = Prng::seed_from_u64(0x51ca_000a);
    for _ in 0..iters() {
        let v: Vec<f64> = (0..rng.index(64)).map(|_| edge_f64(&mut rng)).collect();
        assert_bits_eq(&roundtrip_v3(&v, false), &v, "Vec<f64> v3");

        // Integral-heavy vectors hit the zigzag mode; verify it too.
        let ints: Vec<f64> =
            (0..1 + rng.index(32)).map(|_| (rng.next_u64() >> 40) as f64 - 8000.0).collect();
        assert_bits_eq(&roundtrip_v3(&ints, false), &ints, "Vec<f64> v3 INT");

        let m = Mat::from_fn(rng.index(6), rng.index(6), |_, _| edge_f64(&mut rng));
        assert_bits_eq(roundtrip_v3(&m, false).data(), m.data(), "Mat v3");
    }
    let mut rng = Prng::seed_from_u64(0x51ca_000b);
    for _ in 0..iters() {
        let rows = 1 + rng.index(10);
        let cols = 1 + rng.index(600);
        let entries: Vec<Vec<(u32, f64)>> = (0..rows)
            .map(|_| {
                let k = rng.index((cols / 4).max(2));
                rng.sample_indices(cols, k)
                    .into_iter()
                    .map(|c| {
                        let mut v = edge_f64(&mut rng);
                        if v == 0.0 {
                            v = 1.0;
                        }
                        (c as u32, v)
                    })
                    .collect()
            })
            .collect();
        let m = SparseMat::from_rows(rows, cols, entries);
        assert_sparse_bits_eq(&roundtrip_v3(&m, false), &m);
    }
}

/// The quantized arm rounds each value through f32 — exactly the
/// `f64::from(v as f32)` the decoder applies, nothing else.
#[test]
fn v3_quantized_roundtrip_matches_f32_rounding() {
    let mut rng = Prng::seed_from_u64(0x51ca_000c);
    for _ in 0..iters() {
        let v: Vec<f64> = (0..rng.index(48)).map(|_| rng.normal() * 1e3).collect();
        let back = roundtrip_v3(&v, true);
        let expect: Vec<f64> = v.iter().map(|&x| f64::from(x as f32)).collect();
        assert_bits_eq(&back, &expect, "Vec<f64> v3 quantized");
    }
}

#[test]
fn v3_framed_blobs_roundtrip_and_size_contract_holds() {
    let mut rng = Prng::seed_from_u64(0x51ca_000d);
    for _ in 0..iters().min(16) {
        let m = Mat::from_fn(1 + rng.index(4), 1 + rng.index(4), |_, _| edge_f64(&mut rng));
        let blob = encode_framed_v3(&m, false);
        assert_eq!(blob.len() as u64, framed_size_v3(&m, false));
        let back: Mat = decode_framed_v3(&blob).expect("framed v3 decode");
        assert_bits_eq(back.data(), m.data(), "framed v3 Mat");
    }
}

/// Same crash-safety bound as the v1 decoder: damaged v3 bytes must
/// return, never panic or hang — bitpacked widths and payload mode tags
/// are both attacker-controlled here.
#[test]
fn v3_decoder_survives_truncation_and_corruption() {
    let mut rng = Prng::seed_from_u64(0x51ca_000e);
    for _ in 0..iters() {
        let m = SparseMat::from_triplets(
            4,
            512,
            &[(0, 2, 1.0), (1, 0, -2.5), (1, 505, f64::NAN), (3, 77, 1e300)],
        );
        let mut bytes = m.encode_v3(rng.index(2) == 0);
        match rng.index(3) {
            0 => {
                bytes.truncate(rng.index(bytes.len()));
            }
            1 => {
                let i = rng.index(bytes.len());
                bytes[i] ^= 1 << rng.index(8);
            }
            _ => {
                bytes.push(rng.next_u64() as u8);
            }
        }
        let _ = SparseMat::decode_v3(&bytes);
        let _ = Mat::decode_v3(&bytes);
        let _ = Vec::<f64>::decode_v3(&bytes);
        let _ = SparseUpdate::decode_v3(&bytes);
    }
}

/// Bounded mutation fuzz: truncating or corrupting a valid encoding must
/// produce a clean `Err` or a different value — never a panic or a hang.
#[test]
fn decoder_survives_truncation_and_corruption() {
    let mut rng = Prng::seed_from_u64(0x51ca_0009);
    for _ in 0..iters() {
        let m = SparseMat::from_triplets(
            4,
            16,
            &[(0, 2, 1.5), (1, 0, -2.5), (1, 15, f64::NAN), (3, 7, 1e300)],
        );
        let mut bytes = m.encode();
        match rng.index(3) {
            0 => {
                bytes.truncate(rng.index(bytes.len()));
            }
            1 => {
                let i = rng.index(bytes.len());
                bytes[i] ^= 1 << rng.index(8);
            }
            _ => {
                bytes.push(rng.next_u64() as u8);
            }
        }
        // Must return, not panic; both Ok (benign bit flips in a value
        // payload) and Err (structural damage) are acceptable outcomes.
        let _ = SparseMat::decode(&bytes);
        let _ = Mat::decode(&bytes);
        let _ = Vec::<f64>::decode(&bytes);
        let _ = SparseUpdate::decode(&bytes);
    }
}
