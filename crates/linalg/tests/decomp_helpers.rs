//! Property suite for the randomized-subspace-iteration helpers
//! (`decomp::helpers`): orthonormality to 1e-12, reconstruction, and the
//! degenerate shapes the rpca driver can feed them (single column,
//! rank-deficient sketches, more columns than rows).

use linalg::decomp::{orthonormal_columns, subspace_overlap, top_singular_triplets};
use linalg::{LinalgError, Mat, Prng};

const ORTHO_TOL: f64 = 1e-12;

/// max |QᵀQ - I| over all entries.
fn orthonormality_defect(q: &Mat) -> f64 {
    let gram = q.matmul_tn(q);
    let mut worst = 0.0f64;
    for i in 0..gram.rows() {
        for j in 0..gram.cols() {
            let want = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((gram[(i, j)] - want).abs());
        }
    }
    worst
}

#[test]
fn orthonormal_columns_random_shapes() {
    let mut rng = Prng::seed_from_u64(0x0071);
    for &(m, n) in &[(1usize, 1usize), (5, 1), (40, 7), (64, 64), (200, 12)] {
        let a = rng.normal_mat(m, n);
        let q = orthonormal_columns(&a);
        assert_eq!(q.rows(), m);
        assert_eq!(q.cols(), m.min(n));
        let defect = orthonormality_defect(&q);
        assert!(defect <= ORTHO_TOL, "{m}x{n}: QᵀQ defect {defect:.3e}");
        // Q spans the columns of a: projecting a onto Q loses nothing.
        let proj = q.matmul(&q.matmul_tn(&a));
        assert!(proj.max_abs_diff(&a) <= 1e-10 * (1.0 + a.norm1()));
    }
}

#[test]
fn orthonormal_columns_rank_deficient_stays_orthonormal() {
    let mut rng = Prng::seed_from_u64(0x0072);
    // Three distinct deficiency patterns: an all-zero column, a repeated
    // column, and a matrix that is an outer product (rank one).
    let mut zero_col = rng.normal_mat(30, 5);
    for r in 0..30 {
        zero_col[(r, 2)] = 0.0;
    }
    let mut repeated = rng.normal_mat(30, 5);
    for r in 0..30 {
        repeated[(r, 4)] = repeated[(r, 0)];
    }
    let u = rng.normal_vec(30);
    let v = rng.normal_vec(5);
    let rank_one = Mat::from_fn(30, 5, |i, j| u[i] * v[j]);

    for (name, a) in [("zero-col", zero_col), ("repeated", repeated), ("rank-one", rank_one)] {
        let q = orthonormal_columns(&a);
        assert_eq!((q.rows(), q.cols()), (30, 5), "{name}");
        let defect = orthonormality_defect(&q);
        assert!(defect <= ORTHO_TOL, "{name}: defect {defect:.3e}");
    }
}

#[test]
fn orthonormal_columns_wide_input_gives_full_square_basis() {
    let mut rng = Prng::seed_from_u64(0x0073);
    let a = rng.normal_mat(6, 17);
    let q = orthonormal_columns(&a);
    assert_eq!((q.rows(), q.cols()), (6, 6));
    assert!(orthonormality_defect(&q) <= ORTHO_TOL);
}

#[test]
fn top_singular_triplets_reconstructs_low_rank_input() {
    let mut rng = Prng::seed_from_u64(0x0074);
    // Build an exactly rank-4 matrix and recover it from its top 4 triplets.
    let left = rng.normal_mat(25, 4);
    let right = rng.normal_mat(4, 18);
    let a = left.matmul(&right);
    let svd = top_singular_triplets(&a, 4).expect("rank fits");
    assert_eq!((svd.u.rows(), svd.u.cols()), (25, 4));
    assert_eq!(svd.s.len(), 4);
    assert_eq!((svd.vt.rows(), svd.vt.cols()), (4, 18));
    let rebuilt = svd.reconstruct();
    let scale = a.frobenius_sq().sqrt().max(1.0);
    assert!(rebuilt.max_abs_diff(&a) / scale <= 1e-10);
    // Both factors orthonormal, singular values sorted non-negative.
    assert!(orthonormality_defect(&svd.u) <= ORTHO_TOL);
    assert!(orthonormality_defect(&svd.vt.transpose()) <= ORTHO_TOL);
    assert!(svd.s.windows(2).all(|w| w[0] >= w[1]) && svd.s.iter().all(|&s| s >= 0.0));
}

#[test]
fn top_singular_triplets_single_component() {
    let mut rng = Prng::seed_from_u64(0x0075);
    let a = rng.normal_mat(12, 9);
    let svd = top_singular_triplets(&a, 1).expect("d=1 fits");
    assert_eq!((svd.u.rows(), svd.u.cols()), (12, 1));
    assert_eq!(svd.s.len(), 1);
    // The top triplet dominates every other direction: σ₁ = max ‖Av‖ ≥ column norms.
    let full = top_singular_triplets(&a, 9).expect("full rank fits");
    assert!((svd.s[0] - full.s[0]).abs() <= 1e-10 * full.s[0].max(1.0));
}

#[test]
fn top_singular_triplets_wide_and_rank_deficient() {
    let mut rng = Prng::seed_from_u64(0x0076);
    // Wide (more columns than rows) and only rank 2.
    let left = rng.normal_mat(5, 2);
    let right = rng.normal_mat(2, 40);
    let a = left.matmul(&right);
    let svd = top_singular_triplets(&a, 5).expect("k = min(m,n) fits");
    assert_eq!(svd.s.len(), 5);
    // Trailing singular values vanish; reconstruction still exact.
    assert!(svd.s[2] <= 1e-8 * svd.s[0].max(1.0));
    let scale = a.frobenius_sq().sqrt().max(1.0);
    assert!(svd.reconstruct().max_abs_diff(&a) / scale <= 1e-10);
}

#[test]
fn top_singular_triplets_rejects_oversized_rank() {
    let mut rng = Prng::seed_from_u64(0x0077);
    let a = rng.normal_mat(7, 3);
    match top_singular_triplets(&a, 4) {
        Err(LinalgError::RankTooLarge { requested: 4, available: 3 }) => {}
        other => panic!("expected RankTooLarge, got {other:?}"),
    }
}

#[test]
fn subspace_overlap_identical_rotated_and_orthogonal() {
    let mut rng = Prng::seed_from_u64(0x0078);
    let a = rng.normal_mat(20, 3);
    // Same space under an invertible column mix: overlap 1.
    let mix = rng.normal_mat(3, 3);
    let mixed = a.matmul(&mix);
    let same = subspace_overlap(&a, &mixed).expect("svd converges");
    assert!((same - 1.0).abs() <= 1e-9, "same-space overlap {same}");
    // Orthogonal complement built by Gram–Schmidt against Qa: overlap ~0.
    let qa = orthonormal_columns(&a);
    let mut other = rng.normal_mat(20, 3);
    let coeffs = qa.matmul_tn(&other);
    other.add_scaled(-1.0, &qa.matmul(&coeffs));
    let disjoint = subspace_overlap(&a, &other).expect("svd converges");
    assert!(disjoint <= 1e-9, "orthogonal overlap {disjoint}");
}
