//! Kernel equivalence suite: the blocked/threaded kernels in
//! [`linalg::kernels`] against the seed's naive loops, preserved verbatim
//! in [`linalg::kernels::naive`].
//!
//! Three tiers of guarantees:
//!
//! * **Exact** on structured inputs — small-integer-valued matrices sum
//!   exactly in any association order (all intermediate values are
//!   integers far below 2⁵³), so blocked and naive results must be
//!   bit-for-bit equal.
//! * **≤ 1e-12** max-abs-diff on random inputs, where reassociation is
//!   allowed to perturb the last bits.
//! * **Bitwise deterministic across pool sizes** — the `_with_pool`
//!   variants must return identical bytes on 1, 2, and 8 workers.

use linalg::kernels::{self, naive};
use linalg::{Mat, Prng, SparseMat, WorkerPool};

/// Shapes that exercise every path: empty, zero-dim, 1×1, remainder rows
/// around the 4-row/2-row/4-col micro-kernel groups, and sizes large
/// enough to cross the parallel-dispatch threshold.
const SHAPES: &[(usize, usize, usize)] = &[
    (0, 0, 0),
    (0, 3, 2),
    (3, 0, 2),
    (3, 2, 0),
    (1, 1, 1),
    (2, 2, 2),
    (4, 4, 4),
    (5, 3, 7),
    (6, 1, 5),
    (7, 8, 9),
    (8, 5, 6),
    (9, 9, 2),
    (13, 11, 10),
    (33, 17, 21),
    (130, 70, 50),
];

/// Integer-valued matrix in [-4, 4]: every product and partial sum is an
/// integer well below 2^53, so any summation order gives the same f64.
fn int_mat(rng: &mut Prng, rows: usize, cols: usize) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.index(9) as f64 - 4.0;
    }
    m
}

fn random_sparse(rng: &mut Prng, rows: usize, cols: usize, density: f64, int: bool) -> SparseMat {
    let mut triplets = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.uniform() < density {
                let v = if int { rng.index(9) as f64 - 4.0 } else { rng.normal() };
                if v != 0.0 {
                    triplets.push((r, c as u32, v));
                }
            }
        }
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

fn assert_bits_eq(a: &Mat, b: &Mat, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits() || (*x == 0.0 && *y == 0.0),
            "{what}: element {i} differs: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn structured_inputs_match_naive_exactly() {
    // Integer-valued inputs: exact equality (up to the sign of zero, which
    // the kernels' zero-skip may normalize) on every shape.
    for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
        let mut rng = Prng::seed_from_u64(case as u64);
        let a = int_mat(&mut rng, m, k);
        let b = int_mat(&mut rng, k, n);
        assert_bits_eq(&kernels::matmul(&a, &b), &naive::matmul(&a, &b), "matmul");

        let at = int_mat(&mut rng, m, k);
        let bt = int_mat(&mut rng, m, n);
        assert_bits_eq(&kernels::matmul_tn(&at, &bt), &naive::matmul_tn(&at, &bt), "matmul_tn");

        let bn = int_mat(&mut rng, n, k);
        assert_bits_eq(&kernels::matmul_nt(&a, &bn), &naive::matmul_nt(&a, &bn), "matmul_nt");

        let x: Vec<f64> = (0..k).map(|_| rng.index(9) as f64 - 4.0).collect();
        let mv = kernels::matvec(&a, &x);
        let mv_ref = naive::matvec(&a, &x);
        assert_eq!(mv.len(), mv_ref.len());
        for (u, v) in mv.iter().zip(&mv_ref) {
            assert!(u.to_bits() == v.to_bits() || (*u == 0.0 && *v == 0.0), "matvec");
        }

        let y = random_sparse(&mut rng, m, k, 0.3, true);
        let c = int_mat(&mut rng, k, n);
        assert_bits_eq(
            &kernels::sparse_mul_dense(&y, &c),
            &naive::sparse_mul_dense(&y, &c),
            "sparse_mul_dense",
        );

        let t = int_mat(&mut rng, m, n);
        assert_bits_eq(&t.transpose(), &naive::transpose(&t), "transpose");
    }
}

#[test]
fn random_inputs_match_naive_to_1e12() {
    for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
        let mut rng = Prng::seed_from_u64(1000 + case as u64);
        let a = rng.normal_mat(m, k);
        let b = rng.normal_mat(k, n);
        assert!(kernels::matmul(&a, &b).max_abs_diff(&naive::matmul(&a, &b)) <= 1e-12);

        let at = rng.normal_mat(m, k);
        let bt = rng.normal_mat(m, n);
        assert!(kernels::matmul_tn(&at, &bt).max_abs_diff(&naive::matmul_tn(&at, &bt)) <= 1e-12);

        let bn = rng.normal_mat(n, k);
        assert!(kernels::matmul_nt(&a, &bn).max_abs_diff(&naive::matmul_nt(&a, &bn)) <= 1e-12);

        let x = rng.normal_vec(k);
        for (u, v) in kernels::matvec(&a, &x).iter().zip(&naive::matvec(&a, &x)) {
            assert!((u - v).abs() <= 1e-12);
        }

        let y = random_sparse(&mut rng, m, k, 0.3, false);
        let c = rng.normal_mat(k, n);
        assert!(
            kernels::sparse_mul_dense(&y, &c).max_abs_diff(&naive::sparse_mul_dense(&y, &c))
                <= 1e-12
        );
    }
}

#[test]
fn all_zero_rows_are_harmless() {
    // The zero-skip fast paths must not desynchronize the blocked loops.
    let mut rng = Prng::seed_from_u64(99);
    let mut a = rng.normal_mat(11, 6);
    for j in 0..6 {
        a[(0, j)] = 0.0;
        a[(4, j)] = 0.0; // inside a 4-row group
        a[(10, j)] = 0.0; // remainder row
    }
    let b = rng.normal_mat(11, 5);
    assert!(kernels::matmul_tn(&a, &b).max_abs_diff(&naive::matmul_tn(&a, &b)) <= 1e-12);
    let b2 = rng.normal_mat(6, 5);
    assert!(kernels::matmul(&a, &b2).max_abs_diff(&naive::matmul(&a, &b2)) <= 1e-12);

    // A sparse matrix with explicit empty rows.
    let y = SparseMat::from_triplets(5, 6, &[(1, 2, 3.0), (3, 0, -1.0), (3, 5, 2.0)]);
    assert!(
        kernels::sparse_mul_dense(&y, &b2).max_abs_diff(&naive::sparse_mul_dense(&y, &b2))
            <= 1e-12
    );
}

#[test]
fn large_products_cross_the_parallel_threshold_and_still_match() {
    // 400×120 × 400×80: ~7.7 Mflops > PAR_MIN_FLOPS, so the chunked
    // reduction path runs; the single-chunk seed ordering is the oracle.
    let mut rng = Prng::seed_from_u64(2024);
    let a = rng.normal_mat(400, 120);
    let b = rng.normal_mat(400, 80);
    assert!(kernels::matmul_tn(&a, &b).max_abs_diff(&naive::matmul_tn(&a, &b)) <= 1e-12);

    let c = rng.normal_mat(300, 90);
    let d = rng.normal_mat(90, 70);
    assert!(kernels::matmul(&c, &d).max_abs_diff(&naive::matmul(&c, &d)) <= 1e-12);

    let y = random_sparse(&mut rng, 3000, 500, 0.02, false);
    let e = rng.normal_mat(500, 32);
    assert!(
        kernels::sparse_mul_dense(&y, &e).max_abs_diff(&naive::sparse_mul_dense(&y, &e)) <= 1e-12
    );
}

#[test]
fn kernels_are_bitwise_deterministic_across_pool_sizes() {
    let pools = [WorkerPool::new(1), WorkerPool::new(2), WorkerPool::new(8)];
    let mut rng = Prng::seed_from_u64(7777);
    let a = rng.normal_mat(400, 120);
    let b = rng.normal_mat(400, 80);
    let am = rng.normal_mat(300, 90);
    let bm = rng.normal_mat(90, 70);
    let ant = rng.normal_mat(200, 60);
    let bnt = rng.normal_mat(150, 60);
    let x = rng.normal_vec(120);
    let y = random_sparse(&mut rng, 3000, 500, 0.02, false);
    let c = rng.normal_mat(500, 32);

    let tn: Vec<Mat> = pools.iter().map(|p| kernels::matmul_tn_with_pool(p, &a, &b)).collect();
    let mm: Vec<Mat> = pools.iter().map(|p| kernels::matmul_with_pool(p, &am, &bm)).collect();
    let nt: Vec<Mat> = pools.iter().map(|p| kernels::matmul_nt_with_pool(p, &ant, &bnt)).collect();
    let mv: Vec<Vec<f64>> = pools.iter().map(|p| kernels::matvec_with_pool(p, &a, &x)).collect();
    let sd: Vec<Mat> =
        pools.iter().map(|p| kernels::sparse_mul_dense_with_pool(p, &y, &c)).collect();

    for i in 1..pools.len() {
        assert_bits_eq(&tn[0], &tn[i], "matmul_tn across pools");
        assert_bits_eq(&mm[0], &mm[i], "matmul across pools");
        assert_bits_eq(&nt[0], &nt[i], "matmul_nt across pools");
        assert_bits_eq(&sd[0], &sd[i], "sparse_mul_dense across pools");
        assert_eq!(
            mv[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            mv[i].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "matvec across pools"
        );
    }
}
