//! Randomized contracts for the decomposition and I/O layers.
//!
//! Formerly proptest-based; now driven by the in-tree seeded [`Prng`] so
//! the workspace builds offline with zero external dependencies. Each test
//! sweeps a fixed number of seeded cases — deterministic, reproducible
//! from the case index, and covering the same invariants.

use linalg::decomp::{
    bidiagonalize, golub_reinsch_svd, lanczos_svd, randomized_svd, svd_via_bidiag, Cholesky,
};
use linalg::{io, Mat, Prng, SparseMat};

const CASES: u64 = 48;

/// Seeded stand-in for proptest's matrix strategy: dimensions in
/// `[2, max)` and normal entries, all derived from the case seed.
fn seeded_matrix(case: u64, max_rows: usize, max_cols: usize) -> Mat {
    let mut rng = Prng::seed_from_u64(0xA11CE ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let r = 2 + rng.index(max_rows - 2);
    let c = 2 + rng.index(max_cols - 2);
    rng.normal_mat(r, c)
}

#[test]
fn bidiagonalization_contract() {
    for case in 0..CASES {
        let a = seeded_matrix(case, 14, 8);
        // Work on the tall orientation.
        let a = if a.rows() >= a.cols() { a } else { a.transpose() };
        let bd = bidiagonalize(&a);
        let rebuilt = bd.u.matmul(&bd.b_matrix()).matmul(&bd.v.transpose());
        assert!(rebuilt.approx_eq(&a, 1e-8), "case {case}");
    }
}

#[test]
fn golub_reinsch_contract() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(case);
        let n = 2 + rng.index(7);
        let diag = rng.normal_vec(n);
        let superdiag = rng.normal_vec(n - 1);
        let (u, s, vt) = golub_reinsch_svd(&diag, &superdiag).unwrap();
        // Orthogonality and descending non-negative values.
        assert!(u.matmul_tn(&u).approx_eq(&Mat::identity(n), 1e-8), "case {case}");
        assert!(vt.matmul_nt(&vt).approx_eq(&Mat::identity(n), 1e-8), "case {case}");
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "case {case}");
        }
        assert!(s.iter().all(|&x| x >= 0.0), "case {case}");
        // Reconstruction.
        let mut b = Mat::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = superdiag[i];
            }
        }
        let mut us = u.clone();
        for r in 0..n {
            for (c, &sv) in s.iter().enumerate() {
                us[(r, c)] *= sv;
            }
        }
        assert!(us.matmul(&vt).approx_eq(&b, 1e-8), "case {case}");
    }
}

#[test]
fn bidiag_svd_pipeline_matches_frobenius_mass() {
    for case in 0..CASES {
        let a = seeded_matrix(case, 10, 10);
        // Σσ² == ‖A‖²_F (unitary invariance).
        let svd = svd_via_bidiag(&a).unwrap();
        let mass: f64 = svd.s.iter().map(|s| s * s).sum();
        assert!(
            (mass - a.frobenius_sq()).abs() < 1e-7 * (1.0 + a.frobenius_sq()),
            "case {case}"
        );
    }
}

#[test]
fn lanczos_finds_the_dominant_value() {
    for seed in 0..CASES {
        // Rank-heavy planted direction: Lanczos σ₁ must match dense σ₁.
        let mut rng = Prng::seed_from_u64(seed);
        let mut a = rng.normal_mat(20, 12);
        let x = rng.normal_vec(20);
        let y = rng.normal_vec(12);
        a.add_outer(10.0, &x, &y);
        let mut lrng = Prng::seed_from_u64(seed ^ 1);
        let lan = lanczos_svd(&a, 1, 10, &mut lrng).unwrap();
        let exact = linalg::decomp::svd_jacobi(&a).unwrap();
        assert!((lan.s[0] - exact.s[0]).abs() < 1e-6 * exact.s[0], "seed {seed}");
    }
}

#[test]
fn randomized_svd_never_overestimates_much() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let a = rng.normal_mat(16, 10);
        let mut srng = Prng::seed_from_u64(seed ^ 2);
        let approx = randomized_svd(&a, 3, 4, 1, &mut srng).unwrap();
        let exact = linalg::decomp::svd_jacobi(&a).unwrap();
        for i in 0..3 {
            // Interlacing: sketched values never exceed the true ones
            // (beyond roundoff) and with q=1 stay within a loose factor.
            assert!(approx.s[i] <= exact.s[i] * (1.0 + 1e-9), "seed {seed}");
            assert!(approx.s[i] >= exact.s[i] * 0.3, "seed {seed}");
        }
    }
}

#[test]
fn cholesky_solve_contract() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.index(7);
        let g = rng.normal_mat(n + 2, n);
        let mut a = g.matmul_tn(&g);
        a.add_diag(0.5);
        let x_true = rng.normal_vec(n);
        let b = a.matvec(&x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "seed {seed}");
        }
    }
}

#[test]
fn sparse_io_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let rows = 1 + rng.index(11);
        let cols = 1 + rng.index(11);
        let mut triplets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rng.uniform() < 0.3 {
                    triplets.push((r, c as u32, rng.normal()));
                }
            }
        }
        let m = SparseMat::from_triplets(rows, cols, &triplets);
        let mut buf = Vec::new();
        io::write_sparse(&mut buf, &m).unwrap();
        let back = io::read_sparse(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back, "seed {seed}");
    }
}

#[test]
fn dense_io_roundtrip() {
    for case in 0..CASES {
        let a = seeded_matrix(case, 8, 8);
        let mut buf = Vec::new();
        io::write_dense(&mut buf, &a).unwrap();
        let back = io::read_dense(&mut buf.as_slice()).unwrap();
        assert!(a.approx_eq(&back, 0.0), "case {case}");
    }
}

#[test]
fn zipf_sampling_respects_rank_order() {
    for seed in 0..CASES {
        // Rank 0 must be sampled at least as often as rank n-1 over many
        // draws (with a margin for sampling noise).
        let mut rng = Prng::seed_from_u64(seed);
        let n = 2 + rng.index(198);
        let table = linalg::rng::ZipfTable::new(n, 1.0);
        let draws = 4_000;
        let mut first = 0usize;
        let mut last = 0usize;
        for _ in 0..draws {
            let s = rng.zipf(&table);
            if s == 0 {
                first += 1;
            }
            if s == n - 1 {
                last += 1;
            }
        }
        assert!(first + 40 >= last, "seed {seed}: rank 0 ({first}) vs rank n-1 ({last})");
    }
}
