//! Property-based contracts for the decomposition and I/O layers.

use proptest::prelude::*;

use linalg::decomp::{
    bidiagonalize, golub_reinsch_svd, lanczos_svd, randomized_svd, svd_via_bidiag, Cholesky,
};
use linalg::{io, Mat, Prng, SparseMat};

fn seeded_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (2..max_rows, 2..max_cols, any::<u64>()).prop_map(|(r, c, seed)| {
        Prng::seed_from_u64(seed).normal_mat(r, c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bidiagonalization_contract(a in seeded_matrix(14, 8)) {
        // Work on the tall orientation.
        let a = if a.rows() >= a.cols() { a } else { a.transpose() };
        let bd = bidiagonalize(&a);
        let rebuilt = bd.u.matmul(&bd.b_matrix()).matmul(&bd.v.transpose());
        prop_assert!(rebuilt.approx_eq(&a, 1e-8));
    }

    #[test]
    fn golub_reinsch_contract(seed in any::<u64>(), n in 2usize..9) {
        let mut rng = Prng::seed_from_u64(seed);
        let diag = rng.normal_vec(n);
        let superdiag = rng.normal_vec(n - 1);
        let (u, s, vt) = golub_reinsch_svd(&diag, &superdiag).unwrap();
        // Orthogonality and descending non-negative values.
        prop_assert!(u.matmul_tn(&u).approx_eq(&Mat::identity(n), 1e-8));
        prop_assert!(vt.matmul_nt(&vt).approx_eq(&Mat::identity(n), 1e-8));
        for w in s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.iter().all(|&x| x >= 0.0));
        // Reconstruction.
        let mut b = Mat::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = superdiag[i];
            }
        }
        let mut us = u.clone();
        for r in 0..n {
            for (c, &sv) in s.iter().enumerate() {
                us[(r, c)] *= sv;
            }
        }
        prop_assert!(us.matmul(&vt).approx_eq(&b, 1e-8));
    }

    #[test]
    fn bidiag_svd_pipeline_matches_frobenius_mass(a in seeded_matrix(10, 10)) {
        // Σσ² == ‖A‖²_F (unitary invariance).
        let svd = svd_via_bidiag(&a).unwrap();
        let mass: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((mass - a.frobenius_sq()).abs() < 1e-7 * (1.0 + a.frobenius_sq()));
    }

    #[test]
    fn lanczos_finds_the_dominant_value(seed in any::<u64>()) {
        // Rank-heavy planted direction: Lanczos σ₁ must match dense σ₁.
        let mut rng = Prng::seed_from_u64(seed);
        let mut a = rng.normal_mat(20, 12);
        let x = rng.normal_vec(20);
        let y = rng.normal_vec(12);
        a.add_outer(10.0, &x, &y);
        let mut lrng = Prng::seed_from_u64(seed ^ 1);
        let lan = lanczos_svd(&a, 1, 10, &mut lrng).unwrap();
        let exact = linalg::decomp::svd_jacobi(&a).unwrap();
        prop_assert!((lan.s[0] - exact.s[0]).abs() < 1e-6 * exact.s[0]);
    }

    #[test]
    fn randomized_svd_never_overestimates_much(seed in any::<u64>()) {
        let mut rng = Prng::seed_from_u64(seed);
        let a = rng.normal_mat(16, 10);
        let mut srng = Prng::seed_from_u64(seed ^ 2);
        let approx = randomized_svd(&a, 3, 4, 1, &mut srng).unwrap();
        let exact = linalg::decomp::svd_jacobi(&a).unwrap();
        for i in 0..3 {
            // Interlacing: sketched values never exceed the true ones
            // (beyond roundoff) and with q=1 stay within a loose factor.
            prop_assert!(approx.s[i] <= exact.s[i] * (1.0 + 1e-9));
            prop_assert!(approx.s[i] >= exact.s[i] * 0.3);
        }
    }

    #[test]
    fn cholesky_solve_contract(seed in any::<u64>(), n in 1usize..8) {
        let mut rng = Prng::seed_from_u64(seed);
        let g = rng.normal_mat(n + 2, n);
        let mut a = g.matmul_tn(&g);
        a.add_diag(0.5);
        let x_true = rng.normal_vec(n);
        let b = a.matvec(&x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn sparse_io_roundtrip(seed in any::<u64>(), rows in 1usize..12, cols in 1usize..12) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rng.uniform() < 0.3 {
                    triplets.push((r, c as u32, rng.normal()));
                }
            }
        }
        let m = SparseMat::from_triplets(rows, cols, &triplets);
        let mut buf = Vec::new();
        io::write_sparse(&mut buf, &m).unwrap();
        let back = io::read_sparse(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn dense_io_roundtrip(a in seeded_matrix(8, 8)) {
        let mut buf = Vec::new();
        io::write_dense(&mut buf, &a).unwrap();
        let back = io::read_dense(&mut buf.as_slice()).unwrap();
        prop_assert!(a.approx_eq(&back, 0.0));
    }

    #[test]
    fn zipf_sampling_respects_rank_order(n in 2usize..200, seed in any::<u64>()) {
        // Rank 0 must be sampled at least as often as rank n-1 over many
        // draws (with a margin for sampling noise).
        let table = linalg::rng::ZipfTable::new(n, 1.0);
        let mut rng = Prng::seed_from_u64(seed);
        let draws = 4_000;
        let mut first = 0usize;
        let mut last = 0usize;
        for _ in 0..draws {
            let s = rng.zipf(&table);
            if s == 0 {
                first += 1;
            }
            if s == n - 1 {
                last += 1;
            }
        }
        prop_assert!(first + 40 >= last, "rank 0 ({first}) vs rank n-1 ({last})");
    }
}
