//! Versioned binary wire codec for all metered traffic.
//!
//! Every byte the cluster simulator charges — MapReduce shuffle records,
//! sparkle RDD spill/broadcast, HDFS blocks, EM checkpoints — is priced by
//! this codec instead of the flat per-field estimates in [`crate::bytes`].
//! The encoding is what a production system would plausibly ship:
//!
//! * **varints** — unsigned LEB128 for all integer fields (lengths, shapes,
//!   counts, keys), so small values cost one byte instead of eight;
//! * **delta encoding** — strictly-ascending index lists (CSR column
//!   indices, packed accumulator column tables) store the first index
//!   absolute and each subsequent one as `varint(gap - 1)`; CSR row
//!   pointers are stored as per-row length deltas;
//! * **raw IEEE bits** — `f64` payloads are the 8 little-endian bytes of
//!   [`f64::to_bits`], so `NaN` payloads, `-0.0` and signalling bit
//!   patterns survive a round trip *bitwise* (the repo's determinism
//!   invariants compare `to_bits`, so the codec must too);
//! * **framing** — self-describing blobs carry the [`WIRE_MAGIC`] tag and a
//!   format version ([`WIRE_VERSION`]); bare record encodings (shuffle
//!   keys/values) omit the frame since the stream context fixes the type.
//!
//! The central contract, enforced by `tests/wire_roundtrip.rs`:
//! `encoded_size() == encode().len()` and `decode(encode(v)) == v` bitwise,
//! for every type that crosses a metered boundary.
//!
//! # The v3 fast path
//!
//! Shuffle-only records may opt into the **v3** encoding
//! ([`Wire::encode_v3_into`], selected per cluster by [`WireCodec`]):
//!
//! * **bitpacked deltas** — an ascending index list stores its first
//!   index absolute, then one byte naming the fixed bit width `w` of the
//!   block's `gap − 1` deltas, then the deltas packed LSB-first at `w`
//!   bits each. A run of consecutive indices has `w = 0` and costs *zero*
//!   stream bytes beyond the header; v2's varints pay a byte per index.
//! * **mode-tagged f64 payloads** — each value slice opens with one mode
//!   byte: `0` raw f64 bits (exact), `2` zigzag varints (exact, chosen
//!   automatically when every value round-trips `f64 → i64 → f64`
//!   *bitwise* — the binary term-presence matrices of the paper's text
//!   corpora encode at ~1 byte per value instead of 8), or `1` f32 bits
//!   (lossy, only under [`WireCodec::V3Quantized`]).
//!
//! Only shuffle traffic may use v3, and only the quantized arm is lossy;
//! checkpoints, DFS blocks and broadcasts always stay exact v2 — the
//! exact/lossy boundary is documented in DESIGN.md §11. Quantization
//! moves the byte meters only: simulated shuffles hand values over
//! in-memory, so the fitted model is bitwise identical across codecs.

use crate::bytes::{ByteSized, SparseUpdate};
use crate::dense::Mat;
use crate::sparse::SparseMat;

/// Magic tag opening every framed wire blob: `b"SPWR"`.
pub const WIRE_MAGIC: [u8; 4] = *b"SPWR";

/// Framed-blob format version of the original (v2-generation) encoding.
pub const WIRE_VERSION: u16 = 1;

/// Framed-blob format version of the bitpacked/quantized encoding. The
/// metering arms are named `v2` (frame version 1, the original codec)
/// and `v3`; frame version 2 is skipped so the arm name and the frame
/// number agree for the new format. v2-generation decoders reject a v3
/// frame with [`WireError::BadVersion`]`(3)` — pinned by the golden
/// fixtures.
pub const WIRE_VERSION_V3: u16 = 3;

/// Decode-side failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// Structurally invalid input (bad tag, overflow, non-ascending
    /// indices, trailing bytes, …).
    Malformed(&'static str),
    /// Framed blob did not start with [`WIRE_MAGIC`].
    BadMagic,
    /// Framed blob carried an unknown format version.
    BadVersion(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire: input truncated"),
            WireError::Malformed(what) => write!(f, "wire: malformed input: {what}"),
            WireError::BadMagic => write!(f, "wire: bad magic (expected SPWR)"),
            WireError::BadVersion(v) => write!(f, "wire: unsupported format version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over an encoded byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes an unsigned LEB128 varint.
    pub fn uvarint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::Malformed("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Malformed("varint too long"));
            }
        }
    }

    /// Consumes a varint that must fit in `usize`.
    pub fn ulen(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.uvarint()?).map_err(|_| WireError::Malformed("length exceeds usize"))
    }

    /// Consumes 8 raw little-endian bytes as an `f64` bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("take(8)"))))
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after value"))
        }
    }
}

/// Appends `v` as an unsigned LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` as a varint, in bytes (1..=10).
pub fn uvarint_len(v: u64) -> u64 {
    // bits 1..=64 → ceil(bits / 7) bytes; v == 0 still takes one byte.
    let bits = 64 - v.leading_zeros().min(63) as u64;
    bits.div_ceil(7).max(1)
}

/// Appends a strictly-ascending `u32` index list, delta-encoded: first
/// index absolute, then `varint(gap - 1)` per subsequent index.
pub fn write_ascending_u32(out: &mut Vec<u8>, indices: &[u32]) {
    let mut prev: Option<u32> = None;
    for &c in indices {
        match prev {
            None => write_uvarint(out, u64::from(c)),
            Some(p) => {
                debug_assert!(c > p, "write_ascending_u32: indices not strictly ascending");
                write_uvarint(out, u64::from(c - p) - 1);
            }
        }
        prev = Some(c);
    }
}

/// Encoded length of [`write_ascending_u32`]'s output.
pub fn ascending_u32_len(indices: &[u32]) -> u64 {
    let mut total = 0;
    let mut prev: Option<u32> = None;
    for &c in indices {
        total += match prev {
            None => uvarint_len(u64::from(c)),
            Some(p) => uvarint_len(u64::from(c - p) - 1),
        };
        prev = Some(c);
    }
    total
}

/// Reads `n` delta-encoded ascending indices, each `< max_exclusive`.
pub fn read_ascending_u32(
    r: &mut WireReader<'_>,
    n: usize,
    max_exclusive: u64,
) -> Result<Vec<u32>, WireError> {
    let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let raw = r.uvarint()?;
        let c = match prev {
            None => raw,
            Some(p) => p
                .checked_add(raw)
                .and_then(|x| x.checked_add(1))
                .ok_or(WireError::Malformed("index delta overflows"))?,
        };
        if c >= max_exclusive || c > u64::from(u32::MAX) {
            return Err(WireError::Malformed("index out of bounds"));
        }
        out.push(c as u32);
        prev = Some(c);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// v3 primitives: fixed-width bitpacked deltas + mode-tagged f64 payloads
// ---------------------------------------------------------------------------

/// Appends a strictly-ascending `u32` index list in the v3 bitpacked
/// layout: `varint(first)`, then — when the list has 2+ entries — one
/// byte holding the block's delta bit width `w = max bits(gap − 1)`,
/// then the `n − 1` deltas packed LSB-first at `w` bits each
/// (`⌈(n−1)·w / 8⌉` bytes; `w = 0` packs consecutive runs into nothing).
pub fn write_bitpacked_u32(out: &mut Vec<u8>, indices: &[u32]) {
    let Some((&first, rest)) = indices.split_first() else { return };
    write_uvarint(out, u64::from(first));
    if rest.is_empty() {
        return;
    }
    let width = bitpacked_delta_width(indices);
    out.push(width as u8);
    if width == 0 {
        return;
    }
    let mut bitbuf: u64 = 0;
    let mut bits = 0u32;
    for w in indices.windows(2) {
        debug_assert!(w[1] > w[0], "write_bitpacked_u32: indices not strictly ascending");
        let gap = u64::from(w[1] - w[0] - 1);
        bitbuf |= gap << bits;
        bits += width;
        while bits >= 8 {
            out.push((bitbuf & 0xff) as u8);
            bitbuf >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push((bitbuf & 0xff) as u8);
    }
}

/// The fixed delta width of a bitpacked block: the bit length of the
/// largest `gap − 1` between adjacent indices (0..=32).
fn bitpacked_delta_width(indices: &[u32]) -> u32 {
    let mut width = 0u32;
    for w in indices.windows(2) {
        let gap = w[1] - w[0] - 1;
        width = width.max(32 - gap.leading_zeros());
    }
    width
}

/// Encoded length of [`write_bitpacked_u32`]'s output.
pub fn bitpacked_u32_len(indices: &[u32]) -> u64 {
    let Some((&first, rest)) = indices.split_first() else { return 0 };
    let mut total = uvarint_len(u64::from(first));
    if !rest.is_empty() {
        let width = u64::from(bitpacked_delta_width(indices));
        total += 1 + (rest.len() as u64 * width).div_ceil(8);
    }
    total
}

/// Reads `n` bitpacked ascending indices, each `< max_exclusive`.
pub fn read_bitpacked_u32(
    r: &mut WireReader<'_>,
    n: usize,
    max_exclusive: u64,
) -> Result<Vec<u32>, WireError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let first = r.uvarint()?;
    if first >= max_exclusive || first > u64::from(u32::MAX) {
        return Err(WireError::Malformed("index out of bounds"));
    }
    let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
    out.push(first as u32);
    if n == 1 {
        return Ok(out);
    }
    let width = u32::from(r.u8()?);
    if width > 32 {
        return Err(WireError::Malformed("delta bit width exceeds 32"));
    }
    let nbytes = ((n as u64 - 1) * u64::from(width)).div_ceil(8);
    let nbytes = usize::try_from(nbytes).map_err(|_| WireError::Truncated)?;
    let raw = r.take(nbytes)?;
    let mut prev = first;
    let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
    for i in 0..n - 1 {
        let gap = if width == 0 {
            0
        } else {
            // A delta spans at most 32 + 7 bits, so 8 zero-padded bytes
            // starting at its byte always cover it.
            let bitpos = i * width as usize;
            let byte = bitpos / 8;
            let mut chunk = [0u8; 8];
            let avail = (raw.len() - byte).min(8);
            chunk[..avail].copy_from_slice(&raw[byte..byte + avail]);
            (u64::from_le_bytes(chunk) >> (bitpos % 8)) & mask
        };
        let c = prev
            .checked_add(gap)
            .and_then(|x| x.checked_add(1))
            .ok_or(WireError::Malformed("index delta overflows"))?;
        if c >= max_exclusive || c > u64::from(u32::MAX) {
            return Err(WireError::Malformed("index out of bounds"));
        }
        out.push(c as u32);
        prev = c;
    }
    Ok(out)
}

/// v3 payload mode: raw little-endian `f64` bits — always exact.
const PAYLOAD_RAW: u8 = 0;
/// v3 payload mode: little-endian `f32` bits — lossy, quantized arm only.
const PAYLOAD_F32: u8 = 1;
/// v3 payload mode: zigzag varints — exact, chosen when every value
/// round-trips `f64 → i64 → f64` bitwise.
const PAYLOAD_INT: u8 = 2;

/// `Some(i)` iff `v` is *bitwise* reproduced by `i as f64`. `-0.0`, NaN,
/// infinities and magnitudes at or beyond 2⁶³ all fail the round trip,
/// so the integer payload mode is never lossy.
#[inline]
fn integral_f64(v: f64) -> Option<i64> {
    let i = v as i64;
    if (i as f64).to_bits() == v.to_bits() {
        Some(i)
    } else {
        None
    }
}

#[inline]
fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Picks the v3 payload mode for a value slice: integral slices take the
/// (exact) zigzag-varint mode, everything else takes raw bits — or f32
/// bits when the quantized arm is on.
fn payload_mode(vals: &[f64], quantize: bool) -> u8 {
    if vals.iter().all(|&v| integral_f64(v).is_some()) {
        PAYLOAD_INT
    } else if quantize {
        PAYLOAD_F32
    } else {
        PAYLOAD_RAW
    }
}

/// Appends a v3 mode-tagged `f64` payload (no length prefix — the
/// caller's framing fixes the count).
pub fn write_f64_slice_v3(out: &mut Vec<u8>, vals: &[f64], quantize: bool) {
    let mode = payload_mode(vals, quantize);
    out.push(mode);
    match mode {
        PAYLOAD_INT => {
            for &v in vals {
                write_uvarint(out, zigzag(integral_f64(v).expect("mode chosen as integral")));
            }
        }
        PAYLOAD_F32 => {
            for &v in vals {
                out.extend_from_slice(&(v as f32).to_bits().to_le_bytes());
            }
        }
        _ => {
            for &v in vals {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
}

/// Encoded length of [`write_f64_slice_v3`]'s output.
pub fn f64_slice_v3_len(vals: &[f64], quantize: bool) -> u64 {
    match payload_mode(vals, quantize) {
        PAYLOAD_INT => {
            1 + vals
                .iter()
                .map(|&v| uvarint_len(zigzag(integral_f64(v).expect("integral"))))
                .sum::<u64>()
        }
        PAYLOAD_F32 => 1 + 4 * vals.len() as u64,
        _ => 1 + 8 * vals.len() as u64,
    }
}

/// Reads a v3 mode-tagged payload of `n` values. Raw and integer modes
/// reproduce the encoder's input bitwise; the f32 mode returns the
/// quantized values (widened exactly).
pub fn read_f64_slice_v3(r: &mut WireReader<'_>, n: usize) -> Result<Vec<f64>, WireError> {
    let mode = r.u8()?;
    let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
    match mode {
        PAYLOAD_INT => {
            for _ in 0..n {
                out.push(unzigzag(r.uvarint()?) as f64);
            }
        }
        PAYLOAD_F32 => {
            let raw = r.take(n.checked_mul(4).ok_or(WireError::Truncated)?)?;
            out.extend(raw.chunks_exact(4).map(|c| {
                f64::from(f32::from_bits(u32::from_le_bytes(c.try_into().expect("chunks(4)"))))
            }));
        }
        PAYLOAD_RAW => {
            let raw = r.take(n.checked_mul(8).ok_or(WireError::Truncated)?)?;
            out.extend(raw.chunks_exact(8).map(|c| {
                f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks(8)")))
            }));
        }
        _ => return Err(WireError::Malformed("unknown v3 payload mode")),
    }
    Ok(out)
}

/// A value with a real binary encoding.
///
/// Everything metered by the cluster simulator implements this; the meters
/// charge [`Wire::encoded_size`], which must equal `encode().len()` exactly
/// (property-tested), and [`Wire::decode`] must reproduce the input
/// bitwise. [`ByteSized`] remains as the legacy flat estimate, selectable
/// per cluster via [`Sizing::Estimated`] for differential testing.
pub trait Wire: ByteSized + Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Exact length of [`Wire::encode`]'s output, without materializing it.
    fn encoded_size(&self) -> u64;

    /// Decodes one value from the reader, leaving the cursor after it.
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size() as usize);
        self.encode_into(&mut out);
        debug_assert_eq!(out.len() as u64, self.encoded_size(), "encoded_size out of sync");
        out
    }

    /// Decodes a value occupying the whole buffer.
    fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    // --- v3 fast path -----------------------------------------------------

    /// Appends the v3 encoding (bitpacked deltas, mode-tagged payloads).
    /// `quantize` allows the lossy f32 payload mode; `false` keeps v3
    /// fully exact. The default falls back to the v2 layout — correct
    /// for scalar/integer types whose two layouts coincide; types with
    /// f64 payloads or index lists override it.
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        let _ = quantize;
        self.encode_into(out);
    }

    /// Exact length of [`Wire::encode_v3`]'s output — what the byte
    /// meters charge under [`WireCodec::V3`]/[`WireCodec::V3Quantized`].
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        let _ = quantize;
        self.encoded_size()
    }

    /// Decodes one v3-encoded value. Self-describing: the payload mode
    /// bytes tell the decoder whether the encoder quantized, so no flag
    /// is needed here.
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Self::decode_from(r)
    }

    /// Encodes `self` with the v3 layout into a fresh buffer.
    fn encode_v3(&self, quantize: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size_v3(quantize) as usize);
        self.encode_v3_into(&mut out, quantize);
        debug_assert_eq!(
            out.len() as u64,
            self.encoded_size_v3(quantize),
            "encoded_size_v3 out of sync"
        );
        out
    }

    /// Decodes a v3 value occupying the whole buffer.
    fn decode_v3(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode_v3_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Poor-man's specialization hook: `true` only for `f64`, so generic
    /// containers (`Vec<T>`) can batch a whole `f64` slice through one
    /// mode-tagged payload instead of tagging every element.
    #[doc(hidden)]
    const IS_F64: bool = false;

    /// The value as an `f64`; only called when [`Wire::IS_F64`] is true.
    #[doc(hidden)]
    fn f64_value(&self) -> f64 {
        unreachable!("f64_value on a non-f64 Wire type")
    }

    /// Rebuilds the value from an `f64`; only called when
    /// [`Wire::IS_F64`] is true.
    #[doc(hidden)]
    fn from_f64_value(v: f64) -> Option<Self> {
        let _ = v;
        None
    }
}

impl Wire for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn encoded_size(&self) -> u64 {
        8
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64_bits()
    }
    // v3: a scalar is a length-1 payload (the mode byte pays for itself
    // on the integral shuffle values the text datasets produce).
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        write_f64_slice_v3(out, std::slice::from_ref(self), quantize);
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        f64_slice_v3_len(std::slice::from_ref(self), quantize)
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = read_f64_slice_v3(r, 1)?;
        Ok(v[0])
    }
    const IS_F64: bool = true;
    fn f64_value(&self) -> f64 {
        *self
    }
    fn from_f64_value(v: f64) -> Option<Self> {
        Some(v)
    }
}

impl Wire for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, *self);
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(*self)
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.uvarint()
    }
}

impl Wire for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, u64::from(*self));
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(u64::from(*self))
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.uvarint()?).map_err(|_| WireError::Malformed("u32 overflow"))
    }
}

impl Wire for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, *self as u64);
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(*self as u64)
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.ulen()
    }
}

impl Wire for () {
    fn encode_into(&self, _out: &mut Vec<u8>) {}
    fn encoded_size(&self) -> u64 {
        0
    }
    fn decode_from(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn encoded_size(&self) -> u64 {
        self.0.encoded_size() + self.1.encoded_size()
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        self.0.encode_v3_into(out, quantize);
        self.1.encode_v3_into(out, quantize);
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        self.0.encoded_size_v3(quantize) + self.1.encoded_size_v3(quantize)
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_v3_from(r)?, B::decode_v3_from(r)?))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.len() as u64);
        for v in self {
            v.encode_into(out);
        }
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(self.len() as u64) + self.iter().map(Wire::encoded_size).sum::<u64>()
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.ulen()?;
        let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
    // v3: an f64 vector is one batched payload under a single mode byte
    // (the `IS_F64` hook stands in for specialization); other element
    // types forward element-wise so nested payloads still compress.
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        write_uvarint(out, self.len() as u64);
        if T::IS_F64 {
            let vals: Vec<f64> = self.iter().map(Wire::f64_value).collect();
            write_f64_slice_v3(out, &vals, quantize);
        } else {
            for v in self {
                v.encode_v3_into(out, quantize);
            }
        }
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        let header = uvarint_len(self.len() as u64);
        if T::IS_F64 {
            let vals: Vec<f64> = self.iter().map(Wire::f64_value).collect();
            header + f64_slice_v3_len(&vals, quantize)
        } else {
            header + self.iter().map(|v| v.encoded_size_v3(quantize)).sum::<u64>()
        }
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.ulen()?;
        if T::IS_F64 {
            let vals = read_f64_slice_v3(r, n)?;
            return Ok(vals
                .into_iter()
                .map(|v| T::from_f64_value(v).expect("IS_F64 implies from_f64_value"))
                .collect());
        }
        let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            out.push(T::decode_v3_from(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::encoded_size)
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            _ => Err(WireError::Malformed("Option tag must be 0 or 1")),
        }
    }
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_v3_into(out, quantize);
            }
        }
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        1 + self.as_ref().map_or(0, |v| v.encoded_size_v3(quantize))
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_v3_from(r)?)),
            _ => Err(WireError::Malformed("Option tag must be 0 or 1")),
        }
    }
}

/// Dense block: `varint rows, varint cols`, then `rows·cols` raw f64 bits
/// in row-major order.
impl Wire for Mat {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.rows() as u64);
        write_uvarint(out, self.cols() as u64);
        for &v in self.data() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(self.rows() as u64)
            + uvarint_len(self.cols() as u64)
            + 8 * self.data().len() as u64
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.ulen()?;
        let cols = r.ulen()?;
        let n = rows.checked_mul(cols).ok_or(WireError::Malformed("Mat shape overflows"))?;
        let raw = r.take(n.checked_mul(8).ok_or(WireError::Malformed("Mat payload overflows"))?)?;
        let data = raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))))
            .collect();
        Ok(Mat::from_vec(rows, cols, data))
    }
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        write_uvarint(out, self.rows() as u64);
        write_uvarint(out, self.cols() as u64);
        write_f64_slice_v3(out, self.data(), quantize);
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        uvarint_len(self.rows() as u64)
            + uvarint_len(self.cols() as u64)
            + f64_slice_v3_len(self.data(), quantize)
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.ulen()?;
        let cols = r.ulen()?;
        let n = rows.checked_mul(cols).ok_or(WireError::Malformed("Mat shape overflows"))?;
        let data = read_f64_slice_v3(r, n)?;
        Ok(Mat::from_vec(rows, cols, data))
    }
}

/// CSR slice: `varint rows, varint cols, varint nnz`, then per row a
/// `varint` length (the row-pointer delta) followed by its delta-encoded
/// ascending column indices, then all `nnz` values as raw f64 bits.
impl Wire for SparseMat {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.rows() as u64);
        write_uvarint(out, self.cols() as u64);
        write_uvarint(out, self.nnz() as u64);
        for row in 0..self.rows() {
            let r = self.row(row);
            write_uvarint(out, r.indices.len() as u64);
            write_ascending_u32(out, r.indices);
        }
        for row in 0..self.rows() {
            for &v in self.row(row).values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        let mut total = uvarint_len(self.rows() as u64)
            + uvarint_len(self.cols() as u64)
            + uvarint_len(self.nnz() as u64)
            + 8 * self.nnz() as u64;
        for row in 0..self.rows() {
            let r = self.row(row);
            total += uvarint_len(r.indices.len() as u64) + ascending_u32_len(r.indices);
        }
        total
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.ulen()?;
        let cols = r.ulen()?;
        let nnz = r.ulen()?;
        let mut indptr = Vec::with_capacity(rows.min(r.remaining()) + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(nnz.min(r.remaining()));
        for _ in 0..rows {
            let len = r.ulen()?;
            let total =
                indptr.last().expect("non-empty").checked_add(len).ok_or(WireError::Truncated)?;
            if total > nnz {
                return Err(WireError::Malformed("row lengths exceed declared nnz"));
            }
            indices.extend(read_ascending_u32(r, len, cols as u64)?);
            indptr.push(total);
        }
        if *indptr.last().expect("non-empty") != nnz {
            return Err(WireError::Malformed("row lengths disagree with declared nnz"));
        }
        let raw = r.take(nnz.checked_mul(8).ok_or(WireError::Truncated)?)?;
        let values = raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))))
            .collect();
        Ok(SparseMat::from_raw_parts(rows, cols, indptr, indices, values))
    }
    // v3: per-row *bitpacked* index blocks (the fixed width is chosen per
    // row, so a dense text row packs its gaps into 0-3 bits each) and one
    // mode-tagged payload over all nnz values.
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        write_uvarint(out, self.rows() as u64);
        write_uvarint(out, self.cols() as u64);
        write_uvarint(out, self.nnz() as u64);
        for row in 0..self.rows() {
            let r = self.row(row);
            write_uvarint(out, r.indices.len() as u64);
            write_bitpacked_u32(out, r.indices);
        }
        write_f64_slice_v3(out, self.values(), quantize);
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        let mut total = uvarint_len(self.rows() as u64)
            + uvarint_len(self.cols() as u64)
            + uvarint_len(self.nnz() as u64)
            + f64_slice_v3_len(self.values(), quantize);
        for row in 0..self.rows() {
            let r = self.row(row);
            total += uvarint_len(r.indices.len() as u64) + bitpacked_u32_len(r.indices);
        }
        total
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.ulen()?;
        let cols = r.ulen()?;
        let nnz = r.ulen()?;
        let mut indptr = Vec::with_capacity(rows.min(r.remaining()) + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(nnz.min(r.remaining()));
        for _ in 0..rows {
            let len = r.ulen()?;
            let total =
                indptr.last().expect("non-empty").checked_add(len).ok_or(WireError::Truncated)?;
            if total > nnz {
                return Err(WireError::Malformed("row lengths exceed declared nnz"));
            }
            indices.extend(read_bitpacked_u32(r, len, cols as u64)?);
            indptr.push(total);
        }
        if *indptr.last().expect("non-empty") != nnz {
            return Err(WireError::Malformed("row lengths disagree with declared nnz"));
        }
        let values = read_f64_slice_v3(r, nnz)?;
        Ok(SparseMat::from_raw_parts(rows, cols, indptr, indices, values))
    }
}

/// Sparse-triple shuffle record: `varint entry count`, then per entry a
/// `varint` row index, `varint` payload length and raw f64 bits.
impl Wire for SparseUpdate {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.entries.len() as u64);
        for (idx, row) in &self.entries {
            write_uvarint(out, u64::from(*idx));
            write_uvarint(out, row.len() as u64);
            for &v in row {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(self.entries.len() as u64)
            + self
                .entries
                .iter()
                .map(|(idx, row)| {
                    uvarint_len(u64::from(*idx))
                        + uvarint_len(row.len() as u64)
                        + 8 * row.len() as u64
                })
                .sum::<u64>()
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.ulen()?;
        let mut entries = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            let idx = u32::decode_from(r)?;
            let len = r.ulen()?;
            let raw = r.take(len.checked_mul(8).ok_or(WireError::Truncated)?)?;
            let row = raw
                .chunks_exact(8)
                .map(|c| {
                    f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                })
                .collect();
            entries.push((idx, row));
        }
        Ok(SparseUpdate { entries })
    }
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        write_uvarint(out, self.entries.len() as u64);
        for (idx, row) in &self.entries {
            write_uvarint(out, u64::from(*idx));
            write_uvarint(out, row.len() as u64);
            write_f64_slice_v3(out, row, quantize);
        }
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        uvarint_len(self.entries.len() as u64)
            + self
                .entries
                .iter()
                .map(|(idx, row)| {
                    uvarint_len(u64::from(*idx))
                        + uvarint_len(row.len() as u64)
                        + f64_slice_v3_len(row, quantize)
                })
                .sum::<u64>()
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.ulen()?;
        let mut entries = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            let idx = u32::decode_from(r)?;
            let len = r.ulen()?;
            entries.push((idx, read_f64_slice_v3(r, len)?));
        }
        Ok(SparseUpdate { entries })
    }
}

/// Frame overhead in bytes: 4-byte magic + 2-byte little-endian version.
pub const FRAME_OVERHEAD: u64 = 6;

/// Encodes `v` as a self-describing framed blob: magic + version + payload.
pub fn encode_framed<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity((FRAME_OVERHEAD + v.encoded_size()) as usize);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    v.encode_into(&mut out);
    out
}

/// Exact length of [`encode_framed`]'s output.
pub fn framed_size<T: Wire>(v: &T) -> u64 {
    FRAME_OVERHEAD + v.encoded_size()
}

/// Decodes a framed blob, validating magic and version.
pub fn decode_framed<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    if r.take(4)? != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("take(2)"));
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let v = T::decode_from(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// Encodes `v` as a framed v3 blob: magic + version 3 + bitpacked payload.
///
/// `quantize` selects the lossy `f64`→`f32` payload mode for values that
/// survive neither the integral nor the exact test — shuffle-only records
/// may opt in; checkpoints and DFS blocks must not.
pub fn encode_framed_v3<T: Wire>(v: &T, quantize: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity((FRAME_OVERHEAD + v.encoded_size_v3(quantize)) as usize);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION_V3.to_le_bytes());
    v.encode_v3_into(&mut out, quantize);
    out
}

/// Exact length of [`encode_framed_v3`]'s output.
pub fn framed_size_v3<T: Wire>(v: &T, quantize: bool) -> u64 {
    FRAME_OVERHEAD + v.encoded_size_v3(quantize)
}

/// Decodes a framed v3 blob, validating magic and version.
///
/// Only version 3 frames are accepted here; v2 frames go through
/// [`decode_framed`], and each decoder rejects the other's version with a
/// typed [`WireError::BadVersion`] — there is no silent cross-decoding.
pub fn decode_framed_v3<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    if r.take(4)? != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("take(2)"));
    if version != WIRE_VERSION_V3 {
        return Err(WireError::BadVersion(version));
    }
    let v = T::decode_v3_from(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// How a cluster prices the bytes of a metered value.
///
/// [`Sizing::Encoded`] (the default) charges real [`Wire`] encoded lengths;
/// [`Sizing::Estimated`] keeps the legacy flat [`ByteSized`] arithmetic for
/// differential testing (`crates/core/tests/wire_determinism.rs` proves the
/// fitted model is bitwise identical either way — sizing only moves the
/// byte meters and the virtual clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Sizing {
    /// Charge `Wire::encoded_size()` — real serialized bytes.
    #[default]
    Encoded,
    /// Charge `ByteSized::size_bytes()` — the legacy flat estimate.
    Estimated,
}

impl Sizing {
    /// Metered size of `value` under this policy.
    #[inline]
    pub fn size_of<T: Wire>(self, value: &T) -> u64 {
        match self {
            Sizing::Encoded => value.encoded_size(),
            Sizing::Estimated => value.size_bytes(),
        }
    }

    /// Metered size of a length-`len` `f64` slice (a `Vec<f64>` on the
    /// wire), for charge sites that hold `&[f64]` rather than an owned
    /// vector.
    #[inline]
    pub fn f64_payload(self, len: usize) -> u64 {
        match self {
            Sizing::Encoded => uvarint_len(len as u64) + 8 * len as u64,
            Sizing::Estimated => 8 + 8 * len as u64,
        }
    }
}

/// Which frame generation shuffle-only records travel in.
///
/// The codec is negotiated per cluster ([`ClusterConfig::with_wire_codec`]
/// in `dcluster`) and applies **only** to shuffle-family charge sites —
/// map-side emits, reduce-side accumulator merges, and the spill bytes
/// derived from them. Broadcasts, collects, persisted partitions, DFS
/// input splits and checkpoints always stay on the exact v2 encoding:
/// those records are read back as ground truth, so they are never
/// eligible for the lossy arm, and keeping them on one version keeps the
/// golden fixtures stable.
///
/// Because the simulated shuffle hands values over in memory and only
/// *meters* the encoding, switching codecs moves byte counters and the
/// virtual clock — never the fitted model. `wire_determinism` tests pin
/// that.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WireCodec {
    /// The exact v2 encoding ([`WIRE_VERSION`] frames) — the default, and
    /// byte-for-byte what every previous release charged.
    #[default]
    V2,
    /// Bitpacked v3 ([`WIRE_VERSION_V3`] frames), lossless: delta
    /// bit-groups for ascending index sets and integral-compaction for
    /// payloads, raw `f64` otherwise.
    V3,
    /// v3 plus lossy `f64`→`f32` payload quantization for values that are
    /// neither integral nor exactly `f32`-representable.
    V3Quantized,
}

impl WireCodec {
    /// Short stable label used in traces, JSON artifacts and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            WireCodec::V2 => "v2",
            WireCodec::V3 => "v3",
            WireCodec::V3Quantized => "v3q",
        }
    }

    /// Parses the CLI spelling (`v2`, `v3`, `v3q`).
    pub fn parse(s: &str) -> Option<WireCodec> {
        match s {
            "v2" => Some(WireCodec::V2),
            "v3" => Some(WireCodec::V3),
            "v3q" | "v3-quantized" => Some(WireCodec::V3Quantized),
            _ => None,
        }
    }

    /// Metered size of a shuffle-family record under this codec and
    /// `sizing` policy. [`Sizing::Estimated`] short-circuits to the flat
    /// [`ByteSized`](crate::ByteSized) estimate regardless of codec, so
    /// the legacy differential arm stays untouched.
    #[inline]
    pub fn shuffle_size_of<T: Wire>(self, sizing: Sizing, value: &T) -> u64 {
        match (sizing, self) {
            (Sizing::Estimated, _) => value.size_bytes(),
            (Sizing::Encoded, WireCodec::V2) => value.encoded_size(),
            (Sizing::Encoded, WireCodec::V3) => value.encoded_size_v3(false),
            (Sizing::Encoded, WireCodec::V3Quantized) => value.encoded_size_v3(true),
        }
    }

    /// Whether this codec quantizes payloads (the lossy arm).
    #[inline]
    pub fn quantizes(self) -> bool {
        matches!(self, WireCodec::V3Quantized)
    }
}

impl std::fmt::Display for WireCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let buf = v.encode();
        assert_eq!(buf.len() as u64, v.encoded_size(), "encoded_size mismatch for {v:?}");
        assert_eq!(&T::decode(&buf).expect("decode"), v);
    }

    #[test]
    fn uvarint_boundaries() {
        for v in
            [0u64, 1, 127, 128, 129, 16_383, 16_384, 1 << 21, u64::from(u32::MAX), u64::MAX - 1, u64::MAX]
        {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert_eq!(buf.len() as u64, uvarint_len(v), "len mismatch for {v}");
            let mut r = WireReader::new(&buf);
            assert_eq!(r.uvarint().unwrap(), v);
            r.finish().unwrap();
        }
        assert_eq!(uvarint_len(0), 1);
        assert_eq!(uvarint_len(127), 1);
        assert_eq!(uvarint_len(128), 2);
        assert_eq!(uvarint_len(u64::MAX), 10);
    }

    #[test]
    fn uvarint_rejects_overflow_and_truncation() {
        // 11 continuation bytes can never be a valid u64 varint.
        let long = [0x80u8; 11];
        assert!(matches!(WireReader::new(&long).uvarint(), Err(WireError::Malformed(_))));
        // 2^64 exactly: ten bytes with top byte 2.
        let overflow = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert!(matches!(WireReader::new(&overflow).uvarint(), Err(WireError::Malformed(_))));
        assert_eq!(WireReader::new(&[0x80]).uvarint(), Err(WireError::Truncated));
    }

    #[test]
    fn ascending_indices_delta_roundtrip() {
        for indices in [vec![], vec![0u32], vec![5], vec![0, 1, 2, 3], vec![7, 900, 901, 65_000]] {
            let mut buf = Vec::new();
            write_ascending_u32(&mut buf, &indices);
            assert_eq!(buf.len() as u64, ascending_u32_len(&indices));
            let mut r = WireReader::new(&buf);
            let back = read_ascending_u32(&mut r, indices.len(), 1 << 20).unwrap();
            assert_eq!(back, indices);
        }
        // Dense run 100..200 costs 1 absolute + 99 zero-gap bytes.
        let dense: Vec<u32> = (100..200).collect();
        assert_eq!(ascending_u32_len(&dense), 1 + 99);
    }

    #[test]
    fn f64_preserves_bit_patterns() {
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE]
        {
            let buf = v.encode();
            assert_eq!(buf.len(), 8);
            let back = f64::decode(&buf).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bits changed for {v}");
        }
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&42u64);
        roundtrip(&7u32);
        roundtrip(&());
        roundtrip(&(3u32, 2.5f64));
        roundtrip(&vec![1.0f64, -0.0, 3.5]);
        roundtrip(&Vec::<f64>::new());
        roundtrip(&Some(9u64));
        roundtrip(&None::<u64>);
        roundtrip(&Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        roundtrip(&Mat::zeros(0, 5));
        roundtrip(&SparseMat::from_triplets(3, 10, &[(0, 2, 1.5), (0, 9, -2.0), (2, 0, 4.0)]));
        roundtrip(&SparseMat::from_triplets(0, 0, &[]));
        roundtrip(&SparseUpdate { entries: vec![(3, vec![1.0, 2.0]), (90, vec![-0.5])] });
    }

    #[test]
    fn varints_beat_flat_estimates_on_small_values() {
        // The whole point: a (u32, f64) shuffle record estimated at 12
        // bytes encodes to 9 when the key is small.
        let record = (1u32, 2.5f64);
        assert_eq!(ByteSized::size_bytes(&record), 12);
        assert_eq!(record.encoded_size(), 9);
        // Sparse entries estimated at 12 bytes each cost ~9 with deltas.
        let s = SparseMat::from_triplets(1, 1000, &[(0, 10, 1.0), (0, 11, 2.0), (0, 12, 3.0)]);
        assert!(s.encoded_size() < ByteSized::size_bytes(&s));
    }

    #[test]
    fn decode_rejects_trailing_and_truncated() {
        let mut buf = 5u64.encode();
        buf.push(0);
        assert!(matches!(u64::decode(&buf), Err(WireError::Malformed(_))));
        let m = Mat::zeros(2, 2);
        let enc = m.encode();
        assert_eq!(Mat::decode(&enc[..enc.len() - 1]), Err(WireError::Truncated));
    }

    #[test]
    fn sparse_decode_validates_structure() {
        // Column index >= cols.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1); // rows
        write_uvarint(&mut buf, 4); // cols
        write_uvarint(&mut buf, 1); // nnz
        write_uvarint(&mut buf, 1); // row len
        write_uvarint(&mut buf, 9); // index 9 out of bounds
        buf.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(matches!(SparseMat::decode(&buf), Err(WireError::Malformed(_))));

        // Row lengths disagree with declared nnz.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1); // rows
        write_uvarint(&mut buf, 4); // cols
        write_uvarint(&mut buf, 2); // nnz = 2
        write_uvarint(&mut buf, 1); // but the only row has 1
        write_uvarint(&mut buf, 0);
        buf.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(matches!(SparseMat::decode(&buf), Err(WireError::Malformed(_))));
    }

    #[test]
    fn framed_blob_checks_magic_and_version() {
        let v = vec![1.0f64, 2.0];
        let blob = encode_framed(&v);
        assert_eq!(blob.len() as u64, framed_size(&v));
        assert_eq!(decode_framed::<Vec<f64>>(&blob).unwrap(), v);

        let mut bad = blob.clone();
        bad[0] = b'X';
        assert_eq!(decode_framed::<Vec<f64>>(&bad), Err(WireError::BadMagic));

        let mut future = blob.clone();
        future[4] = 0xff;
        future[5] = 0xff;
        assert_eq!(decode_framed::<Vec<f64>>(&future), Err(WireError::BadVersion(0xffff)));

        assert_eq!(decode_framed::<Vec<f64>>(&blob[..3]), Err(WireError::Truncated));
    }

    #[test]
    fn sizing_dispatches_between_codec_and_estimate() {
        let v = vec![1.0f64; 4];
        assert_eq!(Sizing::Encoded.size_of(&v), 33);
        assert_eq!(Sizing::Estimated.size_of(&v), 40);
        assert_eq!(Sizing::Encoded.f64_payload(4), 33);
        assert_eq!(Sizing::Estimated.f64_payload(4), 40);
        assert_eq!(Sizing::default(), Sizing::Encoded);
    }

    // ---- v3 fast path ----

    fn roundtrip_v3<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        // Lossless arm: exact round-trip through the raw body and the frame.
        let buf = v.encode_v3(false);
        assert_eq!(buf.len() as u64, v.encoded_size_v3(false), "v3 size mismatch for {v:?}");
        assert_eq!(&T::decode_v3(&buf).expect("decode_v3"), v);
        let framed = encode_framed_v3(v, false);
        assert_eq!(framed.len() as u64, framed_size_v3(v, false));
        assert_eq!(&decode_framed_v3::<T>(&framed).expect("decode_framed_v3"), v);
        // Quantized arm still satisfies the size contract.
        let q = v.encode_v3(true);
        assert_eq!(q.len() as u64, v.encoded_size_v3(true), "v3q size mismatch for {v:?}");
    }

    #[test]
    fn bitpacked_u32_roundtrip() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![7],
            vec![0, 1, 2, 3, 4, 5],          // consecutive run: width 0
            vec![3, 10, 11, 500, 501, 1 << 20],
            (0..100).map(|i| i * 37).collect(),
            vec![0, u32::MAX - 1, u32::MAX],
        ];
        for indices in &cases {
            let mut buf = Vec::new();
            write_bitpacked_u32(&mut buf, indices);
            assert_eq!(buf.len() as u64, bitpacked_u32_len(indices), "len for {indices:?}");
            let mut r = WireReader::new(&buf);
            let back = read_bitpacked_u32(&mut r, indices.len(), u64::from(u32::MAX) + 1)
                .expect("read_bitpacked_u32");
            r.finish().unwrap();
            assert_eq!(&back, indices);
        }
        // A consecutive run spends zero stream bytes on deltas: varint(first)
        // + one width byte.
        let run: Vec<u32> = (10..200).collect();
        assert_eq!(bitpacked_u32_len(&run), 2);
        // Bounds are enforced on decode.
        let mut buf = Vec::new();
        write_bitpacked_u32(&mut buf, &[5, 9]);
        let mut r = WireReader::new(&buf);
        assert!(matches!(read_bitpacked_u32(&mut r, 2, 9), Err(WireError::Malformed(_))));
    }

    #[test]
    fn payload_modes_select_correctly() {
        // All-integral values (the binary sparse datasets) take the zigzag
        // integer mode — about one byte per value, losslessly.
        let ones = vec![1.0f64; 64];
        assert_eq!(payload_mode(&ones, false), PAYLOAD_INT);
        assert_eq!(f64_slice_v3_len(&ones, false), 1 + 64);
        // -0.0 is not integral (the bitwise round-trip fails), nor are
        // NaN/Inf — they force raw mode without quantization.
        for poison in [-0.0f64, f64::NAN, f64::INFINITY, 1.5e19] {
            let vals = vec![1.0, poison];
            assert_eq!(payload_mode(&vals, false), PAYLOAD_RAW, "poison {poison}");
        }
        // Non-integral values: raw without quantize, f32 with.
        let frac = vec![0.5, 1.25, -3.75];
        assert_eq!(payload_mode(&frac, false), PAYLOAD_RAW);
        assert_eq!(payload_mode(&frac, true), PAYLOAD_F32);
        assert_eq!(f64_slice_v3_len(&frac, true), 1 + 4 * 3);
    }

    #[test]
    fn f64_payload_roundtrips_per_mode() {
        for (vals, quantize) in [
            (vec![0.0, 1.0, -17.0, 1e6], false),        // INT, exact
            (vec![0.5, -1.25, 3.0], false),             // RAW, exact
            (vec![f64::NAN, f64::INFINITY], false),     // RAW, bit-exact specials
        ] {
            let mut buf = Vec::new();
            write_f64_slice_v3(&mut buf, &vals, quantize);
            assert_eq!(buf.len() as u64, f64_slice_v3_len(&vals, quantize));
            let mut r = WireReader::new(&buf);
            let back = read_f64_slice_v3(&mut r, vals.len()).unwrap();
            r.finish().unwrap();
            assert_eq!(back.len(), vals.len());
            for (a, b) in vals.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} round-tripped to {b}");
            }
        }
        // Quantized arm: values come back as the nearest f32.
        let vals = vec![0.1, std::f64::consts::PI, -2.0 / 3.0];
        let mut buf = Vec::new();
        write_f64_slice_v3(&mut buf, &vals, true);
        let mut r = WireReader::new(&buf);
        let back = read_f64_slice_v3(&mut r, vals.len()).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(b.to_bits(), f64::from(*a as f32).to_bits());
        }
        // Unknown payload mode is a typed error.
        let mut r = WireReader::new(&[9, 0, 0]);
        assert!(matches!(read_f64_slice_v3(&mut r, 1), Err(WireError::Malformed(_))));
    }

    #[test]
    fn v3_containers_roundtrip() {
        roundtrip_v3(&42u64);
        roundtrip_v3(&3.5f64);
        roundtrip_v3(&vec![1.0f64, 2.0, 3.0]);
        roundtrip_v3(&vec![0.5f64, -0.25]);
        roundtrip_v3(&(7u32, vec![1.0f64, 0.0, 2.0]));
        roundtrip_v3(&Some(vec![4.0f64; 9]));
        roundtrip_v3(&None::<Vec<f64>>);
        let mut m = Mat::zeros(3, 4);
        for (i, v) in m.data_mut().iter_mut().enumerate() {
            *v = i as f64 - 5.5;
        }
        roundtrip_v3(&m);
        let sm = SparseMat::from_triplets(
            5,
            8,
            &[(0, 1, 1.0), (0, 7, 1.0), (2, 0, 1.0), (2, 2, 1.0), (2, 3, 1.0), (4, 6, 1.0)],
        );
        roundtrip_v3(&sm);
        let upd = SparseUpdate {
            entries: vec![(3, vec![1.0, 2.0]), (9, vec![0.25]), (11, vec![])],
        };
        roundtrip_v3(&upd);
    }

    #[test]
    fn v3_shrinks_binary_sparse_records() {
        // A binary CSR row set shaped like the paper's tweet data: indices
        // compress to a few bits each, values to one byte each — well over
        // the 2x acceptance bar vs the 12-byte-per-nnz v2 encoding.
        let mut triplets: Vec<(usize, u32, f64)> = Vec::new();
        let mut rng = crate::Prng::seed_from_u64(77);
        for r in 0..64usize {
            let mut c = (rng.next_u64() % 50) as u32;
            while c < 5_000 {
                triplets.push((r, c, 1.0));
                c += 1 + (rng.next_u64() % 400) as u32;
            }
        }
        let sm = SparseMat::from_triplets(64, 5_000, &triplets);
        let v2 = sm.encoded_size();
        let v3 = sm.encoded_size_v3(false);
        assert!(
            v3 * 2 <= v2,
            "binary sparse v3 should halve v2: v2={v2} v3={v3}"
        );
        roundtrip_v3(&sm);
    }

    #[test]
    fn v2_and_v3_frames_reject_each_other() {
        let v = vec![1.0f64, 2.5, -3.0];
        let v2 = encode_framed(&v);
        let v3 = encode_framed_v3(&v, false);
        assert_eq!(
            decode_framed::<Vec<f64>>(&v3),
            Err(WireError::BadVersion(WIRE_VERSION_V3))
        );
        assert_eq!(
            decode_framed_v3::<Vec<f64>>(&v2),
            Err(WireError::BadVersion(WIRE_VERSION))
        );
        assert_eq!(decode_framed_v3::<Vec<f64>>(&v3).unwrap(), v);
    }

    #[test]
    fn wire_codec_prices_by_arm() {
        let v = vec![1.0f64; 32]; // integral: big v3 win
        let exact = v.encoded_size();
        assert_eq!(WireCodec::V2.shuffle_size_of(Sizing::Encoded, &v), exact);
        assert_eq!(
            WireCodec::V3.shuffle_size_of(Sizing::Encoded, &v),
            v.encoded_size_v3(false)
        );
        assert_eq!(
            WireCodec::V3Quantized.shuffle_size_of(Sizing::Encoded, &v),
            v.encoded_size_v3(true)
        );
        assert!(WireCodec::V3.shuffle_size_of(Sizing::Encoded, &v) * 2 < exact);
        // Estimated sizing short-circuits to the flat legacy arithmetic.
        for codec in [WireCodec::V2, WireCodec::V3, WireCodec::V3Quantized] {
            assert_eq!(codec.shuffle_size_of(Sizing::Estimated, &v), v.size_bytes());
        }
        for codec in [WireCodec::V2, WireCodec::V3, WireCodec::V3Quantized] {
            assert_eq!(WireCodec::parse(codec.label()), Some(codec));
        }
        assert_eq!(WireCodec::parse("v1"), None);
        assert_eq!(WireCodec::default(), WireCodec::V2);
        assert!(WireCodec::V3Quantized.quantizes() && !WireCodec::V3.quantizes());
    }
}
