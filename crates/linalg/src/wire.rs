//! Versioned binary wire codec for all metered traffic.
//!
//! Every byte the cluster simulator charges — MapReduce shuffle records,
//! sparkle RDD spill/broadcast, HDFS blocks, EM checkpoints — is priced by
//! this codec instead of the flat per-field estimates in [`crate::bytes`].
//! The encoding is what a production system would plausibly ship:
//!
//! * **varints** — unsigned LEB128 for all integer fields (lengths, shapes,
//!   counts, keys), so small values cost one byte instead of eight;
//! * **delta encoding** — strictly-ascending index lists (CSR column
//!   indices, packed accumulator column tables) store the first index
//!   absolute and each subsequent one as `varint(gap - 1)`; CSR row
//!   pointers are stored as per-row length deltas;
//! * **raw IEEE bits** — `f64` payloads are the 8 little-endian bytes of
//!   [`f64::to_bits`], so `NaN` payloads, `-0.0` and signalling bit
//!   patterns survive a round trip *bitwise* (the repo's determinism
//!   invariants compare `to_bits`, so the codec must too);
//! * **framing** — self-describing blobs carry the [`WIRE_MAGIC`] tag and a
//!   format version ([`WIRE_VERSION`]); bare record encodings (shuffle
//!   keys/values) omit the frame since the stream context fixes the type.
//!
//! The central contract, enforced by `tests/wire_roundtrip.rs`:
//! `encoded_size() == encode().len()` and `decode(encode(v)) == v` bitwise,
//! for every type that crosses a metered boundary.

use crate::bytes::{ByteSized, SparseUpdate};
use crate::dense::Mat;
use crate::sparse::SparseMat;

/// Magic tag opening every framed wire blob: `b"SPWR"`.
pub const WIRE_MAGIC: [u8; 4] = *b"SPWR";

/// Current framed-blob format version.
pub const WIRE_VERSION: u16 = 1;

/// Decode-side failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// Structurally invalid input (bad tag, overflow, non-ascending
    /// indices, trailing bytes, …).
    Malformed(&'static str),
    /// Framed blob did not start with [`WIRE_MAGIC`].
    BadMagic,
    /// Framed blob carried an unknown format version.
    BadVersion(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire: input truncated"),
            WireError::Malformed(what) => write!(f, "wire: malformed input: {what}"),
            WireError::BadMagic => write!(f, "wire: bad magic (expected SPWR)"),
            WireError::BadVersion(v) => write!(f, "wire: unsupported format version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over an encoded byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes an unsigned LEB128 varint.
    pub fn uvarint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::Malformed("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Malformed("varint too long"));
            }
        }
    }

    /// Consumes a varint that must fit in `usize`.
    pub fn ulen(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.uvarint()?).map_err(|_| WireError::Malformed("length exceeds usize"))
    }

    /// Consumes 8 raw little-endian bytes as an `f64` bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("take(8)"))))
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after value"))
        }
    }
}

/// Appends `v` as an unsigned LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` as a varint, in bytes (1..=10).
pub fn uvarint_len(v: u64) -> u64 {
    // bits 1..=64 → ceil(bits / 7) bytes; v == 0 still takes one byte.
    let bits = 64 - v.leading_zeros().min(63) as u64;
    bits.div_ceil(7).max(1)
}

/// Appends a strictly-ascending `u32` index list, delta-encoded: first
/// index absolute, then `varint(gap - 1)` per subsequent index.
pub fn write_ascending_u32(out: &mut Vec<u8>, indices: &[u32]) {
    let mut prev: Option<u32> = None;
    for &c in indices {
        match prev {
            None => write_uvarint(out, u64::from(c)),
            Some(p) => {
                debug_assert!(c > p, "write_ascending_u32: indices not strictly ascending");
                write_uvarint(out, u64::from(c - p) - 1);
            }
        }
        prev = Some(c);
    }
}

/// Encoded length of [`write_ascending_u32`]'s output.
pub fn ascending_u32_len(indices: &[u32]) -> u64 {
    let mut total = 0;
    let mut prev: Option<u32> = None;
    for &c in indices {
        total += match prev {
            None => uvarint_len(u64::from(c)),
            Some(p) => uvarint_len(u64::from(c - p) - 1),
        };
        prev = Some(c);
    }
    total
}

/// Reads `n` delta-encoded ascending indices, each `< max_exclusive`.
pub fn read_ascending_u32(
    r: &mut WireReader<'_>,
    n: usize,
    max_exclusive: u64,
) -> Result<Vec<u32>, WireError> {
    let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let raw = r.uvarint()?;
        let c = match prev {
            None => raw,
            Some(p) => p
                .checked_add(raw)
                .and_then(|x| x.checked_add(1))
                .ok_or(WireError::Malformed("index delta overflows"))?,
        };
        if c >= max_exclusive || c > u64::from(u32::MAX) {
            return Err(WireError::Malformed("index out of bounds"));
        }
        out.push(c as u32);
        prev = Some(c);
    }
    Ok(out)
}

/// A value with a real binary encoding.
///
/// Everything metered by the cluster simulator implements this; the meters
/// charge [`Wire::encoded_size`], which must equal `encode().len()` exactly
/// (property-tested), and [`Wire::decode`] must reproduce the input
/// bitwise. [`ByteSized`] remains as the legacy flat estimate, selectable
/// per cluster via [`Sizing::Estimated`] for differential testing.
pub trait Wire: ByteSized + Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Exact length of [`Wire::encode`]'s output, without materializing it.
    fn encoded_size(&self) -> u64;

    /// Decodes one value from the reader, leaving the cursor after it.
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size() as usize);
        self.encode_into(&mut out);
        debug_assert_eq!(out.len() as u64, self.encoded_size(), "encoded_size out of sync");
        out
    }

    /// Decodes a value occupying the whole buffer.
    fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Wire for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn encoded_size(&self) -> u64 {
        8
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64_bits()
    }
}

impl Wire for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, *self);
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(*self)
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.uvarint()
    }
}

impl Wire for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, u64::from(*self));
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(u64::from(*self))
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.uvarint()?).map_err(|_| WireError::Malformed("u32 overflow"))
    }
}

impl Wire for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, *self as u64);
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(*self as u64)
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.ulen()
    }
}

impl Wire for () {
    fn encode_into(&self, _out: &mut Vec<u8>) {}
    fn encoded_size(&self) -> u64 {
        0
    }
    fn decode_from(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn encoded_size(&self) -> u64 {
        self.0.encoded_size() + self.1.encoded_size()
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.len() as u64);
        for v in self {
            v.encode_into(out);
        }
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(self.len() as u64) + self.iter().map(Wire::encoded_size).sum::<u64>()
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.ulen()?;
        let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::encoded_size)
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            _ => Err(WireError::Malformed("Option tag must be 0 or 1")),
        }
    }
}

/// Dense block: `varint rows, varint cols`, then `rows·cols` raw f64 bits
/// in row-major order.
impl Wire for Mat {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.rows() as u64);
        write_uvarint(out, self.cols() as u64);
        for &v in self.data() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(self.rows() as u64)
            + uvarint_len(self.cols() as u64)
            + 8 * self.data().len() as u64
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.ulen()?;
        let cols = r.ulen()?;
        let n = rows.checked_mul(cols).ok_or(WireError::Malformed("Mat shape overflows"))?;
        let raw = r.take(n.checked_mul(8).ok_or(WireError::Malformed("Mat payload overflows"))?)?;
        let data = raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))))
            .collect();
        Ok(Mat::from_vec(rows, cols, data))
    }
}

/// CSR slice: `varint rows, varint cols, varint nnz`, then per row a
/// `varint` length (the row-pointer delta) followed by its delta-encoded
/// ascending column indices, then all `nnz` values as raw f64 bits.
impl Wire for SparseMat {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.rows() as u64);
        write_uvarint(out, self.cols() as u64);
        write_uvarint(out, self.nnz() as u64);
        for row in 0..self.rows() {
            let r = self.row(row);
            write_uvarint(out, r.indices.len() as u64);
            write_ascending_u32(out, r.indices);
        }
        for row in 0..self.rows() {
            for &v in self.row(row).values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        let mut total = uvarint_len(self.rows() as u64)
            + uvarint_len(self.cols() as u64)
            + uvarint_len(self.nnz() as u64)
            + 8 * self.nnz() as u64;
        for row in 0..self.rows() {
            let r = self.row(row);
            total += uvarint_len(r.indices.len() as u64) + ascending_u32_len(r.indices);
        }
        total
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.ulen()?;
        let cols = r.ulen()?;
        let nnz = r.ulen()?;
        let mut indptr = Vec::with_capacity(rows.min(r.remaining()) + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(nnz.min(r.remaining()));
        for _ in 0..rows {
            let len = r.ulen()?;
            let total =
                indptr.last().expect("non-empty").checked_add(len).ok_or(WireError::Truncated)?;
            if total > nnz {
                return Err(WireError::Malformed("row lengths exceed declared nnz"));
            }
            indices.extend(read_ascending_u32(r, len, cols as u64)?);
            indptr.push(total);
        }
        if *indptr.last().expect("non-empty") != nnz {
            return Err(WireError::Malformed("row lengths disagree with declared nnz"));
        }
        let raw = r.take(nnz.checked_mul(8).ok_or(WireError::Truncated)?)?;
        let values = raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))))
            .collect();
        Ok(SparseMat::from_raw_parts(rows, cols, indptr, indices, values))
    }
}

/// Sparse-triple shuffle record: `varint entry count`, then per entry a
/// `varint` row index, `varint` payload length and raw f64 bits.
impl Wire for SparseUpdate {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.entries.len() as u64);
        for (idx, row) in &self.entries {
            write_uvarint(out, u64::from(*idx));
            write_uvarint(out, row.len() as u64);
            for &v in row {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        uvarint_len(self.entries.len() as u64)
            + self
                .entries
                .iter()
                .map(|(idx, row)| {
                    uvarint_len(u64::from(*idx))
                        + uvarint_len(row.len() as u64)
                        + 8 * row.len() as u64
                })
                .sum::<u64>()
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.ulen()?;
        let mut entries = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            let idx = u32::decode_from(r)?;
            let len = r.ulen()?;
            let raw = r.take(len.checked_mul(8).ok_or(WireError::Truncated)?)?;
            let row = raw
                .chunks_exact(8)
                .map(|c| {
                    f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                })
                .collect();
            entries.push((idx, row));
        }
        Ok(SparseUpdate { entries })
    }
}

/// Frame overhead in bytes: 4-byte magic + 2-byte little-endian version.
pub const FRAME_OVERHEAD: u64 = 6;

/// Encodes `v` as a self-describing framed blob: magic + version + payload.
pub fn encode_framed<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity((FRAME_OVERHEAD + v.encoded_size()) as usize);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    v.encode_into(&mut out);
    out
}

/// Exact length of [`encode_framed`]'s output.
pub fn framed_size<T: Wire>(v: &T) -> u64 {
    FRAME_OVERHEAD + v.encoded_size()
}

/// Decodes a framed blob, validating magic and version.
pub fn decode_framed<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    if r.take(4)? != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("take(2)"));
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let v = T::decode_from(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// How a cluster prices the bytes of a metered value.
///
/// [`Sizing::Encoded`] (the default) charges real [`Wire`] encoded lengths;
/// [`Sizing::Estimated`] keeps the legacy flat [`ByteSized`] arithmetic for
/// differential testing (`crates/core/tests/wire_determinism.rs` proves the
/// fitted model is bitwise identical either way — sizing only moves the
/// byte meters and the virtual clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Sizing {
    /// Charge `Wire::encoded_size()` — real serialized bytes.
    #[default]
    Encoded,
    /// Charge `ByteSized::size_bytes()` — the legacy flat estimate.
    Estimated,
}

impl Sizing {
    /// Metered size of `value` under this policy.
    #[inline]
    pub fn size_of<T: Wire>(self, value: &T) -> u64 {
        match self {
            Sizing::Encoded => value.encoded_size(),
            Sizing::Estimated => value.size_bytes(),
        }
    }

    /// Metered size of a length-`len` `f64` slice (a `Vec<f64>` on the
    /// wire), for charge sites that hold `&[f64]` rather than an owned
    /// vector.
    #[inline]
    pub fn f64_payload(self, len: usize) -> u64 {
        match self {
            Sizing::Encoded => uvarint_len(len as u64) + 8 * len as u64,
            Sizing::Estimated => 8 + 8 * len as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let buf = v.encode();
        assert_eq!(buf.len() as u64, v.encoded_size(), "encoded_size mismatch for {v:?}");
        assert_eq!(&T::decode(&buf).expect("decode"), v);
    }

    #[test]
    fn uvarint_boundaries() {
        for v in
            [0u64, 1, 127, 128, 129, 16_383, 16_384, 1 << 21, u64::from(u32::MAX), u64::MAX - 1, u64::MAX]
        {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert_eq!(buf.len() as u64, uvarint_len(v), "len mismatch for {v}");
            let mut r = WireReader::new(&buf);
            assert_eq!(r.uvarint().unwrap(), v);
            r.finish().unwrap();
        }
        assert_eq!(uvarint_len(0), 1);
        assert_eq!(uvarint_len(127), 1);
        assert_eq!(uvarint_len(128), 2);
        assert_eq!(uvarint_len(u64::MAX), 10);
    }

    #[test]
    fn uvarint_rejects_overflow_and_truncation() {
        // 11 continuation bytes can never be a valid u64 varint.
        let long = [0x80u8; 11];
        assert!(matches!(WireReader::new(&long).uvarint(), Err(WireError::Malformed(_))));
        // 2^64 exactly: ten bytes with top byte 2.
        let overflow = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert!(matches!(WireReader::new(&overflow).uvarint(), Err(WireError::Malformed(_))));
        assert_eq!(WireReader::new(&[0x80]).uvarint(), Err(WireError::Truncated));
    }

    #[test]
    fn ascending_indices_delta_roundtrip() {
        for indices in [vec![], vec![0u32], vec![5], vec![0, 1, 2, 3], vec![7, 900, 901, 65_000]] {
            let mut buf = Vec::new();
            write_ascending_u32(&mut buf, &indices);
            assert_eq!(buf.len() as u64, ascending_u32_len(&indices));
            let mut r = WireReader::new(&buf);
            let back = read_ascending_u32(&mut r, indices.len(), 1 << 20).unwrap();
            assert_eq!(back, indices);
        }
        // Dense run 100..200 costs 1 absolute + 99 zero-gap bytes.
        let dense: Vec<u32> = (100..200).collect();
        assert_eq!(ascending_u32_len(&dense), 1 + 99);
    }

    #[test]
    fn f64_preserves_bit_patterns() {
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE]
        {
            let buf = v.encode();
            assert_eq!(buf.len(), 8);
            let back = f64::decode(&buf).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bits changed for {v}");
        }
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&42u64);
        roundtrip(&7u32);
        roundtrip(&());
        roundtrip(&(3u32, 2.5f64));
        roundtrip(&vec![1.0f64, -0.0, 3.5]);
        roundtrip(&Vec::<f64>::new());
        roundtrip(&Some(9u64));
        roundtrip(&None::<u64>);
        roundtrip(&Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        roundtrip(&Mat::zeros(0, 5));
        roundtrip(&SparseMat::from_triplets(3, 10, &[(0, 2, 1.5), (0, 9, -2.0), (2, 0, 4.0)]));
        roundtrip(&SparseMat::from_triplets(0, 0, &[]));
        roundtrip(&SparseUpdate { entries: vec![(3, vec![1.0, 2.0]), (90, vec![-0.5])] });
    }

    #[test]
    fn varints_beat_flat_estimates_on_small_values() {
        // The whole point: a (u32, f64) shuffle record estimated at 12
        // bytes encodes to 9 when the key is small.
        let record = (1u32, 2.5f64);
        assert_eq!(ByteSized::size_bytes(&record), 12);
        assert_eq!(record.encoded_size(), 9);
        // Sparse entries estimated at 12 bytes each cost ~9 with deltas.
        let s = SparseMat::from_triplets(1, 1000, &[(0, 10, 1.0), (0, 11, 2.0), (0, 12, 3.0)]);
        assert!(s.encoded_size() < ByteSized::size_bytes(&s));
    }

    #[test]
    fn decode_rejects_trailing_and_truncated() {
        let mut buf = 5u64.encode();
        buf.push(0);
        assert!(matches!(u64::decode(&buf), Err(WireError::Malformed(_))));
        let m = Mat::zeros(2, 2);
        let enc = m.encode();
        assert_eq!(Mat::decode(&enc[..enc.len() - 1]), Err(WireError::Truncated));
    }

    #[test]
    fn sparse_decode_validates_structure() {
        // Column index >= cols.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1); // rows
        write_uvarint(&mut buf, 4); // cols
        write_uvarint(&mut buf, 1); // nnz
        write_uvarint(&mut buf, 1); // row len
        write_uvarint(&mut buf, 9); // index 9 out of bounds
        buf.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(matches!(SparseMat::decode(&buf), Err(WireError::Malformed(_))));

        // Row lengths disagree with declared nnz.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1); // rows
        write_uvarint(&mut buf, 4); // cols
        write_uvarint(&mut buf, 2); // nnz = 2
        write_uvarint(&mut buf, 1); // but the only row has 1
        write_uvarint(&mut buf, 0);
        buf.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(matches!(SparseMat::decode(&buf), Err(WireError::Malformed(_))));
    }

    #[test]
    fn framed_blob_checks_magic_and_version() {
        let v = vec![1.0f64, 2.0];
        let blob = encode_framed(&v);
        assert_eq!(blob.len() as u64, framed_size(&v));
        assert_eq!(decode_framed::<Vec<f64>>(&blob).unwrap(), v);

        let mut bad = blob.clone();
        bad[0] = b'X';
        assert_eq!(decode_framed::<Vec<f64>>(&bad), Err(WireError::BadMagic));

        let mut future = blob.clone();
        future[4] = 0xff;
        future[5] = 0xff;
        assert_eq!(decode_framed::<Vec<f64>>(&future), Err(WireError::BadVersion(0xffff)));

        assert_eq!(decode_framed::<Vec<f64>>(&blob[..3]), Err(WireError::Truncated));
    }

    #[test]
    fn sizing_dispatches_between_codec_and_estimate() {
        let v = vec![1.0f64; 4];
        assert_eq!(Sizing::Encoded.size_of(&v), 33);
        assert_eq!(Sizing::Estimated.size_of(&v), 40);
        assert_eq!(Sizing::Encoded.f64_payload(4), 33);
        assert_eq!(Sizing::Estimated.f64_payload(4), 40);
        assert_eq!(Sizing::default(), Sizing::Encoded);
    }
}
