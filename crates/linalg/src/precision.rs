//! Precision ladder for the EM compute arms.
//!
//! The paper's workloads are communication-bound, but once the wire is
//! metered honestly the next lever is the arithmetic itself: the hot
//! kernels (`Y·CM`, `XᵀX`, `YᵀX`) tolerate reduced precision because EM
//! is a fixed-point iteration — rounding error perturbs the iterate, not
//! the attractor. Randomized-sketch results (Halko et al.) show the same
//! headroom for subspace recovery.
//!
//! Three arms:
//!
//! * [`Precision::F64`] — the default; bit-identical to every previous
//!   release, and the reference the divergence meter compares against.
//! * [`Precision::F32`] — inputs are narrowed once per block, the kernel
//!   multiplies *and accumulates* in `f32` (the fast arm: half the
//!   memory traffic, twice the SIMD lanes), and per-block results widen
//!   back into the `f64` cross-partition accumulators.
//! * [`Precision::Bf16AccF64`] — inputs are rounded to bfloat16 (8-bit
//!   exponent, 7-bit mantissa, round-to-nearest-even) but the existing
//!   `f64` kernels do the arithmetic. This isolates the *representation*
//!   error from the *accumulation* error: it models fitting from
//!   bf16-stored data with wide accumulators, the common accelerator
//!   contract.
//!
//! Every arm keeps the kernels' determinism contract: chunk splits are a
//! function of the problem shape only and reductions merge in chunk
//! order, so each arm is bitwise reproducible across worker counts —
//! the arms differ from *each other*, never from themselves.

/// Which arithmetic the EM inner loop runs in. Selected on
/// `SpcaConfig::with_precision`; the default is full `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double precision — the reference arm, byte-for-byte identical
    /// to the pre-precision-ladder code path.
    #[default]
    F64,
    /// Narrow inputs once per block, multiply and accumulate in `f32`,
    /// widen per-block results into the `f64` partials.
    F32,
    /// Round inputs to bfloat16, accumulate in `f64` via the unchanged
    /// double-precision kernels.
    Bf16AccF64,
}

impl Precision {
    /// Short stable label used in traces, JSON artifacts and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Bf16AccF64 => "bf16",
        }
    }

    /// Parses the CLI spelling (`f64`, `f32`, `bf16`).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            "bf16" | "bf16accf64" => Some(Precision::Bf16AccF64),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Rounds `v` to the nearest bfloat16 value (round-to-nearest-even) and
/// returns it widened back to `f64`.
///
/// bf16 is the top 16 bits of an `f32`, so the rounding happens on the
/// `f32` bit pattern: add `0x7FFF` plus the ties-to-even bit, then drop
/// the low 16 bits. Mantissa overflow carries into the exponent, which
/// is exactly how RNE overflows to the next binade (and to infinity at
/// the top). NaN passes through unrounded so payload bits never turn
/// into infinities.
pub fn bf16_round(v: f64) -> f64 {
    let f = v as f32;
    if f.is_nan() {
        return f as f64;
    }
    let bits = f.to_bits();
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1)) & 0xFFFF_0000;
    f32::from_bits(rounded) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labels_roundtrip() {
        for p in [Precision::F64, Precision::F32, Precision::Bf16AccF64] {
            assert_eq!(Precision::parse(p.label()), Some(p));
        }
        assert_eq!(Precision::parse("f16"), None);
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn bf16_round_known_values() {
        // Exactly representable values pass through.
        for v in [0.0, 1.0, -2.0, 0.5, 1.5, 256.0] {
            assert_eq!(bf16_round(v), v, "{v} is exact in bf16");
        }
        // 1 + 2^-8 is halfway between 1.0 and the next bf16 (1 + 2^-7);
        // ties-to-even rounds down to 1.0.
        assert_eq!(bf16_round(1.0 + 1.0 / 256.0), 1.0);
        // 1 + 3·2^-8 is halfway between 1+2^-7 and 1+2^-6; even mantissa
        // rounds up to 1+2^-6.
        assert_eq!(bf16_round(1.0 + 3.0 / 256.0), 1.0 + 1.0 / 64.0);
        // Just above halfway rounds up.
        assert_eq!(bf16_round(1.0 + 1.5 / 256.0), 1.0 + 1.0 / 128.0);
        // Sign is preserved, including on zero.
        assert_eq!(bf16_round(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(bf16_round(-1.0 - 1.5 / 256.0), -1.0 - 1.0 / 128.0);
    }

    #[test]
    fn bf16_round_extremes() {
        assert!(bf16_round(f64::NAN).is_nan());
        assert_eq!(bf16_round(f64::INFINITY), f64::INFINITY);
        assert_eq!(bf16_round(f64::NEG_INFINITY), f64::NEG_INFINITY);
        // Mantissa all-ones overflows the binade cleanly.
        let v = f32::from_bits(0x3FFF_FFFF) as f64; // just under 2.0
        assert_eq!(bf16_round(v), 2.0);
        // The largest finite bf16-adjacent f32 rounds to infinity.
        assert_eq!(bf16_round(f32::MAX as f64), f64::INFINITY);
        // bf16 keeps f32's 8-bit exponent range: tiny values survive.
        let tiny = bf16_round(1e-38);
        assert!(tiny > 0.0 && (tiny - 1e-38).abs() < 1e-39);
    }

    #[test]
    fn bf16_round_is_idempotent() {
        let mut rng = crate::Prng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.normal() * 1e3;
            let once = bf16_round(v);
            assert_eq!(bf16_round(once), once, "rounding {v} twice moved");
        }
    }
}
