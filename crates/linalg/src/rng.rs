//! Seeded random number generation.
//!
//! Every stochastic step of the paper's algorithms (the `normrnd`
//! initializations of `C` and `ss` in Algorithms 1 and 4, SSVD's random
//! projection matrix `Ω`, dataset synthesis, row sampling for the accuracy
//! estimator) draws from a [`Prng`] so experiments are reproducible from a
//! single `u64` seed.
//!
//! The generator is a self-contained xoshiro256++ with a splitmix64 seed
//! expander — no external crates, so the workspace builds fully offline.
//! Normal deviates use the Box–Muller transform on top of the uniform
//! stream.

use crate::dense::Mat;

/// One step of the splitmix64 sequence (also used as the seed expander —
/// its output is equidistributed, so any `u64` seed yields a good state).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random generator used throughout the reproduction.
///
/// xoshiro256++ (Blackman & Vigna): 256 bits of state, period 2²⁵⁶−1,
/// passes BigCrush; more than adequate for a simulation harness.
#[derive(Debug, Clone)]
pub struct Prng {
    state: [u64; 4],
    /// Second deviate cached by Box–Muller.
    spare_normal: Option<f64>,
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { state, spare_normal: None }
    }

    /// Next raw 64-bit output of the xoshiro256++ sequence.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give each dataset /
    /// algorithm / iteration its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Prng::seed_from_u64(s)
    }

    /// Uniform deviate in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational mapping onto [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        // Lemire's multiply-shift; the bias at simulation scales (bound far
        // below 2⁶⁴) is unmeasurable.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Standard normal deviate (mean 0, variance 1) via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] so the logarithm is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// `rows × cols` matrix of standard normal deviates — the paper's
    /// `normrnd(rows, cols)`.
    pub fn normal_mat(&mut self, rows: usize, cols: usize) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for v in m.data_mut() {
            *v = self.normal();
        }
        m
    }

    /// Vector of standard normal deviates.
    pub fn normal_vec(&mut self, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.normal()).collect()
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// Used by the accuracy estimator's row sampling and by sPCA-SG's
    /// smart-guess sample (Section 5.2).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        // Fisher–Yates over an index vector; O(n) memory is fine at the
        // scales this reproduction runs at.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            idx.swap(i, self.index(i + 1));
        }
        idx.truncate(k);
        idx
    }

    /// Geometric-ish Zipf sample over `[0, n)` with exponent `s`, via
    /// inverse-CDF on a precomputed table. See [`ZipfTable`].
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self.uniform())
    }
}

/// Precomputed cumulative distribution for Zipf-distributed term sampling.
///
/// The Tweets and Bio-Text matrices in the paper are term–document matrices;
/// term frequencies in text follow a Zipf law, which is what gives those
/// matrices their extreme sparsity profile. The table costs O(n) once and
/// O(log n) per sample.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the CDF for `n` ranks with exponent `s` (s ≈ 1 for text).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf table needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        let norm = 1.0 / total;
        for c in &mut cdf {
            *c *= norm;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks in the table.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the table is empty (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    fn sample(&self, u: f64) -> usize {
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        let mut parent = Prng::seed_from_u64(7);
        let mut child = parent.fork(1);
        let x = child.uniform();
        // Forking again with a different salt gives a different stream.
        let mut child2 = parent.fork(2);
        assert_ne!(x, child2.uniform());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(11);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u), "got {u}");
        }
    }

    #[test]
    fn index_covers_small_ranges() {
        let mut rng = Prng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues must appear");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = Prng::seed_from_u64(1234);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = Prng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_with(3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02);
    }

    #[test]
    fn normal_mat_has_right_shape() {
        let mut rng = Prng::seed_from_u64(0);
        let m = rng.normal_mat(3, 5);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        assert!(m.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Prng::seed_from_u64(9);
        let k = 50;
        let idx = rng.sample_indices(200, k);
        assert_eq!(idx.len(), k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 200));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = Prng::seed_from_u64(9);
        let mut idx = rng.sample_indices(10, 10);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut rng = Prng::seed_from_u64(9);
        let _ = rng.sample_indices(5, 6);
    }

    #[test]
    fn zipf_is_heavily_skewed_to_low_ranks() {
        let table = ZipfTable::new(1000, 1.0);
        let mut rng = Prng::seed_from_u64(77);
        let n = 50_000;
        let low = (0..n).filter(|_| rng.zipf(&table) < 10).count();
        // Under Zipf(1.0) the first 10 of 1000 ranks carry ~39% of the mass.
        let frac = low as f64 / n as f64;
        assert!(frac > 0.30 && frac < 0.50, "low-rank mass {frac}");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let table = ZipfTable::new(17, 1.1);
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.zipf(&table) < 17);
        }
    }
}
