//! Error type shared by all numeric routines in this crate.
//!
//! Dimension mismatches are programmer errors and are asserted at call sites;
//! `LinalgError` covers *numeric* failures that a correct caller can still
//! hit on bad data (singular systems, non-SPD inputs, iteration limits).

use std::fmt;

/// Numeric failure raised by a decomposition or solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A (near-)singular matrix was passed to a solver that requires full rank.
    Singular {
        /// Routine that detected the singularity.
        routine: &'static str,
        /// Magnitude of the offending pivot.
        pivot: f64,
    },
    /// Cholesky factorization found a non-positive diagonal entry.
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        index: usize,
        /// Value found on the diagonal.
        value: f64,
    },
    /// An iterative routine did not converge within its iteration budget.
    NonConvergence {
        /// Routine that gave up.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The requested factorization rank exceeds what the input supports.
    RankTooLarge {
        /// Rank requested by the caller.
        requested: usize,
        /// Largest rank supported by the input dimensions.
        available: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { routine, pivot } => {
                write!(f, "{routine}: matrix is singular (pivot magnitude {pivot:.3e})")
            }
            LinalgError::NotPositiveDefinite { index, value } => write!(
                f,
                "cholesky: matrix is not positive definite (diagonal {index} = {value:.3e})"
            ),
            LinalgError::NonConvergence { routine, iterations } => {
                write!(f, "{routine}: no convergence after {iterations} iterations")
            }
            LinalgError::RankTooLarge { requested, available } => write!(
                f,
                "requested rank {requested} exceeds the {available} supported by the input"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::Singular { routine: "lu", pivot: 1e-300 };
        assert!(e.to_string().contains("lu"));
        assert!(e.to_string().contains("singular"));

        let e = LinalgError::NotPositiveDefinite { index: 3, value: -0.5 };
        assert!(e.to_string().contains("positive definite"));

        let e = LinalgError::NonConvergence { routine: "tqli", iterations: 30 };
        assert!(e.to_string().contains("30"));

        let e = LinalgError::RankTooLarge { requested: 9, available: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
