//! Process-wide recycling of large `f64` buffers.
//!
//! The batched EM path retires multi-megabyte buffers every partition of
//! every iteration (packed `YtX` slabs, latent-block scratch, merged
//! accumulators). Fresh allocations of that size are served by `mmap` and
//! repay a page fault per 4 KiB on first touch; at the paper's shapes the
//! faults cost more than the arithmetic on the buffer. This bounded
//! freelist hands retired buffers back pre-faulted — `take_zeroed` clears
//! them with an in-place memset, several times cheaper than faulting a
//! fresh mapping.
//!
//! Recycling cannot affect results: every buffer handed out is fully
//! cleared, so contents never leak across uses, and buffer identity is
//! invisible to the arithmetic.

use std::sync::{Mutex, MutexGuard};

/// Upper bound on retained buffer count (keeps the best-fit scan short).
const MAX_BUFFERS: usize = 128;

/// Upper bound on retained bytes across all buffers.
const MAX_RETAINED_BYTES: usize = 256 << 20;

static POOL: Mutex<Pool> = Mutex::new(Pool { buffers: Vec::new(), bytes: 0 });

struct Pool {
    buffers: Vec<Vec<f64>>,
    bytes: usize,
}

fn pool() -> MutexGuard<'static, Pool> {
    POOL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A buffer of exactly `len` zeros, reusing a retired allocation when one
/// is large enough.
pub fn take_zeroed(len: usize) -> Vec<f64> {
    let mut v = take_cleared(len);
    v.resize(len, 0.0);
    v
}

/// An empty buffer with capacity at least `min_capacity`: the smallest
/// retired buffer that fits, or a fresh allocation if none does.
pub fn take_cleared(min_capacity: usize) -> Vec<f64> {
    let mut p = pool();
    let mut best: Option<usize> = None;
    for (i, b) in p.buffers.iter().enumerate() {
        if b.capacity() >= min_capacity
            && best.map_or(true, |j| b.capacity() < p.buffers[j].capacity())
        {
            best = Some(i);
        }
    }
    match best {
        Some(i) => {
            let v = p.buffers.swap_remove(i);
            p.bytes -= v.capacity() * 8;
            v
        }
        None => Vec::with_capacity(min_capacity),
    }
}

/// Retires a buffer into the freelist (silently dropped once the list is
/// at its count or byte bound).
pub fn recycle(v: Vec<f64>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    let mut p = pool();
    if p.buffers.len() >= MAX_BUFFERS || p.bytes + cap * 8 > MAX_RETAINED_BYTES {
        return;
    }
    p.bytes += cap * 8;
    let mut v = v;
    v.clear();
    p.buffers.push(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_all_zeros_even_after_recycling_dirty_buffer() {
        let mut v = vec![0.0; 1000];
        v.iter_mut().for_each(|x| *x = 7.0);
        recycle(v);
        let z = take_zeroed(1000);
        assert_eq!(z.len(), 1000);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn recycled_capacity_is_reused() {
        let mut v = Vec::with_capacity(4096);
        v.resize(4096, 1.0);
        recycle(v);
        let t = take_cleared(4000);
        assert!(t.capacity() >= 4000);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        recycle(Vec::new());
        // No panic, nothing retained; a take still works.
        let t = take_cleared(8);
        assert!(t.capacity() >= 8);
    }
}
