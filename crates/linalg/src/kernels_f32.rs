//! Single-precision variants of the hot EM kernels.
//!
//! The [`Precision::F32`](crate::precision::Precision) arm narrows each
//! block's inputs once, runs the whole inner loop — `Y·CM` (spmm), `XᵀX`
//! (syrk), `YᵀX` (spmm_tn) and the packed-panel `AᵀB` GEMM — in `f32`,
//! and widens the per-block results into the `f64` cross-partition
//! accumulators. Half the memory traffic and twice the SIMD lanes of the
//! `f64` kernels; the AVX-512 `matmul_tn` tile gets an `f32` twin with
//! 16-lane zmm groups behind the same runtime dispatch.
//!
//! # Determinism contract
//!
//! Identical to [`kernels`](crate::kernels): chunk splits are a function
//! of the problem shape only (the *same* `chunk_count`/`row_ranges` the
//! `f64` kernels use), reductions merge partials in chunk-index order,
//! and every output element accumulates its terms in ascending input-row
//! order. The `f32` arm is therefore bitwise reproducible across 1, 2 or
//! 64 workers — it differs from the `f64` arm, never from itself.

use crate::dense::Mat;
use crate::kernels::{chunk_count, row_ranges, MAX_SCATTER_BANDS, SCATTER_BAND_ELEMS};
use crate::pool::WorkerPool;
use crate::sparse::SparseMat;

/// A row-major `f32` matrix: the narrowed operand the `f32` arm threads
/// between kernels. Deliberately minimal — it exists so a block's dense
/// operands are narrowed once, not once per kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct MatF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatF32 {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatF32 { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Narrows an `f64` matrix element-wise (round-to-nearest-even, the
    /// hardware `f64`→`f32` conversion).
    pub fn from_f64(m: &Mat) -> Self {
        MatF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.data().iter().map(|&v| v as f32).collect(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Widens back to `f64` (exact — every `f32` is representable).
    pub fn to_f64(&self) -> Mat {
        Mat::from_vec(self.rows, self.cols, self.data.iter().map(|&v| v as f64).collect())
    }
}

/// `y += alpha * x` in `f32`.
fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

// ---------------------------------------------------------------------------
// sparse_mul_dense_f32: X = Y·B for CSR Y (values narrowed on the fly)
// ---------------------------------------------------------------------------

/// `out += Y·B` in `f32`; `out` is a caller-zeroed `y.rows() × b.cols()`
/// row-major buffer. Row-parallel with the same nnz-balanced split as the
/// `f64` kernel, so results are bit-identical on any pool.
pub fn sparse_mul_dense_f32_into_with_pool(
    pool: &WorkerPool,
    y: &SparseMat,
    b: &MatF32,
    out: &mut [f32],
) {
    let m = y.rows();
    let n = b.cols();
    assert_eq!(y.cols(), b.rows(), "mul_dense_f32: inner dimensions differ");
    assert_eq!(out.len(), m * n, "mul_dense_f32: output buffer is {} not {}", out.len(), m * n);
    let _span = obs::span_lazy("kernel", || format!("sparse_mul_dense_f32 {m}x{n} nnz={}", y.nnz()))
        .with_flops(2 * y.nnz() as u64 * n as u64);
    if m == 0 || n == 0 {
        return;
    }
    let mean_nnz = y.nnz() / m.max(1);
    let chunks = chunk_count(m, 2 * n * mean_nnz.max(1));
    if chunks == 1 {
        sparse_rows_mul_f32(y, b, 0, m, out);
        return;
    }
    let ranges = crate::kernels::nnz_ranges(y, chunks);
    let mut slices: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(chunks);
    let mut rest = out;
    for &(start, end) in &ranges {
        let (head, tail) = rest.split_at_mut((end - start) * n);
        slices.push((start, end, head));
        rest = tail;
    }
    pool.run(
        slices
            .into_iter()
            .map(|(start, end, slice)| move || sparse_rows_mul_f32(y, b, start, end, slice))
            .collect(),
    );
}

/// Output rows `[start, end)` of `Y·B` in `f32`, ascending non-zero order.
fn sparse_rows_mul_f32(y: &SparseMat, b: &MatF32, start: usize, end: usize, out: &mut [f32]) {
    let n = b.cols();
    for r in start..end {
        let row = y.row(r);
        let o = &mut out[(r - start) * n..(r - start + 1) * n];
        for (&c, &v) in row.indices.iter().zip(row.values) {
            axpy_f32(v as f32, b.row(c as usize), o);
        }
    }
}

// ---------------------------------------------------------------------------
// syrk_tn_f32: C = XᵀX
// ---------------------------------------------------------------------------

/// `XᵀX` in `f32` on an explicit pool: output-row bands over the upper
/// triangle, exact mirror at the end — the `f64` kernel's structure with
/// narrow arithmetic. Bit-identical on any pool size.
pub fn syrk_tn_f32_with_pool(pool: &WorkerPool, x: &MatF32) -> MatF32 {
    let (n, d) = (x.rows(), x.cols());
    let _span = obs::span_lazy("kernel", || format!("syrk_tn_f32 {n}x{d}"))
        .with_flops(n as u64 * d as u64 * (d as u64 + 1));
    let mut out = MatF32::zeros(d, d);
    if n == 0 || d == 0 {
        return out;
    }
    let chunks = chunk_count(d, n * (d + 1));
    if chunks == 1 {
        syrk_tn_band_f32(x, 0, d, out.data_mut());
    } else {
        let ranges = row_ranges(d, chunks);
        let mut slices: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(chunks);
        let mut rest = out.data_mut();
        for &(start, end) in &ranges {
            let (head, tail) = rest.split_at_mut((end - start) * d);
            slices.push((start, end, head));
            rest = tail;
        }
        pool.run(
            slices
                .into_iter()
                .map(|(start, end, slice)| move || syrk_tn_band_f32(x, start, end, slice))
                .collect(),
        );
    }
    for i in 0..d {
        for j in 0..i {
            out.data[i * d + j] = out.data[j * d + i];
        }
    }
    out
}

fn syrk_tn_band_f32(x: &MatF32, lo: usize, hi: usize, out: &mut [f32]) {
    let d = x.cols();
    for r in 0..x.rows() {
        let row = x.row(r);
        for i in lo..hi {
            let xi = row[i];
            if xi != 0.0 {
                let base = (i - lo) * d;
                axpy_f32(xi, &row[i..], &mut out[base + i..base + d]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// spmm_tn_f32: C = YᵀX — the packed scatter of the batched EM path
// ---------------------------------------------------------------------------

/// `YᵀX` (`D×d` dense) in `f32` on an explicit pool.
pub fn spmm_tn_f32_with_pool(pool: &WorkerPool, y: &SparseMat, x: &MatF32) -> MatF32 {
    assert_eq!(y.rows(), x.rows(), "spmm_tn_f32: row counts differ");
    let mut out = MatF32::zeros(y.cols(), x.cols());
    spmm_scatter_f32(pool, y, x, None, out.data_mut());
    out
}

/// Packed `YᵀX` in `f32`: output row `map[c]` accumulates column `c`,
/// into a caller-zeroed `out_rows × x.cols()` slab — the `f32` twin of
/// the hash-free `YtxPartial` inner loop.
pub fn spmm_tn_packed_f32_with_pool(
    pool: &WorkerPool,
    y: &SparseMat,
    x: &MatF32,
    map: &[u32],
    out: &mut [f32],
) {
    assert_eq!(y.rows(), x.rows(), "spmm_tn_f32: row counts differ");
    assert_eq!(map.len(), y.cols(), "spmm_tn_f32: column map covers every Y column");
    spmm_scatter_f32(pool, y, x, Some(map), out)
}

/// Banded scatter, structurally identical to the `f64` driver: non-zeros
/// are bucketed per output band in one stable counting pass (preserving
/// scan order), bands run in parallel over disjoint output slices.
fn spmm_scatter_f32(
    pool: &WorkerPool,
    y: &SparseMat,
    x: &MatF32,
    map: Option<&[u32]>,
    out: &mut [f32],
) {
    let d = x.cols();
    if d == 0 {
        return;
    }
    assert_eq!(out.len() % d, 0, "spmm_tn_f32: output is a whole number of rows");
    let out_rows = out.len() / d;
    let _span = obs::span_lazy("kernel", || {
        format!("spmm_tn_f32 {}x{out_rows}x{d} nnz={}", y.rows(), y.nnz())
    })
    .with_flops(2 * y.nnz() as u64 * d as u64);
    if out_rows == 0 || y.nnz() == 0 {
        return;
    }
    // Same band geometry as the f64 scatter; f32 elements are half the
    // bytes but the band size is an element count, so the f32 bands are
    // simply more cache-resident.
    let bands = out.len().div_ceil(SCATTER_BAND_ELEMS).clamp(1, MAX_SCATTER_BANDS.min(out_rows));
    if bands == 1 {
        spmm_scatter_band_f32(y, x, map, 0, out_rows, out);
        return;
    }
    let band_rows = out_rows.div_ceil(bands);

    let mut starts = vec![0usize; bands + 1];
    let target = |c: u32| -> usize {
        match map {
            Some(m) => m[c as usize] as usize,
            None => c as usize,
        }
    };
    for &c in y.col_indices() {
        starts[target(c) / band_rows + 1] += 1;
    }
    for b in 0..bands {
        starts[b + 1] += starts[b];
    }
    let mut entries: Vec<(u32, u32, f32)> = vec![(0, 0, 0.0); y.nnz()];
    let mut next = starts.clone();
    for r in 0..y.rows() {
        let row = y.row(r);
        for (&c, &v) in row.indices.iter().zip(row.values) {
            let t = target(c);
            let slot = &mut next[t / band_rows];
            entries[*slot] = (t as u32, r as u32, v as f32);
            *slot += 1;
        }
    }

    let mut tasks: Vec<(usize, &[(u32, u32, f32)], &mut [f32])> = Vec::with_capacity(bands);
    let mut rest = out;
    for b in 0..bands {
        let lo = b * band_rows;
        let hi = ((b + 1) * band_rows).min(out_rows);
        let (head, tail) = rest.split_at_mut((hi - lo) * d);
        tasks.push((lo, &entries[starts[b]..starts[b + 1]], head));
        rest = tail;
    }
    pool.run(
        tasks
            .into_iter()
            .map(|(lo, band_entries, slice)| {
                move || {
                    for &(t, r, v) in band_entries {
                        let base = (t as usize - lo) * d;
                        axpy_f32(v, x.row(r as usize), &mut slice[base..base + d]);
                    }
                }
            })
            .collect(),
    );
}

fn spmm_scatter_band_f32(
    y: &SparseMat,
    x: &MatF32,
    map: Option<&[u32]>,
    lo: usize,
    hi: usize,
    out: &mut [f32],
) {
    let d = x.cols();
    for r in 0..y.rows() {
        let row = y.row(r);
        if row.indices.is_empty() {
            continue;
        }
        let xr = x.row(r);
        for (&c, &v) in row.indices.iter().zip(row.values) {
            let t = match map {
                Some(m) => m[c as usize] as usize,
                None => c as usize,
            };
            if t >= lo && t < hi {
                axpy_f32(v as f32, xr, &mut out[(t - lo) * d..(t - lo + 1) * d]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// matmul_tn_f32: C = AᵀB — the packed-panel GEMM with an AVX-512 f32 tile
// ---------------------------------------------------------------------------

/// Register-tile width over the output columns (portable `f32` path):
/// one full 16-lane f32 SIMD vector on AVX-512, two on AVX2.
const TN_JR_F32: usize = 16;
/// Register-tile height over the output rows (portable `f32` path).
const TN_IR_F32: usize = 8;

/// `AᵀB` in `f32` on an explicit pool. Same chunked reduction over the
/// shared row dimension as the `f64` kernel: fixed chunks, partials
/// summed in chunk order, single-worker fast path with the identical
/// association — bit-identical for every worker count.
pub fn matmul_tn_f32_with_pool(pool: &WorkerPool, a: &MatF32, b: &MatF32) -> MatF32 {
    let rows = a.rows();
    let (acols, bcols) = (a.cols(), b.cols());
    assert_eq!(rows, b.rows(), "matmul_tn_f32: row counts differ ({} vs {})", rows, b.rows());
    let _span = obs::span_lazy("kernel", || format!("matmul_tn_f32 {rows}x{acols}x{bcols}"))
        .with_flops(2 * rows as u64 * acols as u64 * bcols as u64);
    let mut out = MatF32::zeros(acols, bcols);
    if rows == 0 || acols == 0 || bcols == 0 {
        return out;
    }
    let chunks = chunk_count(rows, 2 * acols * bcols);
    if chunks == 1 {
        matmul_tn_rows_f32(a, b, 0, rows, out.data_mut());
        return out;
    }
    let ranges = row_ranges(rows, chunks);
    if pool.workers() == 1 {
        for (start, end) in ranges {
            matmul_tn_rows_f32(a, b, start, end, out.data_mut());
        }
        return out;
    }
    let partials: Vec<Vec<f32>> = pool.run(
        ranges
            .into_iter()
            .map(|(start, end)| {
                move || {
                    let mut partial = vec![0.0f32; acols * bcols];
                    matmul_tn_rows_f32(a, b, start, end, &mut partial);
                    partial
                }
            })
            .collect(),
    );
    let data = out.data_mut();
    for partial in &partials {
        axpy_f32(1.0, partial, data);
    }
    out
}

/// Chunk kernel dispatch: AVX-512 tile when the CPU has it, portable
/// packed panels otherwise (same split as the `f64` dispatch).
fn matmul_tn_rows_f32(a: &MatF32, b: &MatF32, start: usize, end: usize, out: &mut [f32]) {
    if end == start {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f presence was just checked; every pointer the
            // kernel dereferences stays inside `a`, `b`, or `out`.
            unsafe { matmul_tn_rows_f32_avx512(a, b, start, end, out) };
            return;
        }
    }
    matmul_tn_rows_f32_portable(a, b, start, end, out);
}

/// Output-row block of the AVX-512 `f32` tile — same register budget as
/// the `f64` tile (4·G accumulators + G B vectors + 1 broadcast), but
/// each zmm now carries 16 lanes, so a full `G = 4` pass feeds 64 output
/// columns per broadcast.
#[cfg(target_arch = "x86_64")]
const TN_AVX_IR_F32: usize = 4;

/// AVX-512 `matmul_tn_f32` chunk kernel: the `f64` kernel's structure at
/// twice the lane width. No packing; A is walked at its natural stride
/// with the same rightward prefetch.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_tn_rows_f32_avx512(
    a: &MatF32,
    b: &MatF32,
    start: usize,
    end: usize,
    out: &mut [f32],
) {
    let acols = a.cols();
    let bcols = b.cols();
    let len = end - start;
    let imain = acols - acols % TN_AVX_IR_F32;
    let jmain = bcols - bcols % 16;

    let abase = a.data().as_ptr().add(start * acols);
    let bbase = b.data().as_ptr().add(start * bcols);
    let obase = out.as_mut_ptr();

    let mut i0 = 0;
    while i0 < imain {
        let a0 = abase.add(i0);
        let mut j0 = 0;
        while j0 + 64 <= jmain {
            tn_tile_f32_avx512::<TN_AVX_IR_F32, 4>(a0, acols, bbase.add(j0), bcols, len, obase.add(i0 * bcols + j0), bcols);
            j0 += 64;
        }
        if j0 + 32 <= jmain {
            tn_tile_f32_avx512::<TN_AVX_IR_F32, 2>(a0, acols, bbase.add(j0), bcols, len, obase.add(i0 * bcols + j0), bcols);
            j0 += 32;
        }
        if j0 + 16 <= jmain {
            tn_tile_f32_avx512::<TN_AVX_IR_F32, 1>(a0, acols, bbase.add(j0), bcols, len, obase.add(i0 * bcols + j0), bcols);
        }
        i0 += TN_AVX_IR_F32;
    }

    tn_remainders_f32(a, b, start, end, out, imain, jmain);
}

/// One AVX-512 `f32` register tile: `R × (16·G)` outputs accumulated over
/// `len` rows, added into `out` once. Fused multiply-add, like the `f64`
/// tile — the `f32` arm's contract is self-consistency, not agreement
/// with a separately-rounded reference.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tn_tile_f32_avx512<const R: usize, const G: usize>(
    a0: *const f32,
    astride: usize,
    b0: *const f32,
    bstride: usize,
    len: usize,
    o0: *mut f32,
    ostride: usize,
) {
    use std::arch::x86_64::{
        _mm_prefetch, _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps,
        _mm512_setzero_ps, _mm512_storeu_ps, _MM_HINT_T0,
    };
    let mut acc = [[_mm512_setzero_ps(); G]; R];
    let mut ap = a0;
    let mut bp = b0;
    for _ in 0..len {
        // Rightward prefetch of this row's next-but-one column sweep —
        // same rationale as the f64 tile (the line is on an
        // already-mapped page, so the prefetch always lands).
        _mm_prefetch::<_MM_HINT_T0>(ap.wrapping_add(16) as *const i8);
        let mut bv = [_mm512_setzero_ps(); G];
        for (g, v) in bv.iter_mut().enumerate() {
            *v = _mm512_loadu_ps(bp.add(16 * g));
        }
        for (t, acc_row) in acc.iter_mut().enumerate() {
            let at = _mm512_set1_ps(*ap.add(t));
            for (g, acc_tg) in acc_row.iter_mut().enumerate() {
                *acc_tg = _mm512_fmadd_ps(at, bv[g], *acc_tg);
            }
        }
        ap = ap.add(astride);
        bp = bp.add(bstride);
    }
    for (t, acc_row) in acc.iter().enumerate() {
        for (g, acc_tg) in acc_row.iter().enumerate() {
            let o = o0.add(t * ostride + 16 * g);
            _mm512_storeu_ps(o, _mm512_add_ps(_mm512_loadu_ps(o), *acc_tg));
        }
    }
}

/// Portable packed-panel `f32` chunk kernel — row-interleaved panels and
/// an `#[inline(never)]` register tile, exactly the `f64` portable path
/// at a 16-wide tile.
fn matmul_tn_rows_f32_portable(a: &MatF32, b: &MatF32, start: usize, end: usize, out: &mut [f32]) {
    let acols = a.cols();
    let bcols = b.cols();
    let len = end - start;
    let imain = acols - acols % TN_IR_F32;
    let jmain = bcols - bcols % TN_JR_F32;
    let igroups = imain / TN_IR_F32;
    let jgroups = jmain / TN_JR_F32;

    let mut apack = vec![0.0f32; igroups * len * TN_IR_F32];
    let mut bpack = vec![0.0f32; jgroups * len * TN_JR_F32];
    for rr in 0..len {
        let a_row = a.row(start + rr);
        for (p, a_blk) in a_row[..imain].chunks_exact(TN_IR_F32).enumerate() {
            let a_blk: &[f32; TN_IR_F32] = a_blk.try_into().expect("panel width");
            let dst: &mut [f32; TN_IR_F32] = (&mut apack[(p * len + rr) * TN_IR_F32..][..TN_IR_F32])
                .try_into()
                .expect("panel slot");
            *dst = *a_blk;
        }
        let b_row = b.row(start + rr);
        for (g, b_blk) in b_row[..jmain].chunks_exact(TN_JR_F32).enumerate() {
            let b_blk: &[f32; TN_JR_F32] = b_blk.try_into().expect("panel width");
            let dst: &mut [f32; TN_JR_F32] = (&mut bpack[(g * len + rr) * TN_JR_F32..][..TN_JR_F32])
                .try_into()
                .expect("panel slot");
            *dst = *b_blk;
        }
    }

    for p in 0..igroups {
        let apanel = &apack[p * len * TN_IR_F32..(p + 1) * len * TN_IR_F32];
        let i0 = p * TN_IR_F32;
        for g in 0..jgroups {
            let bgrp = &bpack[g * len * TN_JR_F32..(g + 1) * len * TN_JR_F32];
            let acc = tn_tile_f32_portable(apanel, bgrp);
            let j0 = g * TN_JR_F32;
            for (t, acc_row) in acc.iter().enumerate() {
                let o = &mut out[(i0 + t) * bcols + j0..(i0 + t) * bcols + j0 + TN_JR_F32];
                for (u, &v) in acc_row.iter().enumerate() {
                    o[u] += v;
                }
            }
        }
    }

    tn_remainders_f32(a, b, start, end, out, imain, jmain);
}

/// The portable `f32` micro-kernel; `#[inline(never)]` for the same
/// vectorizer reason as the `f64` tile.
#[inline(never)]
fn tn_tile_f32_portable(apack: &[f32], bgrp: &[f32]) -> [[f32; TN_JR_F32]; TN_IR_F32] {
    let mut acc = [[0.0f32; TN_JR_F32]; TN_IR_F32];
    for (a_blk, b_blk) in apack.chunks_exact(TN_IR_F32).zip(bgrp.chunks_exact(TN_JR_F32)) {
        let a_blk: &[f32; TN_IR_F32] = a_blk.try_into().expect("tile height");
        let b_blk: &[f32; TN_JR_F32] = b_blk.try_into().expect("tile width");
        for u in 0..TN_JR_F32 {
            let bu = b_blk[u];
            for t in 0..TN_IR_F32 {
                acc[t][u] += a_blk[t] * bu;
            }
        }
    }
    acc
}

/// Remainder rows/columns: per-row axpys in ascending `r`, shared by both
/// chunk kernels.
fn tn_remainders_f32(
    a: &MatF32,
    b: &MatF32,
    start: usize,
    end: usize,
    out: &mut [f32],
    imain: usize,
    jmain: usize,
) {
    let acols = a.cols();
    let bcols = b.cols();
    if imain < acols {
        for r in start..end {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for i in imain..acols {
                let c = a_row[i];
                if c != 0.0 {
                    axpy_f32(c, b_row, &mut out[i * bcols..(i + 1) * bcols]);
                }
            }
        }
    }
    if jmain < bcols {
        for r in start..end {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for i in 0..imain {
                let c = a_row[i];
                if c != 0.0 {
                    let o = &mut out[i * bcols + jmain..(i + 1) * bcols];
                    for (oj, &bj) in o.iter_mut().zip(&b_row[jmain..]) {
                        *oj += c * bj;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn random_sparse(rng: &mut Prng, rows: usize, cols: usize, nnz: usize) -> SparseMat {
        let mut triplets = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            triplets.push((rng.index(rows), rng.index(cols) as u32, rng.normal()));
        }
        SparseMat::from_triplets(rows, cols, &triplets)
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn f32_kernels_are_bitwise_deterministic_across_pools() {
        let mut rng = Prng::seed_from_u64(31);
        let (n, dd, d) = (900usize, 400usize, 24usize);
        let y = random_sparse(&mut rng, n, dd, 8_000);
        let cm = MatF32::from_f64(&rng.normal_mat(dd, d));
        let x = MatF32::from_f64(&rng.normal_mat(n, d));
        let a = MatF32::from_f64(&rng.normal_mat(n, 40));
        let b = MatF32::from_f64(&rng.normal_mat(n, 32));

        let serial = WorkerPool::new(1);
        let two = WorkerPool::new(2);
        let wide = WorkerPool::new(8);
        let reference_mul = {
            let mut out = vec![0.0f32; n * d];
            sparse_mul_dense_f32_into_with_pool(&serial, &y, &cm, &mut out);
            out
        };
        let reference_syrk = syrk_tn_f32_with_pool(&serial, &x);
        let reference_spmm = spmm_tn_f32_with_pool(&serial, &y, &x);
        let reference_tn = matmul_tn_f32_with_pool(&serial, &a, &b);
        for pool in [&two, &wide, WorkerPool::global()] {
            let mut out = vec![0.0f32; n * d];
            sparse_mul_dense_f32_into_with_pool(pool, &y, &cm, &mut out);
            assert_eq!(bits(&out), bits(&reference_mul), "sparse_mul_dense_f32 reassociated");
            assert_eq!(
                bits(syrk_tn_f32_with_pool(pool, &x).data()),
                bits(reference_syrk.data()),
                "syrk_tn_f32 reassociated"
            );
            assert_eq!(
                bits(spmm_tn_f32_with_pool(pool, &y, &x).data()),
                bits(reference_spmm.data()),
                "spmm_tn_f32 reassociated"
            );
            assert_eq!(
                bits(matmul_tn_f32_with_pool(pool, &a, &b).data()),
                bits(reference_tn.data()),
                "matmul_tn_f32 reassociated"
            );
        }
    }

    #[test]
    fn f32_kernels_track_the_f64_results() {
        // Not bitwise — the arm's whole point is different arithmetic —
        // but the products must agree to f32-roundoff at these shapes.
        let mut rng = Prng::seed_from_u64(32);
        let (n, dd, d) = (300usize, 200usize, 12usize);
        let y = random_sparse(&mut rng, n, dd, 3_000);
        let cm64 = rng.normal_mat(dd, d);
        let cm = MatF32::from_f64(&cm64);
        let pool = WorkerPool::new(4);

        let exact = crate::kernels::sparse_mul_dense_with_pool(&pool, &y, &cm64);
        let mut narrow = vec![0.0f32; n * d];
        sparse_mul_dense_f32_into_with_pool(&pool, &y, &cm, &mut narrow);
        let scale = exact.data().iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (g, e) in narrow.iter().zip(exact.data()) {
            assert!(
                (*g as f64 - e).abs() <= 1e-4 * scale,
                "f32 spmm drifted: {g} vs {e}"
            );
        }

        let x64 = rng.normal_mat(n, d);
        let x = MatF32::from_f64(&x64);
        let exact_syrk = crate::kernels::syrk_tn_with_pool(&pool, &x64);
        let narrow_syrk = syrk_tn_f32_with_pool(&pool, &x);
        let scale = exact_syrk.data().iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (g, e) in narrow_syrk.data().iter().zip(exact_syrk.data()) {
            assert!((*g as f64 - e).abs() <= 1e-3 * scale, "f32 syrk drifted: {g} vs {e}");
        }

        let a64 = rng.normal_mat(n, 17); // odd widths exercise remainders
        let b64 = rng.normal_mat(n, 19);
        let exact_tn = crate::kernels::matmul_tn_with_pool(&pool, &a64, &b64);
        let narrow_tn =
            matmul_tn_f32_with_pool(&pool, &MatF32::from_f64(&a64), &MatF32::from_f64(&b64));
        let scale = exact_tn.data().iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (g, e) in narrow_tn.data().iter().zip(exact_tn.data()) {
            assert!((*g as f64 - e).abs() <= 1e-3 * scale, "f32 matmul_tn drifted: {g} vs {e}");
        }
    }

    #[test]
    fn packed_f32_scatter_matches_full() {
        let mut rng = Prng::seed_from_u64(33);
        let (n, dd, d) = (120usize, 300usize, 8usize);
        let y = random_sparse(&mut rng, n, dd, 700);
        let x = MatF32::from_f64(&rng.normal_mat(n, d));
        let pool = WorkerPool::new(3);
        let full = spmm_tn_f32_with_pool(&pool, &y, &x);
        // Ascending support map, like the YtxPartial slab uses.
        let mut map = vec![u32::MAX; dd];
        let mut support: Vec<u32> = y.col_indices().to_vec();
        support.sort_unstable();
        support.dedup();
        for (i, &c) in support.iter().enumerate() {
            map[c as usize] = i as u32;
        }
        let mut slab = vec![0.0f32; support.len() * d];
        spmm_tn_packed_f32_with_pool(&pool, &y, &x, &map, &mut slab);
        for (i, &c) in support.iter().enumerate() {
            assert_eq!(
                bits(&slab[i * d..(i + 1) * d]),
                bits(full.row(c as usize)),
                "packed f32 row {c}"
            );
        }
    }
}
