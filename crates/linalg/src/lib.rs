//! Dense and sparse linear algebra substrate for the sPCA reproduction.
//!
//! This crate provides everything the paper's algorithms need, built from
//! scratch:
//!
//! * [`Mat`] — a row-major dense matrix with the usual BLAS-3 style products,
//!   tuned for the "small in-memory matrix" role sPCA gives to `C`, `M`,
//!   `CM`, `XtX` and `YtX` (Section 3.3 of the paper).
//! * [`SparseMat`] — a CSR sparse matrix used for the large input matrix `Y`;
//!   all products iterate non-zeros only, which is what makes the paper's
//!   *mean propagation* optimization (Section 3.1) pay off.
//! * [`decomp`] — LU, Cholesky, Householder QR (plus communication-avoiding
//!   TSQR), symmetric eigendecomposition (tridiagonalization + implicit QL,
//!   and cyclic Jacobi), one-sided Jacobi SVD, Golub–Kahan bidiagonalization,
//!   and Lanczos bidiagonalization for sparse SVD. These cover the
//!   decompositions behind every method analyzed in Section 2 / Table 1.
//! * [`rng::Prng`] — a seeded RNG with Box–Muller normal deviates, the
//!   `normrnd` of the paper's pseudocode (std-only xoshiro256++, so the
//!   workspace builds fully offline).
//! * [`kernels`] — cache-blocked, multi-threaded product kernels with a
//!   bit-for-bit determinism contract, running on the persistent
//!   [`pool::WorkerPool`] shared with the simulated cluster's stages.
//!
//! The default numeric scalar is `f64` throughout. The [`precision`]
//! ladder adds opt-in reduced-precision arms for the hot EM kernels
//! ([`kernels_f32`]), each bitwise-reproducible across worker counts;
//! `f64` remains the reference every arm is measured against.

pub mod bytes;
pub mod dense;
pub mod error;
pub mod io;
pub mod kernels;
pub mod kernels_f32;
pub mod norms;
pub mod ops;
pub mod pool;
pub mod precision;
pub mod rng;
pub mod scratch;
pub mod sparse;
pub mod vector;
pub mod wire;

pub mod decomp;

pub use bytes::ByteSized;
pub use kernels_f32::MatF32;
pub use precision::{bf16_round, Precision};
pub use wire::{Sizing, Wire, WireCodec, WireError, WireReader};
pub use dense::Mat;
pub use error::LinalgError;
pub use pool::WorkerPool;
pub use rng::Prng;
pub use sparse::{SparseMat, SparseRow};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
