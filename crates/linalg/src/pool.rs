//! Persistent worker pool — the one parallel substrate of the reproduction.
//!
//! Every layer that fans work out — the blocked kernels in
//! [`crate::kernels`], `dcluster`'s simulated stages (and through those the
//! `sparkle` RDD stages and `mapreduce` map/reduce waves), and driver-side
//! products — submits to the same pool instead of spawning threads per
//! call. Threads are spawned once ([`WorkerPool::new`], or lazily for the
//! process-wide [`WorkerPool::global`]) and pull tasks from a shared
//! work queue.
//!
//! # Determinism contract
//!
//! [`WorkerPool::run`] returns results **in submission order**, whatever
//! order tasks finish in, so a batch of deterministic tasks yields an
//! identical result vector on pools of 1, 2, or 64 workers. Callers that
//! reduce across tasks (e.g. the chunked `matmul_tn` kernel) are required
//! to pick split points from the *problem size only* — never from the
//! worker count — and to merge partials in index order; that is what makes
//! kernel output bit-for-bit independent of parallelism.
//!
//! # Nested submission
//!
//! A task running on a pool worker may itself call [`WorkerPool::run`]
//! (a simulated stage whose tasks call a parallel kernel, say). This can
//! never deadlock: the submitting thread does not sleep while the queue is
//! non-empty — it pulls and executes queued tasks itself until its batch
//! completes, so at least one thread is always making progress on the
//! oldest incomplete batch.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// A queued unit of work. Closures are lifetime-erased by [`WorkerPool::run`],
/// which is sound because `run` never returns before every task it enqueued
/// has finished executing.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when tasks are enqueued or shutdown begins.
    available: Condvar,
    shutdown: AtomicBool,
}

/// Completion state for one `run` batch.
struct BatchState<T> {
    /// Tasks not yet finished.
    remaining: usize,
    /// Result slots, in submission order.
    results: Vec<Option<T>>,
    /// First panic payload observed, re-raised on the submitting thread.
    panic: Option<Box<dyn Any + Send>>,
}

struct Batch<T> {
    state: Mutex<BatchState<T>>,
    done: Condvar,
}

/// Ignore lock poisoning: panics inside tasks are caught before any batch
/// lock is taken, and a poisoned queue would only ever hold plain data.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fixed-size pool of worker threads draining a shared FIFO work queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spca-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers, handles }
    }

    /// The process-wide pool, spawned on first use and sized to the host's
    /// available parallelism. Kernels and simulated clusters default to
    /// this pool, so driver-side products and distributed stages share one
    /// set of threads.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            Arc::new(WorkerPool::new(n))
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task to completion and returns their results **in
    /// submission order**. The calling thread participates in execution, so
    /// a 1-worker pool (or a pool whose workers are all busy) still makes
    /// progress. If any task panics, the first panic is re-raised here
    /// after the whole batch has finished.
    pub fn run<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // One task: nothing to overlap, skip the queue round-trip.
            let mut tasks = tasks;
            return vec![tasks.pop().expect("len checked")()];
        }

        let batch: Arc<Batch<T>> = Arc::new(Batch {
            state: Mutex::new(BatchState {
                remaining: n,
                results: (0..n).map(|_| None).collect(),
                panic: None,
            }),
            done: Condvar::new(),
        });

        let queue_depth;
        {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            queue_depth = queue.len();
            for (i, task) in tasks.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                let erased: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(task));
                    let mut st = lock_unpoisoned(&batch.state);
                    match out {
                        Ok(v) => st.results[i] = Some(v),
                        Err(p) => {
                            if st.panic.is_none() {
                                st.panic = Some(p);
                            }
                        }
                    }
                    st.remaining -= 1;
                    if st.remaining == 0 {
                        batch.done.notify_all();
                    }
                });
                // SAFETY: the closure (and everything it borrows from 'env)
                // is only invoked before this function returns — we block
                // below until `remaining == 0`, and a task is only counted
                // done after it has fully run. Nothing retains the closure
                // afterwards: the queue hands ownership to the executing
                // thread, which drops it on completion.
                let erased: Task = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(erased)
                };
                queue.push_back(erased);
            }
            self.shared.available.notify_all();
        }
        if obs::enabled() {
            if let Some(c) = obs::collector() {
                let reg = c.registry();
                reg.counter("pool.batches").inc();
                reg.counter("pool.tasks").add(n as u64);
                // Depth *before* this batch enqueued: how backed up the
                // queue already was when we arrived.
                reg.histogram("pool.queue_depth").record(queue_depth as f64);
                reg.gauge("pool.queue_depth_peak").set_max((queue_depth + n) as f64);
            }
        }

        // Work-conserving wait: drain the queue ourselves (our own batch's
        // tasks or anyone else's — progress either way, and the nested-run
        // no-deadlock guarantee), then sleep until the batch completes.
        loop {
            let task = lock_unpoisoned(&self.shared.queue).pop_front();
            match task {
                Some(t) => t(),
                None => break,
            }
        }
        let mut st = lock_unpoisoned(&batch.state);
        while st.remaining > 0 {
            st = batch
                .done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        if let Some(p) = st.panic.take() {
            drop(st);
            resume_unwind(p);
        }
        st.results.iter_mut().map(|slot| slot.take().expect("task completed")).collect()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(t) = queue.pop_front() {
                    break Some(t);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(t) => t(),
            None => return,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..100).map(|i| move || i * i).collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<i32>>());
    }

    #[test]
    fn identical_results_for_any_worker_count() {
        let compute = |pool: &WorkerPool| {
            let tasks: Vec<_> = (0..64u64)
                .map(|i| move || (0..1000).fold(i, |acc, k| acc.wrapping_mul(31).wrapping_add(k)))
                .collect();
            pool.run(tasks)
        };
        let one = compute(&WorkerPool::new(1));
        let two = compute(&WorkerPool::new(2));
        let eight = compute(&WorkerPool::new(8));
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn borrowed_environment_is_usable() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(100).collect();
        let sums = pool.run(chunks.iter().map(|c| move || c.iter().sum::<u64>()).collect());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..8).map(|j| move || i * 10 + j).collect();
                    pool.run(inner).into_iter().sum::<i32>()
                }
            })
            .collect();
        let sums = pool.run(outer);
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[0], (0..8).sum::<i32>());
    }

    #[test]
    fn empty_batch_is_free() {
        let pool = WorkerPool::new(2);
        let out: Vec<i32> = pool.run(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panic_in_task_propagates_after_batch_completes() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom")),
            Box::new(|| 3),
        ];
        let r = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(r.is_err(), "panic must propagate to the submitter");
        // The pool must remain usable afterwards.
        let ok = pool.run((0..4).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.workers() >= 1);
    }
}
