//! Small-matrix helpers for randomized subspace iteration.
//!
//! Randomized PCA (Halko et al., arXiv:1007.5510) needs three small dense
//! operations on the driver between distributed passes: re-orthonormalize
//! the D×K sketch basis, recover the top-d triplets of the small covariance
//! sketch, and measure how far two recovered subspaces are apart. These are
//! thin, *validated* wrappers over [`qr_thin`] / [`svd_jacobi`] — all the
//! shape edge cases (single column, rank-deficient, wide) are pinned by the
//! property suite in `crates/linalg/tests/decomp_helpers.rs`.

use crate::dense::Mat;
use crate::error::LinalgError;
use crate::Result;

use super::qr::qr_thin;
use super::svd::{svd_jacobi, Svd};

/// Returns an orthonormal basis for the column space of `a`: an
/// m × min(m, n) matrix with columns orthonormal to machine precision.
///
/// Householder QR guarantees orthonormal `Q` even when `a` is rank
/// deficient (zero columns, repeated columns) — the basis then spans more
/// than the column space, which is exactly what subspace iteration wants:
/// the pass structure stays full width and dead directions get repopulated
/// by the next multiply. For wide inputs (n > m) the basis is m × m.
pub fn orthonormal_columns(a: &Mat) -> Mat {
    qr_thin(a).q
}

/// Top-`k` singular triplets of a small dense matrix, descending.
///
/// Validates the rank request up front (`k` must not exceed `min(m, n)`)
/// instead of silently truncating like [`Svd::truncate`], so callers that
/// derive `k` from user configuration get a typed error rather than a
/// shape surprise downstream.
pub fn top_singular_triplets(a: &Mat, k: usize) -> Result<Svd> {
    let available = a.rows().min(a.cols());
    if k > available {
        return Err(LinalgError::RankTooLarge { requested: k, available });
    }
    Ok(svd_jacobi(a)?.truncate(k))
}

/// Smallest principal-angle cosine between the column spaces of `a` and
/// `b`: `σ_min(QₐᵀQᵦ)` after orthonormalizing both. 1.0 means the spaces
/// coincide, 0.0 means some direction of one is orthogonal to all of the
/// other. The conformance suite uses this to compare a randomized subspace
/// against exact PCA without being sensitive to column order or sign.
pub fn subspace_overlap(a: &Mat, b: &Mat) -> Result<f64> {
    let qa = orthonormal_columns(a);
    let qb = orthonormal_columns(b);
    let s = svd_jacobi(&qa.matmul_tn(&qb))?.s;
    // Clamp: Jacobi can overshoot 1.0 by a few ulps on coinciding spaces.
    Ok(s.last().copied().unwrap_or(1.0).min(1.0))
}
