//! TSQR: communication-avoiding QR for tall-skinny, row-partitioned
//! matrices.
//!
//! Mahout's SSVD orthonormalizes the N×k projected matrix `Y·Ω` with a
//! distributed QR; the standard way on a row-partitioned matrix is TSQR:
//! each partition takes a local QR, the small R factors are stacked and
//! QR'd once more, and the local Q blocks are corrected by the second-stage
//! Q blocks. Only the k×k R factors ever travel — which is precisely why
//! SSVD's *communication* cost in Table 1 is driven by the N×k Q matrix it
//! must still materialize, not by the QR itself.

use crate::dense::Mat;
use crate::decomp::qr::{qr_thin, Qr};

/// Result of a TSQR over row blocks.
#[derive(Debug, Clone)]
pub struct TsqrResult {
    /// Orthonormal Q, one block per input block (same row counts).
    pub q_blocks: Vec<Mat>,
    /// Global upper-triangular R (k × k), k = common column count.
    pub r: Mat,
}

/// Runs TSQR over row blocks of a conceptually stacked matrix.
///
/// All blocks must share a column count `k`, and each block should have at
/// least `k` rows for the local QR to be thin (fewer rows still works; the
/// local factor is just wide).
pub fn tsqr(blocks: &[Mat]) -> TsqrResult {
    assert!(!blocks.is_empty(), "tsqr: need at least one block");
    let k = blocks[0].cols();
    for b in blocks {
        assert_eq!(b.cols(), k, "tsqr: blocks must share a column count");
    }

    // Stage 1: local QRs.
    let locals: Vec<Qr> = blocks.iter().map(qr_thin).collect();

    // Stage 2: QR of the stacked R factors.
    let stacked = Mat::vcat(&locals.iter().map(|qr| qr.r.clone()).collect::<Vec<_>>());
    let Qr { q: q2, r } = qr_thin(&stacked);

    // Stage 3: correct each local Q by its slice of the stage-2 Q.
    let mut q_blocks = Vec::with_capacity(blocks.len());
    let mut offset = 0;
    for qr in &locals {
        let rows_here = qr.r.rows();
        let q2_block = q2.row_block(offset, offset + rows_here);
        offset += rows_here;
        q_blocks.push(qr.q.matmul(&q2_block));
    }

    TsqrResult { q_blocks, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn tsqr_matches_monolithic_qr_reconstruction() {
        let mut rng = Prng::seed_from_u64(21);
        let a = rng.normal_mat(40, 6);
        let blocks = vec![a.row_block(0, 13), a.row_block(13, 26), a.row_block(26, 40)];
        let TsqrResult { q_blocks, r } = tsqr(&blocks);

        let q = Mat::vcat(&q_blocks);
        assert_eq!((q.rows(), q.cols()), (40, 6));
        // Reconstruction.
        assert!(q.matmul(&r).approx_eq(&a, 1e-9));
        // Global orthonormality across blocks.
        let qtq = q.matmul_tn(&q);
        assert!(qtq.approx_eq(&Mat::identity(6), 1e-9));
    }

    #[test]
    fn tsqr_single_block_degenerates_to_qr() {
        let mut rng = Prng::seed_from_u64(22);
        let a = rng.normal_mat(10, 3);
        let TsqrResult { q_blocks, r } = tsqr(std::slice::from_ref(&a));
        assert!(q_blocks[0].matmul(&r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn tsqr_with_short_blocks() {
        // Blocks with fewer rows than columns still stack correctly.
        let mut rng = Prng::seed_from_u64(23);
        let a = rng.normal_mat(10, 4);
        let blocks: Vec<Mat> = (0..5).map(|i| a.row_block(2 * i, 2 * i + 2)).collect();
        let TsqrResult { q_blocks, r } = tsqr(&blocks);
        let q = Mat::vcat(&q_blocks);
        assert!(q.matmul(&r).approx_eq(&a, 1e-9));
        let qtq = q.matmul_tn(&q);
        assert!(qtq.approx_eq(&Mat::identity(4), 1e-9));
    }
}
