//! Symmetric eigendecomposition.
//!
//! Two routes:
//!
//! * [`sym_eigen`] — Householder tridiagonalization followed by the implicit
//!   QL algorithm with Wilkinson shifts. O(n³) with a small constant; this
//!   is what the MLlib-PCA baseline uses on its D×D covariance matrix, so it
//!   must stay usable into the low thousands of dimensions.
//! * [`jacobi_eigen`] — cyclic Jacobi rotations. Slower but very robust;
//!   used for small matrices and as a cross-check in tests.
//!
//! Both return eigenvalues in descending order with matching eigenvector
//! columns.

use crate::dense::Mat;
use crate::error::LinalgError;
use crate::Result;

/// Eigendecomposition of a symmetric matrix: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, ordered to match `values`.
    pub vectors: Mat,
}

/// `hypot`-style stable `sqrt(a² + b²)`.
#[inline]
fn pythag(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

/// Householder reduction of a symmetric matrix to tridiagonal form
/// (classic `tred2`). On return `a` holds the accumulated orthogonal
/// transform `Q`, `d` the diagonal, `e` the sub-diagonal (`e[0]` unused).
fn tred2(a: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = a.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| a[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    a[(i, k)] /= scale;
                    h += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    a[(j, i)] = a[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += a[(j, k)] * a[(i, k)];
                    }
                    for k in j + 1..=l {
                        g_acc += a[(k, j)] * a[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * a[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = a[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * a[(i, k)];
                        a[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += a[(i, k)] * a[(k, j)];
                }
                for k in 0..i {
                    let delta = g * a[(k, i)];
                    a[(k, j)] -= delta;
                }
            }
        }
        d[i] = a[(i, i)];
        a[(i, i)] = 1.0;
        for j in 0..i {
            a[(j, i)] = 0.0;
            a[(i, j)] = 0.0;
        }
    }
}

/// Implicit QL with Wilkinson shifts on a tridiagonal matrix (classic
/// `tqli`). `d` holds the diagonal (eigenvalues on return), `e` the
/// sub-diagonal in `e[1..]`, `z` the transform to accumulate into
/// (identity for tridiagonal input, the `tred2` output otherwise).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(LinalgError::NonConvergence { routine: "tqli", iterations: iter });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..z.rows() {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Sorts eigenpairs descending by eigenvalue.
fn sort_desc(values: Vec<f64>, vectors: Mat) -> SymEigen {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("finite eigenvalues"));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut sorted_vectors = Mat::zeros(vectors.rows(), n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..vectors.rows() {
            sorted_vectors[(r, new_col)] = vectors[(r, old_col)];
        }
    }
    SymEigen { values: sorted_values, vectors: sorted_vectors }
}

/// Full eigendecomposition of a symmetric matrix.
///
/// The input is read as symmetric (only consistency in exact arithmetic is
/// assumed; the strictly lower triangle is what the reduction consumes).
pub fn sym_eigen(a: &Mat) -> Result<SymEigen> {
    assert_eq!(a.rows(), a.cols(), "sym_eigen: matrix must be square");
    let n = a.rows();
    if n == 0 {
        return Ok(SymEigen { values: vec![], vectors: Mat::zeros(0, 0) });
    }
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tqli(&mut d, &mut e, &mut z)?;
    Ok(sort_desc(d, z))
}

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// `diag` and sub-diagonal `sub` (`sub.len() == diag.len() - 1`).
///
/// Used by the bidiagonal-SVD path: `BᵀB` of a bidiagonal `B` is
/// tridiagonal.
pub fn tridiag_eigen(diag: &[f64], sub: &[f64]) -> Result<SymEigen> {
    let n = diag.len();
    assert!(n == 0 && sub.is_empty() || sub.len() + 1 == n, "tridiag_eigen: sub-diagonal length must be n-1");
    if n == 0 {
        return Ok(SymEigen { values: vec![], vectors: Mat::zeros(0, 0) });
    }
    let mut d = diag.to_vec();
    // tqli expects the sub-diagonal in e[1..].
    let mut e = vec![0.0; n];
    e[1..].copy_from_slice(sub);
    let mut z = Mat::identity(n);
    tqli(&mut d, &mut e, &mut z)?;
    Ok(sort_desc(d, z))
}

/// Cyclic Jacobi eigendecomposition. Robust reference implementation for
/// small symmetric matrices; O(n³) per sweep with larger constants than
/// [`sym_eigen`].
pub fn jacobi_eigen(a: &Mat) -> Result<SymEigen> {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen: matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);

    for _sweep in 0..100 {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + m.frobenius_sq().sqrt()) {
            let values = (0..n).map(|i| m[(i, i)]).collect();
            return Ok(sort_desc(values, v));
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ) on both sides of m and to v.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NonConvergence { routine: "jacobi_eigen", iterations: 100 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn random_symmetric(n: usize, seed: u64) -> Mat {
        let mut rng = Prng::seed_from_u64(seed);
        let g = rng.normal_mat(n, n);
        let mut s = g.clone();
        s.add_assign(&g.transpose());
        s.scale(0.5);
        s
    }

    fn check_decomposition(a: &Mat, eig: &SymEigen, tol: f64) {
        let n = a.rows();
        // Descending order.
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "eigenvalues not descending: {:?}", eig.values);
        }
        // A v_i = λ_i v_i.
        for i in 0..n {
            let v = eig.vectors.col(i);
            let av = a.matvec(&v);
            for (x, y) in av.iter().zip(v.iter().map(|&vi| eig.values[i] * vi)) {
                assert!((x - y).abs() < tol, "eigenpair {i} residual too large");
            }
        }
        // Orthonormal eigenvectors.
        let vtv = eig.vectors.matmul_tn(&eig.vectors);
        assert!(vtv.approx_eq(&Mat::identity(n), tol));
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn random_symmetric_decomposition() {
        for seed in 0..4 {
            let a = random_symmetric(12, seed);
            let eig = sym_eigen(&a).unwrap();
            check_decomposition(&a, &eig, 1e-8);
        }
    }

    #[test]
    fn larger_matrix_stays_accurate() {
        let a = random_symmetric(60, 99);
        let eig = sym_eigen(&a).unwrap();
        check_decomposition(&a, &eig, 1e-7);
    }

    #[test]
    fn jacobi_agrees_with_ql() {
        let a = random_symmetric(8, 5);
        let e1 = sym_eigen(&a).unwrap();
        let e2 = jacobi_eigen(&a).unwrap();
        for (x, y) in e1.values.iter().zip(&e2.values) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
        check_decomposition(&a, &e2, 1e-8);
    }

    #[test]
    fn tridiag_eigen_matches_dense_path() {
        let diag = [2.0, 3.0, 1.0, 4.0];
        let sub = [0.5, -1.0, 0.25];
        let mut dense = Mat::zeros(4, 4);
        for i in 0..4 {
            dense[(i, i)] = diag[i];
        }
        for i in 0..3 {
            dense[(i + 1, i)] = sub[i];
            dense[(i, i + 1)] = sub[i];
        }
        let e1 = tridiag_eigen(&diag, &sub).unwrap();
        let e2 = sym_eigen(&dense).unwrap();
        for (x, y) in e1.values.iter().zip(&e2.values) {
            assert!((x - y).abs() < 1e-10);
        }
        check_decomposition(&dense, &e1, 1e-9);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_eigenvalues() {
        // Rank-1: x ⊗ x with ‖x‖² = 14 → eigenvalues {14, 0, 0}.
        let mut a = Mat::zeros(3, 3);
        a.add_outer(1.0, &[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.values[0] - 14.0).abs() < 1e-10);
        assert!(eig.values[1].abs() < 1e-10);
        assert!(eig.values[2].abs() < 1e-10);
    }

    #[test]
    fn empty_matrix() {
        let eig = sym_eigen(&Mat::zeros(0, 0)).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn one_by_one() {
        let a = Mat::from_rows(&[&[7.0]]);
        let eig = sym_eigen(&a).unwrap();
        assert_eq!(eig.values, vec![7.0]);
    }
}
