//! Singular value decomposition by one-sided Jacobi rotations.
//!
//! This is the small/medium dense SVD used to finish SSVD (the k×k or k×D
//! stage after projection) and the bidiagonal path. One-sided Jacobi
//! orthogonalizes the *columns* of the working matrix; it is simple, very
//! accurate for small singular values, and needs no bidiagonal bookkeeping.

use crate::dense::Mat;
use crate::error::LinalgError;
use crate::vector;
use crate::Result;

/// Thin SVD `A = U diag(s) Vᵀ` with `k = min(m, n)` columns in `U`,
/// `k` singular values (descending, non-negative) and `Vᵀ` of shape k×n.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (m × k).
    pub u: Mat,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors, transposed (k × n).
    pub vt: Mat,
}

impl Svd {
    /// Keeps only the top `k` singular triplets.
    pub fn truncate(mut self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        self.s.truncate(k);
        self.u = keep_cols(&self.u, k);
        self.vt = self.vt.row_block(0, k);
        self
    }

    /// Reconstructs `U diag(s) Vᵀ` (for tests and small matrices).
    pub fn reconstruct(&self) -> Mat {
        let mut us = self.u.clone();
        for r in 0..us.rows() {
            for (c, &sv) in self.s.iter().enumerate() {
                us[(r, c)] *= sv;
            }
        }
        us.matmul(&self.vt)
    }
}

fn keep_cols(m: &Mat, k: usize) -> Mat {
    let mut out = Mat::zeros(m.rows(), k);
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&m.row(r)[..k]);
    }
    out
}

/// Computes the thin SVD of a dense matrix by one-sided Jacobi.
pub fn svd_jacobi(a: &Mat) -> Result<Svd> {
    if a.rows() >= a.cols() {
        svd_tall(a)
    } else {
        // Work on the transpose and swap factors: A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
        let t = svd_tall(&a.transpose())?;
        Ok(Svd { u: t.vt.transpose(), s: t.s, vt: t.u.transpose() })
    }
}

fn svd_tall(a: &Mat) -> Result<Svd> {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(m >= n);
    if n == 0 {
        return Ok(Svd { u: Mat::zeros(m, 0), s: vec![], vt: Mat::zeros(0, 0) });
    }

    // Column-major working copy: columns get orthogonalized in place.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = Mat::identity(n);
    let scale = a.frobenius_sq().sqrt().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale * scale;

    let max_sweeps = 60;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                let alpha = vector::norm2_sq(&cols[p]);
                let beta = vector::norm2_sq(&cols[q]);
                let gamma = vector::dot(&cols[p], &cols[q]);
                if gamma.abs() <= tol.max(1e-30) || gamma.abs() <= 1e-15 * (alpha * beta).sqrt() {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate the column pair in the working matrix…
                let (cp, cq) = split_pair(&mut cols, p, q);
                for (x, y) in cp.iter_mut().zip(cq.iter_mut()) {
                    let xp = *x;
                    *x = c * xp - s * *y;
                    *y = s * xp + c * *y;
                }
                // …and accumulate into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NonConvergence { routine: "svd_jacobi", iterations: max_sweeps });
    }

    // Singular values = column norms; normalize columns into U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = cols.iter().map(|c| vector::norm2(c)).collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("finite norms"));

    let mut u = Mat::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = Mat::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let norm = norms[old_j];
        s.push(norm);
        if norm > 0.0 {
            for r in 0..m {
                u[(r, new_j)] = cols[old_j][r] / norm;
            }
        }
        for r in 0..n {
            vt[(new_j, r)] = v[(r, old_j)];
        }
    }
    Ok(Svd { u, s, vt })
}

/// Mutable references to two distinct columns.
fn split_pair(cols: &mut [Vec<f64>], p: usize, q: usize) -> (&mut Vec<f64>, &mut Vec<f64>) {
    debug_assert!(p < q);
    let (lo, hi) = cols.split_at_mut(q);
    (&mut lo[p], &mut hi[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn check_svd(a: &Mat, svd: &Svd, tol: f64) {
        let k = a.rows().min(a.cols());
        assert_eq!(svd.s.len(), k);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not descending");
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
        assert!(svd.reconstruct().approx_eq(a, tol), "SVD does not reconstruct input");
        // Orthonormality (columns of U; rows of Vt) — only for nonzero
        // singular values, rank-deficient trailing vectors may be zero.
        let rank = svd.s.iter().filter(|&&x| x > tol).count();
        let utu = svd.u.matmul_tn(&svd.u);
        let vvt = svd.vt.matmul_nt(&svd.vt);
        for i in 0..rank {
            assert!((utu[(i, i)] - 1.0).abs() < tol, "U column {i} not unit");
            assert!((vvt[(i, i)] - 1.0).abs() < tol, "V column {i} not unit");
            for j in 0..rank {
                if i != j {
                    assert!(utu[(i, j)].abs() < tol);
                    assert!(vvt[(i, j)].abs() < tol);
                }
            }
        }
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 5.0], &[0.0, 0.0]]);
        let svd = svd_jacobi(&a).unwrap();
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        check_svd(&a, &svd, 1e-10);
    }

    #[test]
    fn svd_of_random_tall() {
        let mut rng = Prng::seed_from_u64(31);
        let a = rng.normal_mat(15, 6);
        let svd = svd_jacobi(&a).unwrap();
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn svd_of_random_wide() {
        let mut rng = Prng::seed_from_u64(32);
        let a = rng.normal_mat(5, 12);
        let svd = svd_jacobi(&a).unwrap();
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn svd_of_square() {
        let mut rng = Prng::seed_from_u64(33);
        let a = rng.normal_mat(8, 8);
        let svd = svd_jacobi(&a).unwrap();
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn svd_of_rank_one() {
        let mut a = Mat::zeros(4, 3);
        a.add_outer(1.0, &[1.0, 2.0, 0.0, -1.0], &[1.0, 1.0, 1.0]);
        let svd = svd_jacobi(&a).unwrap();
        // ‖x‖·‖y‖ = sqrt(6)·sqrt(3).
        assert!((svd.s[0] - (18.0_f64).sqrt()).abs() < 1e-10);
        assert!(svd.s[1].abs() < 1e-10);
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let mut rng = Prng::seed_from_u64(34);
        let a = rng.normal_mat(10, 4);
        let svd = svd_jacobi(&a).unwrap();
        let gram = a.matmul_tn(&a);
        let eig = super::super::eig::sym_eigen(&gram).unwrap();
        for (sv, ev) in svd.s.iter().zip(&eig.values) {
            assert!((sv * sv - ev).abs() < 1e-8, "s²={} vs λ={}", sv * sv, ev);
        }
    }

    #[test]
    fn truncate_keeps_top_triplets() {
        let mut rng = Prng::seed_from_u64(35);
        let a = rng.normal_mat(9, 5);
        let svd = svd_jacobi(&a).unwrap().truncate(2);
        assert_eq!(svd.s.len(), 2);
        assert_eq!(svd.u.cols(), 2);
        assert_eq!(svd.vt.rows(), 2);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(3, 2);
        let svd = svd_jacobi(&a).unwrap();
        assert!(svd.s.iter().all(|&x| x == 0.0));
        assert!(svd.reconstruct().approx_eq(&a, 1e-14));
    }
}
