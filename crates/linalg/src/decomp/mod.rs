//! Matrix decompositions.
//!
//! Everything Section 2 of the paper analyzes is implemented here:
//!
//! | Paper method | Building blocks in this module |
//! |---|---|
//! | Eigen-decomposition of the covariance matrix (MLlib-PCA) | [`eig::sym_eigen`] |
//! | SVD-Bidiag (RScaLAPACK) | [`qr`], [`bidiag`] |
//! | SVD-Lanczos (Mahout/GraphLab sparse SVD) | [`lanczos`] |
//! | Stochastic SVD (Mahout-PCA) | [`qr`], [`mod@tsqr`], [`svd`], [`eig`] |
//! | Probabilistic PCA / sPCA | [`cholesky`], [`lu`] (d×d solves only) |

pub mod bidiag;
pub mod bidiag_svd;
pub mod cholesky;
pub mod eig;
pub mod helpers;
pub mod lanczos;
pub mod lu;
pub mod qr;
pub mod randomized;
pub mod svd;
pub mod tsqr;

pub use bidiag::{bidiagonalize, svd_via_bidiag, Bidiagonal};
pub use bidiag_svd::golub_reinsch_svd;
pub use cholesky::Cholesky;
pub use eig::{jacobi_eigen, sym_eigen, tridiag_eigen, SymEigen};
pub use helpers::{orthonormal_columns, subspace_overlap, top_singular_triplets};
pub use lanczos::lanczos_svd;
pub use lu::Lu;
pub use qr::{qr_thin, Qr};
pub use randomized::randomized_svd;
pub use svd::{svd_jacobi, Svd};
pub use tsqr::tsqr;
