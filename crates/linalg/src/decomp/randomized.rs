//! Randomized SVD (Halko, Martinsson & Tropp) — the algorithm inside the
//! paper's "stochastic SVD" method (Section 2.3, reference \[21\]).
//!
//! Two steps, exactly as the paper describes: (i) a randomized
//! approximation of the operator's range — Gaussian projection, optional
//! power iterations for slowly-decaying spectra, QR orthonormalization —
//! and (ii) an exact SVD of the small projected matrix. The distributed
//! Mahout-PCA baseline re-implements this dataflow on the MapReduce
//! engine; this single-machine version is the clean reference for it and
//! a useful library routine in its own right.

use crate::dense::Mat;
use crate::decomp::qr::qr_thin;
use crate::decomp::svd::{svd_jacobi, Svd};
use crate::error::LinalgError;
use crate::ops::LinOp;
use crate::rng::Prng;
use crate::Result;

/// Approximate truncated SVD of an implicit operator.
///
/// * `k` — singular triplets wanted.
/// * `oversample` — extra projection columns (Mahout's default is 15).
/// * `power_iters` — passes of `(A·Aᵀ)` applied to the range sketch; each
///   sharpens accuracy on flat spectra at the cost of two more operator
///   sweeps (the paper's "running the randomization step multiple times").
pub fn randomized_svd(
    op: &dyn LinOp,
    k: usize,
    oversample: usize,
    power_iters: usize,
    rng: &mut Prng,
) -> Result<Svd> {
    let m = op.rows();
    let n = op.cols();
    let max_rank = m.min(n);
    if k > max_rank {
        return Err(LinalgError::RankTooLarge { requested: k, available: max_rank });
    }
    if k == 0 {
        return Ok(Svd { u: Mat::zeros(m, 0), s: vec![], vt: Mat::zeros(0, 0) });
    }
    let width = (k + oversample).min(max_rank);

    // Step (i): range sketch Y = A·Ω, with optional power iterations
    // Y ← A·(Aᵀ·Y); re-orthonormalize between passes for stability.
    let omega = rng.normal_mat(n, width);
    let mut sketch = apply_cols(op, &omega, false); // m × width
    for _ in 0..power_iters {
        let q = qr_thin(&sketch).q;
        let back = apply_cols(op, &q, true); // n × width
        let q2 = qr_thin(&back).q;
        sketch = apply_cols(op, &q2, false);
    }
    let q = qr_thin(&sketch).q; // m × width, orthonormal range basis

    // Step (ii): exact SVD of the small matrix B = Qᵀ·A (width × n).
    let bt = apply_cols(op, &q, true); // n × width = (Qᵀ·A)ᵀ
    let b = bt.transpose();
    let small = svd_jacobi(&b)?;

    // Compose and truncate: A ≈ Q·B = (Q·U_B)·S·Vᵀ.
    let u = q.matmul(&small.u);
    Ok(Svd { u, s: small.s, vt: small.vt }.truncate(k))
}

/// Applies `op` (or its transpose) to each column of `x`.
fn apply_cols(op: &dyn LinOp, x: &Mat, transpose: bool) -> Mat {
    let out_rows = if transpose { op.cols() } else { op.rows() };
    let mut out = Mat::zeros(out_rows, x.cols());
    let mut col_in = vec![0.0; x.rows()];
    let mut col_out = vec![0.0; out_rows];
    for c in 0..x.cols() {
        for (r, slot) in col_in.iter_mut().enumerate() {
            *slot = x[(r, c)];
        }
        if transpose {
            op.apply_t(&col_in, &mut col_out);
        } else {
            op.apply(&col_in, &mut col_out);
        }
        for (r, &v) in col_out.iter().enumerate() {
            out[(r, c)] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CenteredSparse;
    use crate::sparse::SparseMat;

    fn low_rank(m: usize, n: usize, rank: usize, seed: u64) -> Mat {
        let mut rng = Prng::seed_from_u64(seed);
        let mut a = Mat::zeros(m, n);
        for r in 0..rank {
            let x = rng.normal_vec(m);
            let y = rng.normal_vec(n);
            a.add_outer(4.0 / (r + 1) as f64, &x, &y);
        }
        a
    }

    #[test]
    fn matches_exact_svd_on_low_rank() {
        let a = low_rank(60, 40, 4, 1);
        let mut rng = Prng::seed_from_u64(2);
        let approx = randomized_svd(&a, 4, 10, 1, &mut rng).unwrap();
        let exact = svd_jacobi(&a).unwrap();
        for i in 0..4 {
            let rel = (approx.s[i] - exact.s[i]).abs() / exact.s[i];
            assert!(rel < 1e-8, "σ{i}: {} vs {}", approx.s[i], exact.s[i]);
        }
        assert_eq!(approx.u.cols(), 4);
        assert_eq!(approx.vt.rows(), 4);
    }

    #[test]
    fn power_iterations_improve_flat_spectra() {
        // Full-rank noise + a moderate signal: q=0 underestimates the top
        // values, q=2 nails them.
        let mut rng = Prng::seed_from_u64(3);
        let mut a = rng.normal_mat(120, 80);
        let signal = low_rank(120, 80, 3, 4);
        a.add_scaled(2.0, &signal);
        let exact = svd_jacobi(&a).unwrap();

        let err_with = |q: usize| {
            let mut rng = Prng::seed_from_u64(5);
            let approx = randomized_svd(&a, 3, 8, q, &mut rng).unwrap();
            (0..3)
                .map(|i| (approx.s[i] - exact.s[i]).abs() / exact.s[i])
                .fold(0.0_f64, f64::max)
        };
        let e0 = err_with(0);
        let e2 = err_with(2);
        assert!(e2 <= e0, "power iterations must not hurt: q0 {e0} vs q2 {e2}");
        assert!(e2 < 0.02, "q=2 should be accurate, got {e2}");
    }

    #[test]
    fn works_on_centered_sparse_operator() {
        let y = SparseMat::from_triplets(
            30,
            12,
            &(0..30)
                .map(|r| (r, (r % 12) as u32, 1.0 + (r % 3) as f64))
                .collect::<Vec<_>>(),
        );
        let mean = y.col_means();
        let op = CenteredSparse::new(&y, &mean);
        let mut rng = Prng::seed_from_u64(6);
        // Full-width sketch (k + oversample = 12 = D) → exact recovery.
        let approx = randomized_svd(&op, 3, 9, 1, &mut rng).unwrap();

        let mut dense = y.to_dense();
        dense.sub_row_vector(&mean);
        let exact = svd_jacobi(&dense).unwrap();
        for i in 0..3 {
            assert!((approx.s[i] - exact.s[i]).abs() < 1e-6 * exact.s[0]);
        }
    }

    #[test]
    fn rejects_oversized_rank_and_handles_zero() {
        let a = Mat::zeros(4, 3);
        let mut rng = Prng::seed_from_u64(7);
        assert!(matches!(
            randomized_svd(&a, 9, 2, 0, &mut rng),
            Err(LinalgError::RankTooLarge { .. })
        ));
        let empty = randomized_svd(&a, 0, 2, 0, &mut rng).unwrap();
        assert!(empty.s.is_empty());
    }
}
