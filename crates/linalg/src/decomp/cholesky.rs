//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The M-step's `C = YtX / XtX` (Matlab mrdivide, Algorithm 4 line 11)
//! right-divides by the d×d matrix `XtX = Σₙ E[xₙxₙ']`, which is SPD
//! whenever the latent posterior is proper. Cholesky is the cheap, stable
//! way to do that solve; callers fall back to LU if the data is degenerate.

use crate::dense::Mat;
use crate::error::LinalgError;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factorizes an SPD matrix. Returns [`LinalgError::NotPositiveDefinite`]
    /// when a diagonal entry of the factor would be non-positive.
    pub fn new(a: &Mat) -> Result<Cholesky> {
        assert_eq!(a.rows(), a.cols(), "cholesky: matrix must be square");
        let n = a.rows();
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i, value: s });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve: rhs length mismatch");
        // Forward: L y = b
        let mut x = b.to_vec();
        for i in 0..n {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.dim(), "cholesky solve_mat: row count mismatch");
        let mut out = Mat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j));
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        out
    }
}

/// Matlab-style right division `B / A = B · A⁻¹` for symmetric `A`.
///
/// Solved without forming `A⁻¹`: `X A = B  ⇔  A Xᵀ = Bᵀ` (A symmetric).
/// Falls back to LU when `A` is not numerically SPD.
pub fn solve_spd_right(a: &Mat, b: &Mat) -> Result<Mat> {
    assert_eq!(a.rows(), a.cols(), "solve_spd_right: A must be square");
    assert_eq!(b.cols(), a.rows(), "solve_spd_right: B/A dimension mismatch");
    let bt = b.transpose();
    let xt = match Cholesky::new(a) {
        Ok(ch) => ch.solve_mat(&bt),
        Err(_) => super::lu::Lu::new(a)?.solve_mat(&bt),
    };
    Ok(xt.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn random_spd(n: usize, seed: u64) -> Mat {
        let mut rng = Prng::seed_from_u64(seed);
        let g = rng.normal_mat(n + 2, n);
        let mut a = g.matmul_tn(&g);
        a.add_diag(0.5);
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = random_spd(6, 1);
        let ch = Cholesky::new(&a).unwrap();
        let rebuilt = ch.l().matmul(&ch.l().transpose());
        assert!(rebuilt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_lu() {
        let a = random_spd(5, 2);
        let b = vec![1.0, -1.0, 2.0, 0.5, 3.0];
        let x_ch = Cholesky::new(&a).unwrap().solve(&b);
        let x_lu = super::super::lu::Lu::new(&a).unwrap().solve(&b);
        for (p, q) in x_ch.iter().zip(&x_lu) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match Cholesky::new(&a) {
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn right_division_matches_explicit_inverse() {
        let a = random_spd(4, 3);
        let mut rng = Prng::seed_from_u64(4);
        let b = rng.normal_mat(7, 4);
        let x = solve_spd_right(&a, &b).unwrap();
        let expected = b.matmul(&super::super::lu::inverse(&a).unwrap());
        assert!(x.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn right_division_falls_back_to_lu_for_indefinite() {
        // Symmetric but indefinite: Cholesky fails, LU must take over.
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve_spd_right(&a, &b).unwrap();
        assert!(x.matmul(&a).approx_eq(&b, 1e-10));
    }
}
