//! Golub–Kahan–Lanczos bidiagonalization for sparse / implicit SVD.
//!
//! This is the paper's *SVD-Lanczos* method (Section 2.2): the matrix is
//! only touched through matrix–vector products, so it runs in O(steps ·
//! nnz) on a sparse operator. The paper's point — which the baselines crate
//! demonstrates — is that PCA needs the *mean-centered* matrix, and naive
//! centering densifies the operator; the [`crate::ops::CenteredSparse`]
//! operator shows the mean-propagated alternative.
//!
//! Full reorthogonalization (two rounds of classical Gram–Schmidt per step)
//! keeps the Krylov bases numerically orthogonal; at the subspace sizes PCA
//! needs (d + small oversampling) its cost is negligible next to the
//! products.

use crate::dense::Mat;
use crate::decomp::svd::{svd_jacobi, Svd};
use crate::error::LinalgError;
use crate::ops::LinOp;
use crate::rng::Prng;
use crate::vector;
use crate::Result;

/// Twice-iterated classical Gram–Schmidt of `x` against the rows of `basis`.
fn reorthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for b in basis {
            let proj = vector::dot(x, b);
            if proj != 0.0 {
                vector::axpy(-proj, b, x);
            }
        }
    }
}

/// Approximate truncated SVD of an implicit operator by Lanczos
/// bidiagonalization.
///
/// * `k` — number of singular triplets wanted.
/// * `extra` — additional Lanczos steps beyond `k` (oversampling); 10–20
///   gives good accuracy on spectra with reasonable decay.
///
/// Returns the top-`k` triplets. Errors with [`LinalgError::RankTooLarge`]
/// if `k` exceeds `min(rows, cols)`.
pub fn lanczos_svd(op: &dyn LinOp, k: usize, extra: usize, rng: &mut Prng) -> Result<Svd> {
    let m = op.rows();
    let n = op.cols();
    let max_rank = m.min(n);
    if k > max_rank {
        return Err(LinalgError::RankTooLarge { requested: k, available: max_rank });
    }
    if k == 0 {
        return Ok(Svd { u: Mat::zeros(m, 0), s: vec![], vt: Mat::zeros(0, 0) });
    }
    let steps = (k + extra).min(max_rank);

    let mut us: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(steps + 1);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);

    let mut v = rng.normal_vec(n);
    vector::normalize(&mut v);
    vs.push(v);

    let mut u_work = vec![0.0; m];
    let mut v_work = vec![0.0; n];
    // Breakdown threshold relative to the largest coefficient seen so far:
    // an absolute cutoff misfires on exactly low-rank inputs, where the
    // residual at the rank boundary sits at roundoff *times the operator
    // scale*, not at raw machine epsilon.
    let mut scale = 0.0_f64;

    for j in 0..steps {
        // u_j = A v_j − β_{j-1} u_{j-1}
        op.apply(&vs[j], &mut u_work);
        if j > 0 {
            let beta_prev = betas[j - 1];
            vector::axpy(-beta_prev, &us[j - 1], &mut u_work);
        }
        reorthogonalize(&mut u_work, &us);
        let alpha = vector::norm2(&u_work);
        scale = scale.max(alpha);
        if alpha <= 1e-10 * scale.max(f64::MIN_POSITIVE) {
            break; // invariant subspace found
        }
        vector::scale(1.0 / alpha, &mut u_work);
        us.push(u_work.clone());
        alphas.push(alpha);

        // v_{j+1} = Aᵀ u_j − α_j v_j
        op.apply_t(&us[j], &mut v_work);
        vector::axpy(-alpha, &vs[j], &mut v_work);
        reorthogonalize(&mut v_work, &vs);
        let beta = vector::norm2(&v_work);
        scale = scale.max(beta);
        if beta <= 1e-10 * scale {
            break;
        }
        vector::scale(1.0 / beta, &mut v_work);
        vs.push(v_work.clone());
        betas.push(beta);
    }

    let done = alphas.len();
    if done == 0 {
        // The operator annihilated the start vector; extremely unlikely for
        // random starts unless A = 0.
        return Ok(Svd { u: Mat::zeros(m, k), s: vec![0.0; k], vt: Mat::zeros(k, n) });
    }

    // Small bidiagonal core B = Uᵀ A V. When the u-recursion broke down (or
    // the step budget ran out) one more v than u exists and the trailing β
    // couples to it, so B is rectangular done × vs.len(); dropping that
    // coupling loses exactly the information that makes low-rank inputs
    // resolve to full accuracy.
    let v_count = vs.len();
    let mut b = Mat::zeros(done, v_count);
    for i in 0..done {
        b[(i, i)] = alphas[i];
    }
    for (i, &beta) in betas.iter().enumerate() {
        if i + 1 < v_count {
            b[(i, i + 1)] = beta;
        }
    }
    let core = svd_jacobi(&b)?;

    // Compose: U = U_lanczos · U_B, V = V_lanczos · V_B.
    let u_basis = Mat::from_rows(&us.iter().map(Vec::as_slice).collect::<Vec<_>>()).transpose();
    let v_basis =
        Mat::from_rows(&vs.iter().map(Vec::as_slice).collect::<Vec<_>>()).transpose();
    let u_full = u_basis.matmul(&core.u);
    let v_full = v_basis.matmul(&core.vt.transpose());

    let keep = k.min(done);
    let mut u = Mat::zeros(m, keep);
    let mut vt = Mat::zeros(keep, n);
    for c in 0..keep {
        for r in 0..m {
            u[(r, c)] = u_full[(r, c)];
        }
        for r in 0..n {
            vt[(c, r)] = v_full[(r, c)];
        }
    }
    let mut s: Vec<f64> = core.s[..keep].to_vec();
    // Pad (should not happen for k ≤ numerical rank).
    while s.len() < k {
        s.push(0.0);
    }
    if u.cols() < k {
        let mut u_pad = Mat::zeros(m, k);
        let mut vt_pad = Mat::zeros(k, n);
        for c in 0..u.cols() {
            for r in 0..m {
                u_pad[(r, c)] = u[(r, c)];
            }
            for r in 0..n {
                vt_pad[(c, r)] = vt[(c, r)];
            }
        }
        u = u_pad;
        vt = vt_pad;
    }
    Ok(Svd { u, s, vt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CenteredSparse;
    use crate::sparse::SparseMat;

    fn low_rank_matrix(m: usize, n: usize, rank: usize, seed: u64) -> Mat {
        let mut rng = Prng::seed_from_u64(seed);
        let mut a = Mat::zeros(m, n);
        for r in 0..rank {
            let x = rng.normal_vec(m);
            let y = rng.normal_vec(n);
            a.add_outer(3.0 / (r + 1) as f64, &x, &y);
        }
        a
    }

    #[test]
    fn top_singular_values_match_dense_svd() {
        let a = low_rank_matrix(40, 25, 5, 51);
        let mut rng = Prng::seed_from_u64(1);
        let lan = lanczos_svd(&a, 5, 15, &mut rng).unwrap();
        let dense = svd_jacobi(&a).unwrap();
        for i in 0..5 {
            let rel = (lan.s[i] - dense.s[i]).abs() / dense.s[i].max(1e-12);
            assert!(rel < 1e-6, "triplet {i}: {} vs {}", lan.s[i], dense.s[i]);
        }
    }

    #[test]
    fn singular_vectors_span_the_same_subspace() {
        let a = low_rank_matrix(30, 20, 3, 52);
        let mut rng = Prng::seed_from_u64(2);
        let lan = lanczos_svd(&a, 3, 12, &mut rng).unwrap();
        let dense = svd_jacobi(&a).unwrap();
        // |v_lanczos · v_dense| ≈ 1 for each leading right vector.
        for i in 0..3 {
            let vl = lan.vt.row(i);
            let vd = dense.vt.row(i);
            let cos = vector::dot(vl, vd).abs();
            assert!(cos > 1.0 - 1e-6, "vector {i} cosine {cos}");
        }
    }

    #[test]
    fn works_on_sparse_operator() {
        let dense = low_rank_matrix(25, 18, 2, 53);
        // Sparsify by zeroing small entries; keep the structure.
        let sparse = SparseMat::from_dense(&Mat::from_fn(25, 18, |i, j| {
            let v = dense[(i, j)];
            if v.abs() > 0.5 {
                v
            } else {
                0.0
            }
        }));
        let mut rng = Prng::seed_from_u64(3);
        let lan = lanczos_svd(&sparse, 4, 12, &mut rng).unwrap();
        let exact = svd_jacobi(&sparse.to_dense()).unwrap();
        for i in 0..4 {
            assert!((lan.s[i] - exact.s[i]).abs() < 1e-6 * exact.s[0]);
        }
    }

    #[test]
    fn centered_operator_gives_pca_directions() {
        // SVD of the implicitly centered operator == SVD of explicit
        // centering.
        let y = SparseMat::from_triplets(
            6,
            4,
            &[
                (0, 0, 2.0),
                (1, 0, 4.0),
                (2, 1, 1.0),
                (3, 1, 3.0),
                (4, 2, 5.0),
                (5, 3, 2.0),
            ],
        );
        let mean = y.col_means();
        let op = CenteredSparse::new(&y, &mean);
        let mut rng = Prng::seed_from_u64(4);
        let lan = lanczos_svd(&op, 3, 3, &mut rng).unwrap();

        let mut centered = y.to_dense();
        centered.sub_row_vector(&mean);
        let exact = svd_jacobi(&centered).unwrap();
        for i in 0..3 {
            assert!(
                (lan.s[i] - exact.s[i]).abs() < 1e-8,
                "σ{i}: {} vs {}",
                lan.s[i],
                exact.s[i]
            );
        }
    }

    #[test]
    fn rank_too_large_is_rejected() {
        let a = Mat::zeros(3, 2);
        let mut rng = Prng::seed_from_u64(5);
        match lanczos_svd(&a, 5, 0, &mut rng) {
            Err(LinalgError::RankTooLarge { requested: 5, available: 2 }) => {}
            other => panic!("expected RankTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        let a = low_rank_matrix(5, 4, 1, 54);
        let mut rng = Prng::seed_from_u64(6);
        let svd = lanczos_svd(&a, 0, 5, &mut rng).unwrap();
        assert!(svd.s.is_empty());
    }

    #[test]
    fn breakdown_on_exact_low_rank_is_graceful() {
        // Rank 2 but asking for 2 with many extra steps: Lanczos must stop
        // early without error and still return the right values.
        let a = low_rank_matrix(20, 10, 2, 55);
        let mut rng = Prng::seed_from_u64(7);
        let lan = lanczos_svd(&a, 2, 15, &mut rng).unwrap();
        let dense = svd_jacobi(&a).unwrap();
        for i in 0..2 {
            assert!((lan.s[i] - dense.s[i]).abs() < 1e-6 * dense.s[0].max(1.0));
        }
    }
}
