//! QR iteration for the SVD of a bidiagonal matrix (Golub–Reinsch).
//!
//! This is the real "step (iii)" of the SVD-Bidiag method the paper's
//! Section 2.2 describes (Demmel & Kahan's refinement of Golub–Reinsch):
//! implicit-shift QR sweeps chase a bulge down the bidiagonal, with all
//! left/right Givens rotations accumulated into the singular-vector
//! factors. Working directly on the bidiagonal (instead of forming
//! `BᵀB`) preserves small singular values to full relative accuracy —
//! the entire point of reference \[11\] in the paper.

use crate::dense::Mat;
use crate::error::LinalgError;
use crate::Result;

/// SVD of an n×n upper-bidiagonal matrix given by its `diag` (length n)
/// and `superdiag` (length n−1): returns `(U, s, Vt)` with singular
/// values descending and non-negative, `U`/`Vt` square n×n.
pub fn golub_reinsch_svd(diag: &[f64], superdiag: &[f64]) -> Result<(Mat, Vec<f64>, Mat)> {
    let n = diag.len();
    assert!(
        n == 0 && superdiag.is_empty() || superdiag.len() + 1 == n,
        "superdiag must have n-1 entries"
    );
    if n == 0 {
        return Ok((Mat::zeros(0, 0), vec![], Mat::zeros(0, 0)));
    }

    let mut w: Vec<f64> = diag.to_vec();
    // rv1[i] is the super-diagonal entry to the *left* of w[i]; rv1[0] = 0.
    let mut rv1 = vec![0.0; n];
    rv1[1..].copy_from_slice(superdiag);

    let mut u = Mat::identity(n);
    let mut v = Mat::identity(n);

    // Magnitude scale for negligibility tests.
    let anorm = w
        .iter()
        .zip(&rv1)
        .map(|(a, b)| a.abs() + b.abs())
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);

    let rotate_cols = |m: &mut Mat, a: usize, b: usize, c: f64, s: f64| {
        for r in 0..m.rows() {
            let x = m[(r, a)];
            let y = m[(r, b)];
            m[(r, a)] = x * c + y * s;
            m[(r, b)] = y * c - x * s;
        }
    };

    for k in (0..n).rev() {
        let mut its = 0;
        loop {
            its += 1;
            if its > 64 {
                return Err(LinalgError::NonConvergence {
                    routine: "golub_reinsch_svd",
                    iterations: its,
                });
            }

            // Find the start `l` of the unreduced block ending at k.
            let mut l = k;
            let mut flag = true;
            loop {
                if rv1[l].abs() <= f64::EPSILON * anorm {
                    flag = false;
                    break;
                }
                // l >= 1 here because rv1[0] == 0 always triggers above.
                if w[l - 1].abs() <= f64::EPSILON * anorm {
                    break;
                }
                l -= 1;
            }

            if flag {
                // w[l-1] ≈ 0: cancel rv1[l] with Givens rotations from the
                // left, accumulating into U.
                let mut c = 0.0;
                let mut s = 1.0;
                let nm = l - 1;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() <= f64::EPSILON * anorm {
                        break;
                    }
                    let g = w[i];
                    let h = f.hypot(g);
                    w[i] = h;
                    c = g / h;
                    s = -f / h;
                    rotate_cols(&mut u, nm, i, c, s);
                }
            }

            let z = w[k];
            if l == k {
                // Converged: make the singular value non-negative.
                if z < 0.0 {
                    w[k] = -z;
                    for r in 0..n {
                        v[(r, k)] = -v[(r, k)];
                    }
                }
                break;
            }

            // Implicit-shift QR sweep from l to k.
            let mut x = w[l];
            let nm = k - 1;
            let y = w[nm];
            let mut g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = f.hypot(1.0);
            let sign_g = if f >= 0.0 { g.abs() } else { -g.abs() };
            f = ((x - z) * (x + z) + h * (y / (f + sign_g) - h)) / x;

            let mut c = 1.0;
            let mut s = 1.0;
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                let mut y2 = w[i];
                h = s * g;
                g *= c;
                let mut zz = f.hypot(h);
                rv1[j] = zz;
                c = f / zz;
                s = h / zz;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y2 * s;
                y2 *= c;
                rotate_cols(&mut v, j, i, c, s);
                zz = f.hypot(h);
                w[j] = zz;
                if zz != 0.0 {
                    let inv = 1.0 / zz;
                    c = f * inv;
                    s = h * inv;
                }
                f = c * g + s * y2;
                x = c * y2 - s * g;
                rotate_cols(&mut u, j, i, c, s);
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
    }

    // Sort descending, permuting vector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).expect("finite singular values"));
    let s_sorted: Vec<f64> = order.iter().map(|&i| w[i]).collect();
    let mut u_sorted = Mat::zeros(n, n);
    let mut vt_sorted = Mat::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            u_sorted[(r, new_c)] = u[(r, old_c)];
            vt_sorted[(new_c, r)] = v[(r, old_c)];
        }
    }
    Ok((u_sorted, s_sorted, vt_sorted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::svd::svd_jacobi;
    use crate::rng::Prng;

    fn bidiag_dense(diag: &[f64], superdiag: &[f64]) -> Mat {
        let n = diag.len();
        let mut b = Mat::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = superdiag[i];
            }
        }
        b
    }

    fn check(diag: &[f64], superdiag: &[f64], tol: f64) {
        let (u, s, vt) = golub_reinsch_svd(diag, superdiag).unwrap();
        let n = diag.len();
        // Descending, non-negative.
        for win in s.windows(2) {
            assert!(win[0] >= win[1] - 1e-12);
        }
        assert!(s.iter().all(|&x| x >= 0.0));
        // Orthogonality.
        assert!(u.matmul_tn(&u).approx_eq(&Mat::identity(n), tol));
        assert!(vt.matmul_nt(&vt).approx_eq(&Mat::identity(n), tol));
        // Reconstruction.
        let mut us = u.clone();
        for r in 0..n {
            for (c2, &sv) in s.iter().enumerate() {
                us[(r, c2)] *= sv;
            }
        }
        let b = bidiag_dense(diag, superdiag);
        assert!(us.matmul(&vt).approx_eq(&b, tol), "U·S·Vt != B");
        // Values agree with Jacobi.
        let jac = svd_jacobi(&b).unwrap();
        for (a, b) in s.iter().zip(&jac.s) {
            assert!((a - b).abs() < tol * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn random_bidiagonals() {
        for seed in 0..6 {
            let mut rng = Prng::seed_from_u64(seed);
            let n = 3 + (seed as usize % 5);
            let diag = rng.normal_vec(n);
            let superdiag = rng.normal_vec(n - 1);
            check(&diag, &superdiag, 1e-9);
        }
    }

    #[test]
    fn diagonal_only() {
        check(&[3.0, -1.0, 2.0], &[0.0, 0.0], 1e-12);
    }

    #[test]
    fn zero_diagonal_entry() {
        // Exercises the cancellation branch.
        check(&[1.0, 0.0, 2.0, 0.5], &[0.5, 0.25, 1.0], 1e-9);
    }

    #[test]
    fn tiny_and_large_entries_keep_relative_accuracy() {
        let diag = [1e8, 1.0, 1e-6];
        let superdiag = [1e2, 1e-3];
        let (_, s, _) = golub_reinsch_svd(&diag, &superdiag).unwrap();
        // The largest singular value ~1e8 and the smallest should still be
        // around 1e-6 (graded matrices are where BᵀB methods lose it).
        assert!(s[0] > 0.9e8);
        assert!(s[2] > 1e-7 && s[2] < 1e-4, "small σ lost: {}", s[2]);
    }

    #[test]
    fn single_element() {
        let (u, s, vt) = golub_reinsch_svd(&[-2.5], &[]).unwrap();
        assert_eq!(s, vec![2.5]);
        // Sign absorbed into a factor.
        assert!((u[(0, 0)] * vt[(0, 0)]).abs() == 1.0);
    }

    #[test]
    fn empty() {
        let (_, s, _) = golub_reinsch_svd(&[], &[]).unwrap();
        assert!(s.is_empty());
    }
}
