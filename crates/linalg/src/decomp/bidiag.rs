//! Golub–Kahan bidiagonalization and the SVD built on it.
//!
//! This is the machinery behind the paper's *SVD-Bidiag* method
//! (Section 2.2): reduce the matrix to upper-bidiagonal form with
//! alternating left/right Householder reflections, then diagonalize the
//! small bidiagonal core.
//!
//! The bidiagonal core is diagonalized by the implicit-shift QR sweeps of
//! [`super::bidiag_svd::golub_reinsch_svd`] — the Golub–Reinsch/
//! Demmel–Kahan family the paper's reference \[11\] belongs to, working on
//! the bidiagonal directly so small singular values keep full relative
//! accuracy.

use crate::dense::Mat;
use crate::decomp::bidiag_svd::golub_reinsch_svd;
use crate::decomp::svd::Svd;
use crate::vector;
use crate::Result;

/// Result of bidiagonalizing a tall matrix `A = U B Vᵀ`.
#[derive(Debug, Clone)]
pub struct Bidiagonal {
    /// Left orthonormal factor (m × n, thin).
    pub u: Mat,
    /// Main diagonal of `B` (length n).
    pub diag: Vec<f64>,
    /// Super-diagonal of `B` (length n-1).
    pub superdiag: Vec<f64>,
    /// Right orthogonal factor (n × n).
    pub v: Mat,
}

struct Reflector {
    /// First row/column the reflector touches.
    offset: usize,
    v: Vec<f64>,
    beta: f64,
}

fn make_reflector(x: &[f64], offset: usize) -> Reflector {
    let mut v = x.to_vec();
    let sigma = vector::norm2(&v);
    if sigma == 0.0 {
        return Reflector { offset, v, beta: 0.0 };
    }
    let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
    v[0] += sign * sigma;
    let vtv = vector::norm2_sq(&v);
    let beta = if vtv > 0.0 { 2.0 / vtv } else { 0.0 };
    Reflector { offset, v, beta }
}

/// Applies `H = I - beta v vᵀ` to rows `offset..` of the given columns.
fn apply_left(a: &mut Mat, h: &Reflector, col_start: usize) {
    if h.beta == 0.0 {
        return;
    }
    for col in col_start..a.cols() {
        let mut dot = 0.0;
        for (t, vi) in h.v.iter().enumerate() {
            dot += vi * a[(h.offset + t, col)];
        }
        let s = h.beta * dot;
        if s != 0.0 {
            for (t, vi) in h.v.iter().enumerate() {
                a[(h.offset + t, col)] -= s * vi;
            }
        }
    }
}

/// Applies `H` to columns `offset..` of the given rows (right
/// multiplication).
fn apply_right(a: &mut Mat, h: &Reflector, row_start: usize) {
    if h.beta == 0.0 {
        return;
    }
    for row in row_start..a.rows() {
        let mut dot = 0.0;
        for (t, vi) in h.v.iter().enumerate() {
            dot += vi * a[(row, h.offset + t)];
        }
        let s = h.beta * dot;
        if s != 0.0 {
            for (t, vi) in h.v.iter().enumerate() {
                a[(row, h.offset + t)] -= s * vi;
            }
        }
    }
}

/// Householder bidiagonalization of a tall (m ≥ n) matrix.
pub fn bidiagonalize(a: &Mat) -> Bidiagonal {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "bidiagonalize expects a tall matrix ({m} < {n}); transpose first");
    let mut work = a.clone();
    let mut lefts: Vec<Reflector> = Vec::with_capacity(n);
    let mut rights: Vec<Reflector> = Vec::new();

    for k in 0..n {
        // Zero below the diagonal in column k.
        let x: Vec<f64> = (k..m).map(|i| work[(i, k)]).collect();
        let h = make_reflector(&x, k);
        apply_left(&mut work, &h, k);
        lefts.push(h);
        // Zero right of the super-diagonal in row k.
        if k + 2 < n {
            let x: Vec<f64> = (k + 1..n).map(|j| work[(k, j)]).collect();
            let h = make_reflector(&x, k + 1);
            apply_right(&mut work, &h, k);
            rights.push(h);
        }
    }

    let diag: Vec<f64> = (0..n).map(|i| work[(i, i)]).collect();
    let superdiag: Vec<f64> = (0..n.saturating_sub(1)).map(|i| work[(i, i + 1)]).collect();

    // U = L_0 (L_1 (… L_{n-1} I_thin)): apply left reflectors in reverse.
    let mut u = Mat::zeros(m, n);
    for i in 0..n {
        u[(i, i)] = 1.0;
    }
    for h in lefts.iter().rev() {
        apply_left(&mut u, h, 0);
    }

    // V = R_0 (R_1 (… R_last I)): apply right reflectors (as symmetric
    // matrices, acting on rows) in reverse.
    let mut v = Mat::identity(n);
    for h in rights.iter().rev() {
        // Left application with the same vector: R_k is symmetric.
        let as_left = Reflector { offset: h.offset, v: h.v.clone(), beta: h.beta };
        apply_left(&mut v, &as_left, 0);
    }

    Bidiagonal { u, diag, superdiag, v }
}

impl Bidiagonal {
    /// Materializes the bidiagonal core `B` (n × n).
    pub fn b_matrix(&self) -> Mat {
        let n = self.diag.len();
        let mut b = Mat::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = self.diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = self.superdiag[i];
            }
        }
        b
    }
}

/// Full SVD pipeline via bidiagonalization: reduce, run Golub–Reinsch QR
/// sweeps on the bidiagonal core, and compose the factors.
///
/// Handles wide inputs by transposing internally.
pub fn svd_via_bidiag(a: &Mat) -> Result<Svd> {
    if a.rows() < a.cols() {
        let t = svd_via_bidiag(&a.transpose())?;
        return Ok(Svd { u: t.vt.transpose(), s: t.s, vt: t.u.transpose() });
    }
    let n = a.cols();
    if n == 0 {
        return Ok(Svd { u: Mat::zeros(a.rows(), 0), s: vec![], vt: Mat::zeros(0, 0) });
    }
    let bd = bidiagonalize(a);
    let (ub, s, vbt) = golub_reinsch_svd(&bd.diag, &bd.superdiag)?;
    let u = bd.u.matmul(&ub);
    // A = (U_bd·U_B) · S · (V_Bᵀ·V_bdᵀ).
    let vt = vbt.matmul_nt(&bd.v);
    Ok(Svd { u, s, vt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn bidiagonalization_reconstructs() {
        let mut rng = Prng::seed_from_u64(41);
        let a = rng.normal_mat(12, 5);
        let bd = bidiagonalize(&a);
        let rebuilt = bd.u.matmul(&bd.b_matrix()).matmul(&bd.v.transpose());
        assert!(rebuilt.approx_eq(&a, 1e-9), "U·B·Vᵀ ≠ A");
        // Orthonormality.
        let utu = bd.u.matmul_tn(&bd.u);
        assert!(utu.approx_eq(&Mat::identity(5), 1e-10));
        let vtv = bd.v.matmul_tn(&bd.v);
        assert!(vtv.approx_eq(&Mat::identity(5), 1e-10));
    }

    #[test]
    fn bidiagonal_core_has_only_two_diagonals() {
        let mut rng = Prng::seed_from_u64(42);
        let a = rng.normal_mat(9, 6);
        let bd = bidiagonalize(&a);
        // Verify by reconstructing through the dense core and checking its
        // sparsity pattern.
        let b = bd.b_matrix();
        for i in 0..6 {
            for j in 0..6 {
                if j != i && j != i + 1 {
                    assert_eq!(b[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn svd_via_bidiag_matches_jacobi_svd() {
        let mut rng = Prng::seed_from_u64(43);
        let a = rng.normal_mat(14, 6);
        let s1 = svd_via_bidiag(&a).unwrap();
        let s2 = super::super::svd::svd_jacobi(&a).unwrap();
        for (x, y) in s1.s.iter().zip(&s2.s) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
        assert!(s1.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_via_bidiag_on_wide_matrix() {
        let mut rng = Prng::seed_from_u64(44);
        let a = rng.normal_mat(4, 11);
        let svd = svd_via_bidiag(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_via_bidiag_near_rank_deficient() {
        // One dominant direction plus noise floor.
        let mut rng = Prng::seed_from_u64(45);
        let mut a = Mat::zeros(10, 4);
        let x = rng.normal_vec(10);
        let y = rng.normal_vec(4);
        a.add_outer(3.0, &x, &y);
        let noise = rng.normal_mat(10, 4);
        a.add_scaled(1e-6, &noise);
        let svd = svd_via_bidiag(&a).unwrap();
        assert!(svd.s[0] > 1.0);
        assert!(svd.s[1] < 1e-4);
        assert!(svd.reconstruct().approx_eq(&a, 1e-8));
    }
}
