//! LU decomposition with partial pivoting.
//!
//! sPCA only ever inverts the d×d matrix `M = C'C + ss·I` (Algorithm 4,
//! line 7), so a dependency-free Doolittle factorization is entirely
//! sufficient — d is 50 in every experiment of the paper.

use crate::dense::Mat;
use crate::error::LinalgError;
use crate::Result;

/// Packed LU factors of a square matrix, with row-pivot record.
#[derive(Debug, Clone)]
pub struct Lu {
    /// L (unit lower, below diagonal) and U (upper) packed in one matrix.
    lu: Mat,
    /// Row permutation applied to the input: `perm[i]` is the original row
    /// now sitting at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] if a
    /// pivot underflows.
    pub fn new(a: &Mat) -> Result<Lu> {
        assert_eq!(a.rows(), a.cols(), "lu: matrix must be square");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at or below k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < f64::MIN_POSITIVE {
                return Err(LinalgError::Singular { routine: "lu", pivot: max });
            }
            if p != k {
                perm.swap(p, k);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(p, j)];
                    lu[(p, j)] = lu[(k, j)];
                    lu[(k, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let sub = factor * lu[(k, j)];
                    lu[(i, j)] -= sub;
                }
            }
        }
        Ok(Lu { lu, perm, perm_sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "lu solve: rhs length mismatch");
        // Apply permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.dim(), "lu solve_mat: row count mismatch");
        let mut out = Mat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col);
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        out
    }

    /// Explicit inverse `A⁻¹` — the `M⁻¹` of the EM iteration.
    pub fn inverse(&self) -> Mat {
        self.solve_mat(&Mat::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience: invert a square matrix in one call.
pub fn inverse(a: &Mat) -> Result<Mat> {
    Ok(Lu::new(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_sample() -> Mat {
        Mat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 5.0]])
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_sample();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_sample();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.approx_eq(&Mat::identity(3), 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
        assert!((lu.det() + 1.0).abs() < 1e-15, "swap gives det -1");
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match Lu::new(&a) {
            Err(LinalgError::Singular { routine, .. }) => assert_eq!(routine, "lu"),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn det_of_diagonal() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((Lu::new(&a).unwrap().det() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn solve_mat_matches_columnwise_solve() {
        let a = spd_sample();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_mat(&b);
        assert!(a.matmul(&x).approx_eq(&b, 1e-12));
    }
}
