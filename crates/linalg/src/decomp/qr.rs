//! Householder QR decomposition with thin Q.
//!
//! QR shows up in two of the analyzed PCA methods: SVD-Bidiag performs a QR
//! first (Section 2.2), and stochastic SVD orthonormalizes its random
//! projection with a QR — in the distributed case via TSQR
//! (see [`mod@super::tsqr`]), whose local steps call into this module.

use crate::dense::Mat;
use crate::vector;

/// Thin QR factorization: `A = Q R` with `Q` of shape m×k, `R` k×n,
/// k = min(m, n). `Q` has orthonormal columns and `R` is upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal factor (m × k).
    pub q: Mat,
    /// Upper-triangular factor (k × n).
    pub r: Mat,
}

/// Computes the thin QR of `a` by Householder reflections.
pub fn qr_thin(a: &Mat) -> Qr {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut work = a.clone();
    // Householder vectors (each scaled so the reflection is I - beta v vᵀ).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut betas: Vec<f64> = Vec::with_capacity(k);

    for j in 0..k {
        // Column j below (and including) the diagonal.
        let mut v: Vec<f64> = (j..m).map(|i| work[(i, j)]).collect();
        let sigma = vector::norm2(&v);
        if sigma == 0.0 {
            vs.push(v);
            betas.push(0.0);
            continue;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        let alpha = -sign * sigma;
        v[0] -= alpha;
        let vtv = vector::norm2_sq(&v);
        let beta = if vtv > 0.0 { 2.0 / vtv } else { 0.0 };

        // Apply H = I - beta v vᵀ to the trailing block work[j.., j..].
        for col in j..n {
            let mut dot = 0.0;
            for (t, vi) in v.iter().enumerate() {
                dot += vi * work[(j + t, col)];
            }
            let s = beta * dot;
            if s != 0.0 {
                for (t, vi) in v.iter().enumerate() {
                    work[(j + t, col)] -= s * vi;
                }
            }
        }
        vs.push(v);
        betas.push(beta);
    }

    // R: upper-triangular top k×n of the transformed matrix.
    let mut r = Mat::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Thin Q: apply reflections in reverse order to the first k identity
    // columns.
    let mut q = Mat::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = 1.0;
    }
    for j in (0..k).rev() {
        let beta = betas[j];
        if beta == 0.0 {
            continue;
        }
        let v = &vs[j];
        for col in 0..k {
            let mut dot = 0.0;
            for (t, vi) in v.iter().enumerate() {
                dot += vi * q[(j + t, col)];
            }
            let s = beta * dot;
            if s != 0.0 {
                for (t, vi) in v.iter().enumerate() {
                    q[(j + t, col)] -= s * vi;
                }
            }
        }
    }

    Qr { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn check_qr(a: &Mat, tol: f64) {
        let Qr { q, r } = qr_thin(a);
        let k = a.rows().min(a.cols());
        assert_eq!((q.rows(), q.cols()), (a.rows(), k));
        assert_eq!((r.rows(), r.cols()), (k, a.cols()));
        // Reconstruction.
        assert!(q.matmul(&r).approx_eq(a, tol), "QR does not reconstruct input");
        // Orthonormal columns.
        let qtq = q.matmul_tn(&q);
        assert!(qtq.approx_eq(&Mat::identity(k), tol), "Q columns not orthonormal");
        // R upper triangular.
        for i in 0..k {
            for j in 0..i.min(r.cols()) {
                assert!(r[(i, j)].abs() < tol, "R not upper triangular at ({i},{j})");
            }
        }
    }

    #[test]
    fn qr_of_tall_random_matrix() {
        let mut rng = Prng::seed_from_u64(11);
        check_qr(&rng.normal_mat(20, 5), 1e-10);
    }

    #[test]
    fn qr_of_square_matrix() {
        let mut rng = Prng::seed_from_u64(12);
        check_qr(&rng.normal_mat(6, 6), 1e-10);
    }

    #[test]
    fn qr_of_wide_matrix() {
        let mut rng = Prng::seed_from_u64(13);
        check_qr(&rng.normal_mat(4, 9), 1e-10);
    }

    #[test]
    fn qr_of_rank_deficient_matrix_still_reconstructs() {
        // Two identical columns.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let Qr { q, r } = qr_thin(&a);
        assert!(q.matmul(&r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn qr_with_zero_column() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 2.0]]);
        let Qr { q, r } = qr_thin(&a);
        assert!(q.matmul(&r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let a = Mat::identity(4);
        let Qr { q, r } = qr_thin(&a);
        // Up to column signs, both factors are the identity; reconstruction
        // must be exact either way.
        assert!(q.matmul(&r).approx_eq(&a, 1e-14));
    }
}
