//! Legacy flat byte-size estimates for shuffle metering.
//!
//! The cluster simulator charges network and disk time per byte moved, and
//! the paper's headline "intermediate data" numbers (961 GB vs 131 MB on
//! Tweets) are byte counts of exactly this kind. Metered paths now charge
//! real *encoded* lengths from the [`crate::wire`] codec (varint + delta
//! indices, raw-IEEE-bits f64 payloads); this trait keeps the original
//! flat arithmetic — 8 bytes per `f64`/`u64`, 12 bytes per sparse entry
//! (4-byte index + 8-byte value) — as the [`crate::wire::Sizing::Estimated`]
//! policy, used for differential tests and for quoting the paper's own
//! uncompressed accounting.
//!
//! The trait lives in `linalg` (the bottom crate) so that matrix types can
//! implement it without a dependency cycle; it has no other coupling to
//! linear algebra.

use crate::dense::Mat;
use crate::sparse::SparseMat;

/// Estimated serialized size of a value, in bytes.
pub trait ByteSized {
    /// Number of bytes this value occupies on the (simulated) wire.
    fn size_bytes(&self) -> u64;
}

impl ByteSized for f64 {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl ByteSized for u64 {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl ByteSized for u32 {
    fn size_bytes(&self) -> u64 {
        4
    }
}

impl ByteSized for usize {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl ByteSized for () {
    fn size_bytes(&self) -> u64 {
        0
    }
}

impl<A: ByteSized, B: ByteSized> ByteSized for (A, B) {
    fn size_bytes(&self) -> u64 {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<T: ByteSized> ByteSized for Vec<T> {
    fn size_bytes(&self) -> u64 {
        // 8-byte length prefix plus elements.
        8 + self.iter().map(ByteSized::size_bytes).sum::<u64>()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn size_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, ByteSized::size_bytes)
    }
}

impl ByteSized for Mat {
    fn size_bytes(&self) -> u64 {
        16 + Mat::size_bytes(self)
    }
}

impl ByteSized for SparseMat {
    fn size_bytes(&self) -> u64 {
        16 + SparseMat::size_bytes(self)
    }
}

/// A sparse vector on the wire: `(index, value)` pairs.
///
/// Used by sPCA-Spark's `YtX` accumulator, which ships only the non-zero
/// rows of each per-row update (Section 4.2: "we only pass the indices of
/// the sparse entries … reducing O(D×d) to O(z×d)").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseUpdate {
    /// `(row index, dense row payload)` pairs.
    pub entries: Vec<(u32, Vec<f64>)>,
}

impl ByteSized for SparseUpdate {
    fn size_bytes(&self) -> u64 {
        8 + self
            .entries
            .iter()
            .map(|(_, row)| 4 + 8 * row.len() as u64)
            .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(1.0_f64.size_bytes(), 8);
        assert_eq!(7_u64.size_bytes(), 8);
        assert_eq!(7_u32.size_bytes(), 4);
        assert_eq!(().size_bytes(), 0);
        assert_eq!((1.0_f64, 2_u32).size_bytes(), 12);
    }

    #[test]
    fn vec_has_length_prefix() {
        let v = vec![1.0_f64, 2.0, 3.0];
        assert_eq!(v.size_bytes(), 8 + 24);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.size_bytes(), 8);
    }

    #[test]
    fn matrix_sizes_scale_with_payload() {
        let m = Mat::zeros(10, 10);
        assert_eq!(ByteSized::size_bytes(&m), 16 + 800);
        let s = SparseMat::from_triplets(4, 4, &[(0, 0, 1.0), (1, 2, 2.0)]);
        assert_eq!(ByteSized::size_bytes(&s), 16 + 2 * 12 + 5 * 8);
    }

    #[test]
    fn sparse_update_counts_only_stored_rows() {
        let u = SparseUpdate { entries: vec![(3, vec![1.0, 2.0]), (9, vec![0.5, 0.5])] };
        assert_eq!(u.size_bytes(), 8 + 2 * (4 + 16));
    }
}
