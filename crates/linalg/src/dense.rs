//! Row-major dense matrix.
//!
//! In sPCA the dense matrices are the *small* ones — `C` (D×d), `M`, `XtX`
//! (d×d), `YtX` (D×d) — which the paper deliberately keeps in the memory of
//! every node (Section 3.3). All products delegate to the blocked,
//! optionally multi-threaded kernels in [`crate::kernels`]; small matrices
//! stay on the sequential blocked path, large ones fan out on the shared
//! [`crate::pool::WorkerPool`] with bit-for-bit deterministic splits.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::kernels;
use crate::vector;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: {rows}x{cols} needs {} elements", rows * cols);
        Mat { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Underlying row-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage. Paired with
    /// [`Mat::from_vec`] this lets callers (the batched EM path) recycle
    /// one scratch allocation across differently-shaped blocks.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// In-memory footprint in bytes (used by the cluster simulator to meter
    /// shuffle volumes and driver memory).
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Matrix transpose into a fresh matrix, tiled so both the reads and
    /// the writes stay within a cache-line-sized block (the seed's j-strided
    /// writes missed on every element for large matrices).
    pub fn transpose(&self) -> Mat {
        const TILE: usize = 32;
        let mut t = Mat::zeros(self.cols, self.rows);
        for i0 in (0..self.rows).step_by(TILE) {
            let i1 = (i0 + TILE).min(self.rows);
            for j0 in (0..self.cols).step_by(TILE) {
                let j1 = (j0 + TILE).min(self.cols);
                for i in i0..i1 {
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for j in j0..j1 {
                        t.data[j * self.rows + i] = row[j];
                    }
                }
            }
        }
        t
    }

    /// Matrix product `self * other` (blocked kernel, threaded when large).
    pub fn matmul(&self, other: &Mat) -> Mat {
        kernels::matmul(self, other)
    }

    /// Product `self' * other` without materializing the transpose.
    ///
    /// This is Equation (2) of the paper: `A'B = Σ_r (A_r)' ⊗ B_r`, a sum of
    /// rank-1 updates that only ever touches one row of each operand — the
    /// access pattern that makes the distributed `YtX` job feasible. The
    /// kernel fuses four rows per pass and reduces fixed row chunks on the
    /// worker pool.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        kernels::matmul_tn(self, other)
    }

    /// Product `self * other'` (register-tiled kernel, threaded when large).
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        kernels::matmul_nt(self, other)
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        kernels::matvec(self, x)
    }

    /// Row-vector–matrix product `x' * self`, returned as a plain vector.
    ///
    /// This is the in-memory-multiplication primitive of Section 3.3: one
    /// (sparse or dense) row times a broadcast matrix yields one output row.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "vecmat: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (k, &xk) in x.iter().enumerate() {
            if xk != 0.0 {
                vector::axpy(xk, self.row(k), &mut out);
            }
        }
        out
    }

    /// Element-wise `self += alpha * other`.
    pub fn add_scaled(&mut self, alpha: f64, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add_scaled: shape mismatch");
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Mat) {
        self.add_scaled(1.0, other);
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Adds `alpha` to each diagonal entry (`self += alpha * I`); the
    /// `M = C'C + ss*I` step of the EM iteration.
    pub fn add_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Rank-1 update `self += alpha * x ⊗ y`.
    pub fn add_outer(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows, "add_outer: x length mismatch");
        assert_eq!(y.len(), self.cols, "add_outer: y length mismatch");
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vector::axpy(alpha * xi, y, self.row_mut(i));
            }
        }
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// Squared Frobenius norm `‖self‖²_F`.
    pub fn frobenius_sq(&self) -> f64 {
        vector::norm2_sq(&self.data)
    }

    /// Sum of absolute values of all entries (entry-wise 1-norm).
    pub fn norm1(&self) -> f64 {
        vector::norm1(&self.data)
    }

    /// Column means as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.cols];
        for r in 0..self.rows {
            vector::axpy(1.0, self.row(r), &mut m);
        }
        if self.rows > 0 {
            vector::scale(1.0 / self.rows as f64, &mut m);
        }
        m
    }

    /// Subtracts `v` from every row in place (dense mean-centering — exactly
    /// the operation mean propagation exists to avoid on sparse data).
    pub fn sub_row_vector(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "sub_row_vector: length mismatch");
        for r in 0..self.rows {
            vector::axpy(-1.0, v, self.row_mut(r));
        }
    }

    /// Copies rows `[start, end)` into a fresh matrix.
    pub fn row_block(&self, start: usize, end: usize) -> Mat {
        assert!(start <= end && end <= self.rows, "row_block: bad range {start}..{end}");
        Mat::from_vec(end - start, self.cols, self.data[start * self.cols..end * self.cols].to_vec())
    }

    /// Copies the selected rows into a fresh matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(idx.len(), self.cols);
        for (k, &r) in idx.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(r));
        }
        out
    }

    /// Vertically stacks matrices with identical column counts.
    pub fn vcat(blocks: &[Mat]) -> Mat {
        if blocks.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = blocks[0].cols;
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vcat: column counts differ");
            data.extend_from_slice(&b.data);
        }
        Mat { rows, cols, data }
    }

    /// Maximum absolute element-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {}x{}", self.rows, self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {}x{}", self.rows, self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:10.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    #[test]
    fn constructors_and_shape() {
        let z = Mat::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert!(z.data().iter().all(|&v| v == 0.0));

        let i = Mat::identity(3);
        assert_eq!(i.trace(), 3.0);

        let f = Mat::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(f[(1, 0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = sample(); // 3x2
        let b = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 2.0]]); // 2x3
        let c = a.matmul(&b);
        let expect = Mat::from_rows(&[&[1.0, 2.0, 6.0], &[3.0, 4.0, 14.0], &[5.0, 6.0, 22.0]]);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = sample();
        let b = Mat::from_rows(&[&[1.0, 1.0, 0.0], &[2.0, 0.0, 1.0], &[1.0, 3.0, 2.0]]);
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        assert!(via_tn.approx_eq(&via_t, 1e-12));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = sample();
        let b = Mat::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(via_nt.approx_eq(&via_t, 1e-12));
    }

    #[test]
    fn vecmat_matches_matmul() {
        let a = sample();
        let x = [1.0, -1.0, 2.0];
        let y = a.transpose().matvec(&x);
        assert_eq!(a.vecmat(&x), y);
    }

    #[test]
    fn transpose_is_involution() {
        let a = sample();
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn col_means_and_centering() {
        let a = sample();
        let m = a.col_means();
        assert_eq!(m, vec![3.0, 4.0]);
        let mut c = a.clone();
        c.sub_row_vector(&m);
        assert!(c.col_means().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn add_diag_and_trace() {
        let mut a = Mat::zeros(3, 3);
        a.add_diag(2.5);
        assert_eq!(a.trace(), 7.5);
    }

    #[test]
    fn add_outer_is_rank_one_update() {
        let mut a = Mat::zeros(2, 3);
        a.add_outer(2.0, &[1.0, 0.0], &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(a.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn row_block_and_select_rows() {
        let a = sample();
        let b = a.row_block(1, 3);
        assert_eq!(b.row(0), &[3.0, 4.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn vcat_stacks() {
        let a = sample();
        let stacked = Mat::vcat(&[a.row_block(0, 1), a.row_block(1, 3)]);
        assert!(stacked.approx_eq(&a, 0.0));
        assert_eq!(Mat::vcat(&[]).rows(), 0);
    }

    #[test]
    fn frobenius_and_norm1() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[2.0, 0.0]]);
        assert_eq!(a.frobenius_sq(), 9.0);
        assert_eq!(a.norm1(), 5.0);
    }

    #[test]
    fn size_bytes_counts_payload() {
        assert_eq!(Mat::zeros(4, 5).size_bytes(), 160);
    }

    #[test]
    fn debug_output_is_truncated() {
        let big = Mat::zeros(20, 20);
        let s = format!("{big:?}");
        assert!(s.contains('…'));
        assert!(s.len() < 2500);
    }
}
