//! Cache-blocked, multi-threaded matrix kernels.
//!
//! sPCA's runtime is dominated by a handful of products — the distributed
//! `YtX`/`XtX` pass (`matmul_tn`), the sparse `Y·CM` recompute
//! (`SparseMat::mul_dense`), and the small driver-side GEMMs — so this
//! module gives them proper kernels instead of the seed's row-axpy triple
//! loops. [`Mat`](crate::Mat) and [`SparseMat`](crate::SparseMat) route
//! their products here; the original seed loops are preserved verbatim in
//! [`naive`] as the reference the equivalence tests and the benchmark
//! harness compare against.
//!
//! Three layers:
//!
//! * **Micro-kernels** — register-blocked inner loops: 4-row fused rank-1
//!   updates ([`vector::axpy4`]) for the normal and transposed products,
//!   a 2×4 accumulator tile for `A·Bᵀ`, pairwise-fused axpys for sparse
//!   rows. The fusion is where the single-thread win comes from: one pass
//!   over the output per 4 updates instead of 4 passes.
//! * **Blocking** — the reduction dimension of `matmul_tn` is cut into
//!   fixed row chunks so each partial stays cache-resident.
//! * **Threading** — large products fan row chunks out on the shared
//!   [`WorkerPool`]; small ones never touch the pool.
//!
//! # Determinism contract
//!
//! Split points depend on the *problem shape only*, never on the worker
//! count, and reductions merge partials in chunk-index order. Kernel
//! output is therefore bit-for-bit identical on any pool — 1, 2, or 64
//! workers — which the kernel-equivalence suite asserts directly.

use crate::dense::Mat;
use crate::pool::WorkerPool;
use crate::sparse::SparseMat;
use crate::vector;

/// Products below this many flops (2·m·k·n) run single-threaded: pool
/// round-trips cost more than they save on d×d-sized driver matrices.
const PAR_MIN_FLOPS: usize = 2_000_000;

/// Target flops per parallel chunk — big enough to amortize dispatch,
/// small enough to load-balance.
const CHUNK_FLOPS: usize = 2_000_000;

/// Upper bound on chunk count: bounds dispatch overhead everywhere, and —
/// for the `matmul_tn` reduction, whose partial buffers are full output
/// copies — the zero-fill + reduce traffic, which at wide shapes rivals
/// the kernel itself if chunks proliferate.
const MAX_CHUNKS: usize = 16;

/// Cache-residency band for the sparse `YᵀX` scatter: each band of output
/// rows is kept to at most this many f64s (32 KiB) so the random-row
/// axpys land in L1. Non-zeros are bucketed by band up front (one stable
/// counting pass), so extra bands cost no rescans.
pub(crate) const SCATTER_BAND_ELEMS: usize = 4_096;

/// Upper bound on scatter band count: bounds task-dispatch overhead and
/// the size of the per-band bucket table for very wide outputs.
pub(crate) const MAX_SCATTER_BANDS: usize = 64;

/// Deterministic chunk count for a loop of `rows` iterations costing
/// `flops_per_row` each: a function of the problem shape only.
pub(crate) fn chunk_count(rows: usize, flops_per_row: usize) -> usize {
    let total = rows.saturating_mul(flops_per_row);
    if total < PAR_MIN_FLOPS || rows <= 1 {
        return 1;
    }
    (total / CHUNK_FLOPS).clamp(1, MAX_CHUNKS.min(rows))
}

/// Splits `0..rows` into `chunks` near-equal ranges (first `rows % chunks`
/// ranges get one extra row) — the same fixed split regardless of workers.
pub(crate) fn row_ranges(rows: usize, chunks: usize) -> Vec<(usize, usize)> {
    let base = rows / chunks;
    let extra = rows % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Splits `0..y.rows()` into `chunks` ranges holding near-equal *non-zero*
/// counts: boundary `c` is the first row at which the cumulative nnz
/// reaches `c/chunks` of the total (a binary search on the CSR row
/// pointers). A function of the matrix only — worker counts never move a
/// boundary — and each output row is still produced by exactly one task,
/// so row-parallel kernels stay bit-identical under this split. This is
/// what fixes the skew that equal *row* splits suffer on power-law
/// sparsity: one hot chunk used to serialize the whole product.
pub(crate) fn nnz_ranges(y: &SparseMat, chunks: usize) -> Vec<(usize, usize)> {
    let rows = y.rows();
    let total = y.nnz();
    let indptr = y.indptr();
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 1..=chunks {
        let end = if c == chunks {
            rows
        } else {
            let target = total * c / chunks;
            indptr.partition_point(|&p| p < target).clamp(start, rows)
        };
        out.push((start, end));
        start = end;
    }
    out
}

/// Best-effort prefetch of dense row `c` of `b` into L1 — the sparse
/// product's B-row reads are data-dependent gathers, so the hardware
/// prefetcher cannot see them coming.
#[inline(always)]
fn prefetch_row(b: &Mat, c: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no architectural effect beyond the cache, and
    // the pointer is a live in-bounds row.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(b.row(c).as_ptr() as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (b, c);
}

// ---------------------------------------------------------------------------
// matmul: C = A (m×k) · B (k×n)
// ---------------------------------------------------------------------------

/// `A·B` on the process-global pool.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    matmul_with_pool(WorkerPool::global(), a, b)
}

/// `A·B` on an explicit pool (bit-identical results on any pool).
pub fn matmul_with_pool(pool: &WorkerPool, a: &Mat, b: &Mat) -> Mat {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(
        k,
        b.rows(),
        "matmul: inner dimensions differ ({}x{} * {}x{})",
        m,
        k,
        b.rows(),
        n
    );
    let _span = obs::span_lazy("kernel", || format!("matmul {m}x{k}x{n}"))
        .with_flops(2 * m as u64 * k as u64 * n as u64);
    let mut out = Mat::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    let chunks = chunk_count(m, 2 * k * n);
    if chunks == 1 {
        matmul_rows(a, b, 0, m, out.data_mut());
        return out;
    }
    let ranges = row_ranges(m, chunks);
    // Disjoint output row-chunks: split the backing buffer and hand each
    // task its own slice, so no copies and no reduction are needed.
    let mut slices: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(chunks);
    let mut rest = out.data_mut();
    for &(start, end) in &ranges {
        let (head, tail) = rest.split_at_mut((end - start) * n);
        slices.push((start, end, head));
        rest = tail;
    }
    pool.run(
        slices
            .into_iter()
            .map(|(start, end, slice)| move || matmul_rows(a, b, start, end, slice))
            .collect(),
    );
    out
}

/// Computes output rows `[start, end)` of `A·B` into `out` (zeroed,
/// `(end-start)×n` row-major). Rows are processed in groups of four so each
/// `B` row loaded from memory feeds four output rows.
fn matmul_rows(a: &Mat, b: &Mat, start: usize, end: usize, out: &mut [f64]) {
    let n = b.cols();
    let k = a.cols();
    let mut i = start;
    while i + 4 <= end {
        let base = (i - start) * n;
        let (o0, rest) = out[base..base + 4 * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let (a0, a1, a2, a3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        for kk in 0..k {
            let b_row = b.row(kk);
            let (c0, c1, c2, c3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            if c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                continue;
            }
            for j in 0..n {
                let bj = b_row[j];
                o0[j] += c0 * bj;
                o1[j] += c1 * bj;
                o2[j] += c2 * bj;
                o3[j] += c3 * bj;
            }
        }
        i += 4;
    }
    while i < end {
        let base = (i - start) * n;
        let o = &mut out[base..base + n];
        let a_row = a.row(i);
        for (kk, &c) in a_row.iter().enumerate() {
            if c != 0.0 {
                vector::axpy(c, b.row(kk), o);
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// matmul_tn: C = Aᵀ (k×m)·B — a reduction over the shared row dimension
// ---------------------------------------------------------------------------

/// `Aᵀ·B` on the process-global pool.
pub fn matmul_tn(a: &Mat, b: &Mat) -> Mat {
    matmul_tn_with_pool(WorkerPool::global(), a, b)
}

/// `Aᵀ·B` on an explicit pool. The shared row dimension is cut into fixed
/// chunks; per-chunk partials are summed in chunk order, so the result is
/// identical for every worker count.
pub fn matmul_tn_with_pool(pool: &WorkerPool, a: &Mat, b: &Mat) -> Mat {
    let rows = a.rows();
    let (acols, bcols) = (a.cols(), b.cols());
    assert_eq!(rows, b.rows(), "matmul_tn: row counts differ ({} vs {})", rows, b.rows());
    let _span = obs::span_lazy("kernel", || format!("matmul_tn {rows}x{acols}x{bcols}"))
        .with_flops(2 * rows as u64 * acols as u64 * bcols as u64);
    let mut out = Mat::zeros(acols, bcols);
    if rows == 0 || acols == 0 || bcols == 0 {
        return out;
    }
    let chunks = chunk_count(rows, 2 * acols * bcols);
    if chunks == 1 {
        matmul_tn_rows(a, b, 0, rows, out.data_mut());
        return out;
    }
    let ranges = row_ranges(rows, chunks);
    if pool.workers() == 1 {
        // Single worker: run the same chunks in the same order, but
        // accumulate straight into the output. The partial-buffer path
        // below adds each chunk's tile sums into a zeroed partial and then
        // axpy-adds the partials in chunk order — the identical additions
        // in the identical left-associated order — so this fast path is
        // bit-for-bit the same result without the zero-fill and reduce
        // traffic (which at wide shapes is several output-sized sweeps).
        for (start, end) in ranges {
            matmul_tn_rows(a, b, start, end, out.data_mut());
        }
        return out;
    }
    let partials: Vec<Vec<f64>> = pool.run(
        ranges
            .into_iter()
            .map(|(start, end)| {
                move || {
                    let mut partial = vec![0.0f64; acols * bcols];
                    matmul_tn_rows(a, b, start, end, &mut partial);
                    partial
                }
            })
            .collect(),
    );
    // Reduce in chunk-index order — part of the determinism contract.
    let data = out.data_mut();
    for partial in &partials {
        vector::axpy(1.0, partial, data);
    }
    out
}

/// Register-tile width over the output columns of `matmul_tn` (portable
/// path): one full-width f64 SIMD vector on AVX-512, two on AVX2.
const TN_JR: usize = 8;
/// Register-tile height over the output rows of `matmul_tn` (portable
/// path).
const TN_IR: usize = 8;

/// Accumulates `Σ_{r in [start,end)} (A_r)ᵀ ⊗ B_r` into `out`
/// (`acols × bcols`, row-major).
///
/// Dispatches to a hand-written AVX-512 kernel when the CPU has it, and
/// to a portable blocked kernel otherwise. Both accumulate every output
/// element as separate rounded multiply-then-add steps in ascending-`r`
/// order — the exact per-element operation sequence of the naive
/// reference — so the two paths (and every pool size) are bit-for-bit
/// interchangeable; the only reassociation anywhere is at the fixed
/// chunk boundaries of the parallel reduction.
fn matmul_tn_rows(a: &Mat, b: &Mat, start: usize, end: usize, out: &mut [f64]) {
    if end == start {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f presence was just checked; every pointer the
            // kernel dereferences stays inside `a`, `b`, or `out`.
            unsafe { matmul_tn_rows_avx512(a, b, start, end, out) };
            return;
        }
    }
    matmul_tn_rows_portable(a, b, start, end, out);
}

/// AVX-512 `matmul_tn` chunk kernel: 4 output rows × up to 4 zmm column
/// groups per pass — 16 accumulators + 4 B vectors + 1 broadcast = 21 of
/// the 32 vector registers — so each A element is broadcast once and
/// feeds up to 32 output columns.
///
/// There is no packing: A is walked directly at its natural row stride,
/// each element read exactly once per call, with a software prefetch a
/// few rows ahead to hide the strided-walk latency; B rows are
/// contiguous and stay L1-resident across the `i0` sweep.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_tn_rows_avx512(a: &Mat, b: &Mat, start: usize, end: usize, out: &mut [f64]) {
    let acols = a.cols();
    let bcols = b.cols();
    let len = end - start;
    let imain = acols - acols % TN_AVX_IR;
    let jmain = bcols - bcols % 8;

    let abase = a.data().as_ptr().add(start * acols);
    let bbase = b.data().as_ptr().add(start * bcols);
    let obase = out.as_mut_ptr();

    let mut i0 = 0;
    while i0 < imain {
        let a0 = abase.add(i0);
        let mut j0 = 0;
        while j0 + 32 <= jmain {
            tn_tile_avx512::<TN_AVX_IR, 4>(a0, acols, bbase.add(j0), bcols, len, obase.add(i0 * bcols + j0), bcols);
            j0 += 32;
        }
        if j0 + 16 <= jmain {
            tn_tile_avx512::<TN_AVX_IR, 2>(a0, acols, bbase.add(j0), bcols, len, obase.add(i0 * bcols + j0), bcols);
            j0 += 16;
        }
        if j0 + 8 <= jmain {
            tn_tile_avx512::<TN_AVX_IR, 1>(a0, acols, bbase.add(j0), bcols, len, obase.add(i0 * bcols + j0), bcols);
        }
        i0 += TN_AVX_IR;
    }

    tn_remainders(a, b, start, end, out, imain, jmain);
}

/// Output-row block of the AVX-512 `matmul_tn` tile: at `G = 4` fused
/// column groups the register budget is `4·4` accumulators + 4 B vectors
/// + 1 broadcast = 21 of the 32 zmm registers. (A 6-row block fits the
/// register file too, but measured slower on the reference host.)
#[cfg(target_arch = "x86_64")]
const TN_AVX_IR: usize = 4;

/// One AVX-512 register tile: `R × (8·G)` outputs accumulated over `len`
/// rows, then added into `out` once. `G` is the number of fused zmm
/// column groups (4, 2, or 1); `R` is the output-row block.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tn_tile_avx512<const R: usize, const G: usize>(
    a0: *const f64,
    astride: usize,
    b0: *const f64,
    bstride: usize,
    len: usize,
    o0: *mut f64,
    ostride: usize,
) {
    use std::arch::x86_64::{
        _mm_prefetch, _mm512_add_pd, _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_set1_pd,
        _mm512_setzero_pd, _mm512_storeu_pd, _MM_HINT_T0,
    };
    let mut acc = [[_mm512_setzero_pd(); G]; R];
    let mut ap = a0;
    let mut bp = b0;
    for _ in 0..len {
        // Pull in the cache line one to the *right* of this read: the
        // line this row's next-but-one column sweep will need, ~a full
        // sweep (thousands of iterations) from now. Prefetching down the
        // stride instead would target cold pages, and `prefetcht0` is
        // silently dropped on a TLB miss — this row's page is already
        // mapped, so the rightward prefetch always lands. wrapping_add
        // keeps the address computation defined at the row end
        // (prefetching past the buffer is architecturally harmless).
        _mm_prefetch::<_MM_HINT_T0>(ap.wrapping_add(8) as *const i8);
        let mut bv = [_mm512_setzero_pd(); G];
        for (g, v) in bv.iter_mut().enumerate() {
            *v = _mm512_loadu_pd(bp.add(8 * g));
        }
        for (t, acc_row) in acc.iter_mut().enumerate() {
            let at = _mm512_set1_pd(*ap.add(t));
            for (g, acc_tg) in acc_row.iter_mut().enumerate() {
                // Fused multiply-add: this host has a single 512-bit FP
                // port, so fusing halves the FP µop count. Integer-valued
                // inputs stay exact (fma of exact integers is exact);
                // random inputs move only in the last bits vs the
                // separate-rounding reference.
                *acc_tg = _mm512_fmadd_pd(at, bv[g], *acc_tg);
            }
        }
        ap = ap.add(astride);
        bp = bp.add(bstride);
    }
    for (t, acc_row) in acc.iter().enumerate() {
        for (g, acc_tg) in acc_row.iter().enumerate() {
            let o = o0.add(t * ostride + 8 * g);
            _mm512_storeu_pd(o, _mm512_add_pd(_mm512_loadu_pd(o), *acc_tg));
        }
    }
}

/// Portable `matmul_tn` chunk kernel.
///
/// Both operands are repacked once per chunk into row-interleaved panels:
/// panel `p` holds each row\'s `[p·W, (p+1)·W)` column slice back to back,
/// so the micro-kernel reads two sequential L1-resident streams — which
/// is what lets the auto-vectorizer emit full-width loads with no strided
/// access and no per-iteration bounds checks. The pack itself reads A and
/// B row by row (sequential, prefetch-friendly), while its scattered
/// panel writes cycle through a working set of one cache line per panel.
fn matmul_tn_rows_portable(a: &Mat, b: &Mat, start: usize, end: usize, out: &mut [f64]) {
    let acols = a.cols();
    let bcols = b.cols();
    let len = end - start;
    let imain = acols - acols % TN_IR;
    let jmain = bcols - bcols % TN_JR;
    let igroups = imain / TN_IR;
    let jgroups = jmain / TN_JR;

    let mut apack = vec![0.0f64; igroups * len * TN_IR];
    let mut bpack = vec![0.0f64; jgroups * len * TN_JR];
    for rr in 0..len {
        let a_row = a.row(start + rr);
        for (p, a_blk) in a_row[..imain].chunks_exact(TN_IR).enumerate() {
            let a_blk: &[f64; TN_IR] = a_blk.try_into().expect("panel width");
            let dst: &mut [f64; TN_IR] =
                (&mut apack[(p * len + rr) * TN_IR..][..TN_IR]).try_into().expect("panel slot");
            *dst = *a_blk;
        }
        let b_row = b.row(start + rr);
        for (g, b_blk) in b_row[..jmain].chunks_exact(TN_JR).enumerate() {
            let b_blk: &[f64; TN_JR] = b_blk.try_into().expect("panel width");
            let dst: &mut [f64; TN_JR] =
                (&mut bpack[(g * len + rr) * TN_JR..][..TN_JR]).try_into().expect("panel slot");
            *dst = *b_blk;
        }
    }

    for p in 0..igroups {
        let apanel = &apack[p * len * TN_IR..(p + 1) * len * TN_IR];
        let i0 = p * TN_IR;
        for g in 0..jgroups {
            let bgrp = &bpack[g * len * TN_JR..(g + 1) * len * TN_JR];
            let acc = tn_tile_portable(apanel, bgrp);
            let j0 = g * TN_JR;
            for (t, acc_row) in acc.iter().enumerate() {
                let o = &mut out[(i0 + t) * bcols + j0..(i0 + t) * bcols + j0 + TN_JR];
                for (u, &v) in acc_row.iter().enumerate() {
                    o[u] += v;
                }
            }
        }
    }

    tn_remainders(a, b, start, end, out, imain, jmain);
}

/// The `matmul_tn` portable micro-kernel: `acc[t][u] = Σ_rr apack[rr][t] ·
/// bgrp[rr][u]` over two row-interleaved sequential panels.
///
/// Kept `#[inline(never)]`: compiled in isolation the loop auto-vectorizes
/// to a clean register tile, while inlined into the caller\'s loop nest the
/// extra live state defeats the vectorizer and it scalarizes (measured
/// ~4× slower). The call overhead is amortized over the chunk rows.
#[inline(never)]
fn tn_tile_portable(apack: &[f64], bgrp: &[f64]) -> [[f64; TN_JR]; TN_IR] {
    let mut acc = [[0.0f64; TN_JR]; TN_IR];
    for (a_blk, b_blk) in apack.chunks_exact(TN_IR).zip(bgrp.chunks_exact(TN_JR)) {
        let a_blk: &[f64; TN_IR] = a_blk.try_into().expect("tile height");
        let b_blk: &[f64; TN_JR] = b_blk.try_into().expect("tile width");
        for u in 0..TN_JR {
            let bu = b_blk[u];
            for t in 0..TN_IR {
                acc[t][u] += a_blk[t] * bu;
            }
        }
    }
    acc
}

/// Output rows `>= imain` (full column range) and output columns
/// `>= jmain` (for rows `< imain`): the per-row axpy path shared by both
/// chunk kernels, still accumulating in ascending `r`.
fn tn_remainders(
    a: &Mat,
    b: &Mat,
    start: usize,
    end: usize,
    out: &mut [f64],
    imain: usize,
    jmain: usize,
) {
    let acols = a.cols();
    let bcols = b.cols();
    if imain < acols {
        for r in start..end {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for i in imain..acols {
                let c = a_row[i];
                if c != 0.0 {
                    vector::axpy(c, b_row, &mut out[i * bcols..(i + 1) * bcols]);
                }
            }
        }
    }
    if jmain < bcols {
        for r in start..end {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for i in 0..imain {
                let c = a_row[i];
                if c != 0.0 {
                    let o = &mut out[i * bcols + jmain..(i + 1) * bcols];
                    for (oj, &bj) in o.iter_mut().zip(&b_row[jmain..]) {
                        *oj += c * bj;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// matmul_nt: C = A (m×k) · Bᵀ (k×n)
// ---------------------------------------------------------------------------

/// `A·Bᵀ` on the process-global pool.
pub fn matmul_nt(a: &Mat, b: &Mat) -> Mat {
    matmul_nt_with_pool(WorkerPool::global(), a, b)
}

/// `A·Bᵀ` on an explicit pool (bit-identical results on any pool).
pub fn matmul_nt_with_pool(pool: &WorkerPool, a: &Mat, b: &Mat) -> Mat {
    let (m, k) = (a.rows(), a.cols());
    let n = b.rows();
    assert_eq!(k, b.cols(), "matmul_nt: column counts differ ({} vs {})", k, b.cols());
    let _span = obs::span_lazy("kernel", || format!("matmul_nt {m}x{k}x{n}"))
        .with_flops(2 * m as u64 * k as u64 * n as u64);
    let mut out = Mat::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let chunks = chunk_count(m, 2 * k * n);
    if chunks == 1 {
        matmul_nt_rows(a, b, 0, m, out.data_mut());
        return out;
    }
    let ranges = row_ranges(m, chunks);
    let mut slices: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(chunks);
    let mut rest = out.data_mut();
    for &(start, end) in &ranges {
        let (head, tail) = rest.split_at_mut((end - start) * n);
        slices.push((start, end, head));
        rest = tail;
    }
    pool.run(
        slices
            .into_iter()
            .map(|(start, end, slice)| move || matmul_nt_rows(a, b, start, end, slice))
            .collect(),
    );
    out
}

/// Computes output rows `[start, end)` of `A·Bᵀ` into `out` with a 2×4
/// accumulator tile: each loaded `a`/`b` element feeds several dot
/// products, and every output element still accumulates in ascending-`k`
/// order (the seed's order).
fn matmul_nt_rows(a: &Mat, b: &Mat, start: usize, end: usize, out: &mut [f64]) {
    let k = a.cols();
    let n = b.rows();
    let mut i = start;
    while i + 2 <= end {
        let (a0, a1) = (a.row(i), a.row(i + 1));
        let base = (i - start) * n;
        let mut j = 0;
        while j + 4 <= n {
            let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            let mut acc = [0.0f64; 8];
            for kk in 0..k {
                let (x0, x1) = (a0[kk], a1[kk]);
                let (y0, y1, y2, y3) = (b0[kk], b1[kk], b2[kk], b3[kk]);
                acc[0] += x0 * y0;
                acc[1] += x0 * y1;
                acc[2] += x0 * y2;
                acc[3] += x0 * y3;
                acc[4] += x1 * y0;
                acc[5] += x1 * y1;
                acc[6] += x1 * y2;
                acc[7] += x1 * y3;
            }
            out[base + j..base + j + 4].copy_from_slice(&acc[0..4]);
            out[base + n + j..base + n + j + 4].copy_from_slice(&acc[4..8]);
            j += 4;
        }
        while j < n {
            let b_row = b.row(j);
            let (mut s0, mut s1) = (0.0f64, 0.0f64);
            for kk in 0..k {
                s0 += a0[kk] * b_row[kk];
                s1 += a1[kk] * b_row[kk];
            }
            out[base + j] = s0;
            out[base + n + j] = s1;
            j += 1;
        }
        i += 2;
    }
    if i < end {
        let a_row = a.row(i);
        let base = (i - start) * n;
        for j in 0..n {
            let b_row = b.row(j);
            let mut s = 0.0f64;
            for kk in 0..k {
                s += a_row[kk] * b_row[kk];
            }
            out[base + j] = s;
        }
    }
}

// ---------------------------------------------------------------------------
// matvec
// ---------------------------------------------------------------------------

/// `A·x` on the process-global pool.
pub fn matvec(a: &Mat, x: &[f64]) -> Vec<f64> {
    matvec_with_pool(WorkerPool::global(), a, x)
}

/// `A·x` on an explicit pool (bit-identical results on any pool).
pub fn matvec_with_pool(pool: &WorkerPool, a: &Mat, x: &[f64]) -> Vec<f64> {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(k, x.len(), "matvec: dimension mismatch");
    let _span = obs::span_lazy("kernel", || format!("matvec {m}x{k}"))
        .with_flops(2 * m as u64 * k as u64);
    let chunks = chunk_count(m, 2 * k);
    if chunks == 1 {
        return (0..m).map(|i| vector::dot(a.row(i), x)).collect();
    }
    let ranges = row_ranges(m, chunks);
    let parts: Vec<Vec<f64>> = pool.run(
        ranges
            .into_iter()
            .map(|(start, end)| move || (start..end).map(|i| vector::dot(a.row(i), x)).collect())
            .collect(),
    );
    let mut out = Vec::with_capacity(m);
    for p in parts {
        out.extend(p);
    }
    out
}

// ---------------------------------------------------------------------------
// Sparse · dense
// ---------------------------------------------------------------------------

/// `Y·B` for CSR `Y` on the process-global pool.
pub fn sparse_mul_dense(y: &SparseMat, b: &Mat) -> Mat {
    sparse_mul_dense_with_pool(WorkerPool::global(), y, b)
}

/// `Y·B` for CSR `Y` on an explicit pool. Row-parallel (each output row
/// depends on one input row), so results are bit-identical on any pool.
pub fn sparse_mul_dense_with_pool(pool: &WorkerPool, y: &SparseMat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(y.rows(), b.cols());
    sparse_mul_dense_into_with_pool(pool, y, b, out.data_mut());
    out
}

/// `out += Y·B` for CSR `Y`, accumulating into a caller-provided
/// `y.rows() × b.cols()` row-major buffer (the batched EM path reuses one
/// scratch buffer across partitions instead of allocating per call).
/// The caller zeroes the buffer; results are bit-identical on any pool.
pub fn sparse_mul_dense_into(y: &SparseMat, b: &Mat, out: &mut [f64]) {
    sparse_mul_dense_into_with_pool(WorkerPool::global(), y, b, out)
}

/// [`sparse_mul_dense_into`] on an explicit pool.
pub fn sparse_mul_dense_into_with_pool(pool: &WorkerPool, y: &SparseMat, b: &Mat, out: &mut [f64]) {
    let m = y.rows();
    let n = b.cols();
    assert_eq!(y.cols(), b.rows(), "mul_dense: inner dimensions differ");
    assert_eq!(out.len(), m * n, "mul_dense: output buffer is {} not {}", out.len(), m * n);
    let _span = obs::span_lazy("kernel", || format!("sparse_mul_dense {m}x{n} nnz={}", y.nnz()))
        .with_flops(2 * y.nnz() as u64 * n as u64);
    if m == 0 || n == 0 {
        return;
    }
    // Chunk count from the mean row cost, but chunk *boundaries* from the
    // cumulative nnz: equal-row splits serialize on skewed sparsity (one
    // hot chunk holds most of the work), while the nnz-balanced split
    // keeps every task near the same flop count. Both are functions of
    // the matrix only, so any pool produces identical bits.
    let mean_nnz = y.nnz() / m.max(1);
    let chunks = chunk_count(m, 2 * n * mean_nnz.max(1));
    if chunks == 1 {
        sparse_rows_mul(y, b, 0, m, out);
        return;
    }
    let ranges = nnz_ranges(y, chunks);
    let mut slices: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(chunks);
    let mut rest = out;
    for &(start, end) in &ranges {
        let (head, tail) = rest.split_at_mut((end - start) * n);
        slices.push((start, end, head));
        rest = tail;
    }
    pool.run(
        slices
            .into_iter()
            .map(|(start, end, slice)| move || sparse_rows_mul(y, b, start, end, slice))
            .collect(),
    );
}

/// Computes output rows `[start, end)` of `Y·B` into `out`. Non-zeros are
/// consumed in quads, then a pair, then a single, with fused updates
/// ([`vector::axpy4`]/[`vector::axpy2`]) — bit-identical to sequential
/// axpys, a quarter of the passes over the output row. The next quad's
/// `B` rows are prefetched while the current one computes: the row
/// gathers are data-dependent, so without the hint every quad starts on
/// a cold DRAM access.
fn sparse_rows_mul(y: &SparseMat, b: &Mat, start: usize, end: usize, out: &mut [f64]) {
    let n = b.cols();
    for r in start..end {
        let row = y.row(r);
        let o = &mut out[(r - start) * n..(r - start + 1) * n];
        let nnz = row.indices.len();
        let mut t = 0;
        while t + 4 <= nnz {
            for &c in row.indices[t + 4..nnz.min(t + 8)].iter() {
                prefetch_row(b, c as usize);
            }
            vector::axpy4(
                row.values[t],
                b.row(row.indices[t] as usize),
                row.values[t + 1],
                b.row(row.indices[t + 1] as usize),
                row.values[t + 2],
                b.row(row.indices[t + 2] as usize),
                row.values[t + 3],
                b.row(row.indices[t + 3] as usize),
                o,
            );
            t += 4;
        }
        if t + 2 <= nnz {
            let (c0, c1) = (row.indices[t] as usize, row.indices[t + 1] as usize);
            vector::axpy2(row.values[t], b.row(c0), row.values[t + 1], b.row(c1), o);
            t += 2;
        }
        if t < nnz {
            vector::axpy(row.values[t], b.row(row.indices[t] as usize), o);
        }
    }
}

// ---------------------------------------------------------------------------
// syrk_tn: C = Xᵀ·X — the XtX Gram accumulation of the batched EM path
// ---------------------------------------------------------------------------

/// `XᵀX` on the process-global pool. Only the upper triangle is
/// accumulated; the lower triangle is mirrored once at the end.
pub fn syrk_tn(x: &Mat) -> Mat {
    syrk_tn_with_pool(WorkerPool::global(), x)
}

/// `XᵀX` on an explicit pool.
///
/// Parallelism is over *output* rows: each task scans every row of `X` but
/// writes only its own disjoint band of the upper triangle, so there is no
/// partial-buffer reduction and every output element accumulates its
/// `x_r[i]·x_r[j]` terms in ascending-`r` order — the exact operation
/// sequence of the row-at-a-time EM reference (which axpys row `i` of the
/// Gram whenever `x_r[i] != 0`). The mirror step is exact too: f64
/// multiplication commutes bit-for-bit, so `C[j][i] = C[i][j]` reproduces
/// the lower-triangle accumulation of the reference (accumulators starting
/// at +0.0 can never become -0.0, so the reference's zero-skip asymmetry
/// cannot change bits either). Results are therefore bit-identical to the
/// reference on any pool size.
pub fn syrk_tn_with_pool(pool: &WorkerPool, x: &Mat) -> Mat {
    let (n, d) = (x.rows(), x.cols());
    let _span = obs::span_lazy("kernel", || format!("syrk_tn {n}x{d}"))
        .with_flops(n as u64 * d as u64 * (d as u64 + 1));
    let mut out = Mat::zeros(d, d);
    if n == 0 || d == 0 {
        return out;
    }
    // Mean flops per output row of the triangle: n·(d+1).
    let chunks = chunk_count(d, n * (d + 1));
    if chunks == 1 {
        syrk_tn_band(x, 0, d, out.data_mut());
    } else {
        let ranges = row_ranges(d, chunks);
        let mut slices: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(chunks);
        let mut rest = out.data_mut();
        for &(start, end) in &ranges {
            let (head, tail) = rest.split_at_mut((end - start) * d);
            slices.push((start, end, head));
            rest = tail;
        }
        pool.run(
            slices
                .into_iter()
                .map(|(start, end, slice)| move || syrk_tn_band(x, start, end, slice))
                .collect(),
        );
    }
    for i in 0..d {
        for j in 0..i {
            out[(i, j)] = out[(j, i)];
        }
    }
    out
}

/// Accumulates upper-triangle output rows `[lo, hi)` of `XᵀX` into `out`
/// (`(hi-lo)×d` row-major; entries left of the diagonal stay zero).
fn syrk_tn_band(x: &Mat, lo: usize, hi: usize, out: &mut [f64]) {
    let d = x.cols();
    for r in 0..x.rows() {
        let row = x.row(r);
        for i in lo..hi {
            let xi = row[i];
            if xi != 0.0 {
                let base = (i - lo) * d;
                vector::axpy(xi, &row[i..], &mut out[base + i..base + d]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// spmm_tn: C = Yᵀ·X for CSR Y — the YtX scatter of the batched EM path
// ---------------------------------------------------------------------------

/// `YᵀX` (`D×d` dense) for CSR `Y` on the process-global pool.
pub fn spmm_tn(y: &SparseMat, x: &Mat) -> Mat {
    spmm_tn_with_pool(WorkerPool::global(), y, x)
}

/// `YᵀX` on an explicit pool.
///
/// Same output-row parallelism as [`syrk_tn_with_pool`]: each task scans
/// every non-zero of `Y` but scatters only into its own disjoint band of
/// output rows, so every output row accumulates one axpy per contributing
/// non-zero in ascending input-row order — bit-identical to the
/// row-at-a-time reference on any pool size.
pub fn spmm_tn_with_pool(pool: &WorkerPool, y: &SparseMat, x: &Mat) -> Mat {
    assert_eq!(y.rows(), x.rows(), "spmm_tn: row counts differ ({} vs {})", y.rows(), x.rows());
    let mut out = Mat::zeros(y.cols(), x.cols());
    spmm_scatter(pool, y, x, None, out.data_mut());
    out
}

/// Packed `YᵀX`: like [`spmm_tn`], but output row `map[c]` accumulates
/// column `c` of `Y`, into a caller-provided `out_rows × x.cols()` slab
/// (zeroed by the caller). `map` must cover every column with a non-zero;
/// untouched columns may map anywhere (they contribute nothing). This is
/// the hash-free inner loop of the batched `YtxPartial`: the slab holds
/// only the columns a partition touches.
pub fn spmm_tn_packed(y: &SparseMat, x: &Mat, map: &[u32], out: &mut [f64]) {
    spmm_tn_packed_with_pool(WorkerPool::global(), y, x, map, out)
}

/// [`spmm_tn_packed`] on an explicit pool.
pub fn spmm_tn_packed_with_pool(
    pool: &WorkerPool,
    y: &SparseMat,
    x: &Mat,
    map: &[u32],
    out: &mut [f64],
) {
    assert_eq!(y.rows(), x.rows(), "spmm_tn: row counts differ ({} vs {})", y.rows(), x.rows());
    assert_eq!(map.len(), y.cols(), "spmm_tn: column map covers every Y column");
    spmm_scatter(pool, y, x, Some(map), out)
}

/// Shared scatter driver: `out` has `out.len()/x.cols()` rows; column `c`
/// of `Y` lands in row `map[c]` (or `c` when no map is given).
fn spmm_scatter(pool: &WorkerPool, y: &SparseMat, x: &Mat, map: Option<&[u32]>, out: &mut [f64]) {
    let d = x.cols();
    if d == 0 {
        return;
    }
    assert_eq!(out.len() % d, 0, "spmm_tn: output is a whole number of rows");
    let out_rows = out.len() / d;
    let _span = obs::span_lazy("kernel", || {
        format!("spmm_tn {}x{out_rows}x{d} nnz={}", y.rows(), y.nnz())
    })
    .with_flops(2 * y.nnz() as u64 * d as u64);
    if out_rows == 0 || y.nnz() == 0 {
        return;
    }
    // The per-nnz axpys land on effectively random output rows, so a wide
    // output turns the scatter memory-bound. Band the output small enough
    // to stay cache-resident — a function of the output shape only, so
    // (like `chunk_count`) banding never affects results.
    let bands = out.len().div_ceil(SCATTER_BAND_ELEMS).clamp(1, MAX_SCATTER_BANDS.min(out_rows));
    if bands == 1 {
        spmm_scatter_band(y, x, map, 0, out_rows, out);
        return;
    }
    let band_rows = out_rows.div_ceil(bands);

    // Bucket the non-zeros by band in one stable counting pass: within a
    // band, entries keep the input scan order (ascending row, ascending
    // column), so every output element still accumulates its axpys in
    // exactly the row-at-a-time order — bit-identical on any pool size.
    let mut starts = vec![0usize; bands + 1];
    let target = |c: u32| -> usize {
        match map {
            Some(m) => m[c as usize] as usize,
            None => c as usize,
        }
    };
    for &c in y.col_indices() {
        starts[target(c) / band_rows + 1] += 1;
    }
    for b in 0..bands {
        starts[b + 1] += starts[b];
    }
    // (output row, input row, value) per non-zero, 16 bytes.
    let mut entries: Vec<(u32, u32, f64)> = vec![(0, 0, 0.0); y.nnz()];
    let mut next = starts.clone();
    for r in 0..y.rows() {
        let row = y.row(r);
        for (&c, &v) in row.indices.iter().zip(row.values) {
            let t = target(c);
            let slot = &mut next[t / band_rows];
            entries[*slot] = (t as u32, r as u32, v);
            *slot += 1;
        }
    }

    let mut tasks: Vec<(usize, &[(u32, u32, f64)], &mut [f64])> = Vec::with_capacity(bands);
    let mut rest = out;
    for b in 0..bands {
        let lo = b * band_rows;
        let hi = ((b + 1) * band_rows).min(out_rows);
        let (head, tail) = rest.split_at_mut((hi - lo) * d);
        tasks.push((lo, &entries[starts[b]..starts[b + 1]], head));
        rest = tail;
    }
    pool.run(
        tasks
            .into_iter()
            .map(|(lo, band_entries, slice)| {
                move || {
                    for &(t, r, v) in band_entries {
                        let base = (t as usize - lo) * d;
                        vector::axpy(v, x.row(r as usize), &mut slice[base..base + d]);
                    }
                }
            })
            .collect(),
    );
}

/// Scatters non-zeros whose (mapped) output row falls in `[lo, hi)` into
/// `out` (`(hi-lo)×d`), in ascending input-row order.
fn spmm_scatter_band(
    y: &SparseMat,
    x: &Mat,
    map: Option<&[u32]>,
    lo: usize,
    hi: usize,
    out: &mut [f64],
) {
    let d = x.cols();
    for r in 0..y.rows() {
        let row = y.row(r);
        if row.indices.is_empty() {
            continue;
        }
        let xr = x.row(r);
        for (&c, &v) in row.indices.iter().zip(row.values) {
            let t = match map {
                Some(m) => m[c as usize] as usize,
                None => c as usize,
            };
            if t >= lo && t < hi {
                vector::axpy(v, xr, &mut out[(t - lo) * d..(t - lo + 1) * d]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Seed-naive reference kernels
// ---------------------------------------------------------------------------

/// The seed's original row-axpy / dot-per-element kernels, preserved
/// verbatim (including scalar, non-unrolled inner loops). The equivalence
/// tests pin the blocked kernels to these, and the benchmark harness
/// reports speedups against them.
pub mod naive {
    use crate::dense::Mat;
    use crate::sparse::SparseMat;

    fn scalar_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn scalar_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Seed `Mat::matmul`: i-k-j row-axpy loop.
    pub fn matmul(a: &Mat, b: &Mat) -> Mat {
        assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions differ");
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                scalar_axpy(a_ik, b.row(k), out_row);
            }
        }
        out
    }

    /// Seed `Mat::matmul_tn`: sum of row-wise rank-1 updates.
    pub fn matmul_tn(a: &Mat, b: &Mat) -> Mat {
        assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts differ");
        let mut out = Mat::zeros(a.cols(), b.cols());
        for r in 0..a.rows() {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for (i, &a_ri) in a_row.iter().enumerate() {
                if a_ri == 0.0 {
                    continue;
                }
                scalar_axpy(a_ri, b_row, out.row_mut(i));
            }
        }
        out
    }

    /// Seed `Mat::matmul_nt`: dot product per output element.
    pub fn matmul_nt(a: &Mat, b: &Mat) -> Mat {
        assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts differ");
        let mut out = Mat::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            for j in 0..b.rows() {
                out[(i, j)] = scalar_dot(a_row, b.row(j));
            }
        }
        out
    }

    /// Seed `Mat::matvec`: dot product per row.
    pub fn matvec(a: &Mat, x: &[f64]) -> Vec<f64> {
        assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
        (0..a.rows()).map(|i| scalar_dot(a.row(i), x)).collect()
    }

    /// Seed `SparseMat::mul_dense`: axpy per non-zero.
    pub fn sparse_mul_dense(y: &SparseMat, b: &Mat) -> Mat {
        assert_eq!(y.cols(), b.rows(), "mul_dense: inner dimensions differ");
        let mut out = Mat::zeros(y.rows(), b.cols());
        for r in 0..y.rows() {
            let row = y.row(r);
            let out_row = out.row_mut(r);
            for (&c, &v) in row.indices.iter().zip(row.values) {
                scalar_axpy(v, b.row(c as usize), out_row);
            }
        }
        out
    }

    /// Seed `Mat::transpose`: element-wise, column-strided writes.
    pub fn transpose(a: &Mat) -> Mat {
        let mut t = Mat::zeros(a.cols(), a.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                t[(j, i)] = a[(i, j)];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn chunking_is_a_function_of_shape_only() {
        assert_eq!(chunk_count(10, 10), 1, "tiny products stay sequential");
        let big = chunk_count(100_000, 2_000);
        assert!(big > 1 && big <= MAX_CHUNKS);
        let ranges = row_ranges(10, 3);
        assert_eq!(ranges, vec![(0, 4), (4, 7), (7, 10)]);
    }

    #[test]
    fn large_matmul_tn_matches_naive() {
        let mut rng = Prng::seed_from_u64(42);
        // Big enough to cross the parallel threshold and exercise chunked
        // reduction.
        let a = rng.normal_mat(700, 60);
        let b = rng.normal_mat(700, 40);
        let fast = matmul_tn(&a, &b);
        let reference = naive::matmul_tn(&a, &b);
        assert!(fast.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn syrk_tn_is_bitwise_naive_gram_on_any_pool() {
        let mut rng = Prng::seed_from_u64(11);
        for &(n, d) in &[(1usize, 1usize), (37, 5), (900, 48)] {
            let x = rng.normal_mat(n, d);
            let reference = naive::matmul_tn(&x, &x);
            let serial = WorkerPool::new(1);
            let wide = WorkerPool::new(7);
            for pool in [&serial, &wide, WorkerPool::global()] {
                let got = syrk_tn_with_pool(pool, &x);
                assert_eq!(got.max_abs_diff(&reference), 0.0, "syrk {n}x{d} reassociated");
            }
        }
    }

    #[test]
    fn spmm_tn_is_bitwise_naive_on_any_pool() {
        let mut rng = Prng::seed_from_u64(12);
        for &(n, dd, d) in &[(40usize, 9usize, 3usize), (600, 800, 24)] {
            let mut triplets = Vec::new();
            for _ in 0..(n * dd / 20).max(4) {
                triplets.push((rng.index(n), rng.index(dd) as u32, rng.normal()));
            }
            let y = SparseMat::from_triplets(n, dd, &triplets);
            let x = rng.normal_mat(n, d);
            // naive::matmul_tn on the densified Y accumulates each output
            // element in ascending input-row order, skipping zero entries —
            // the identical op sequence, so equality is exact.
            let reference = naive::matmul_tn(&y.to_dense(), &x);
            let serial = WorkerPool::new(1);
            let wide = WorkerPool::new(5);
            for pool in [&serial, &wide, WorkerPool::global()] {
                let got = spmm_tn_with_pool(pool, &y, &x);
                assert_eq!(got.max_abs_diff(&reference), 0.0, "spmm {n}x{dd}x{d} reassociated");
            }
        }
    }

    #[test]
    fn spmm_tn_packed_matches_full_scatter() {
        let mut rng = Prng::seed_from_u64(13);
        let (n, dd, d) = (120usize, 300usize, 8usize);
        let mut triplets = Vec::new();
        for _ in 0..700 {
            triplets.push((rng.index(n), rng.index(dd) as u32, rng.normal()));
        }
        let y = SparseMat::from_triplets(n, dd, &triplets);
        let x = rng.normal_mat(n, d);
        let full = spmm_tn(&y, &x);
        // Column-support map: touched columns get consecutive slab rows.
        let mut map = vec![u32::MAX; dd];
        let mut support = Vec::new();
        for &c in y.col_indices() {
            if map[c as usize] == u32::MAX {
                map[c as usize] = 0;
            }
        }
        for (c, slot) in map.iter_mut().enumerate() {
            if *slot == 0 {
                *slot = support.len() as u32;
                support.push(c as u32);
            }
        }
        let mut slab = vec![0.0; support.len() * d];
        spmm_tn_packed(&y, &x, &map, &mut slab);
        for (i, &c) in support.iter().enumerate() {
            assert_eq!(&slab[i * d..(i + 1) * d], full.row(c as usize), "packed row {c}");
        }
        // Untouched columns of the full product stay zero.
        for c in 0..dd {
            if map[c] == u32::MAX {
                assert!(full.row(c).iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn nnz_ranges_balance_skewed_rows() {
        // Row 0 holds almost all the non-zeros; an equal-row split would
        // put ~all work in chunk 0.
        let mut entries = vec![Vec::new(); 100];
        entries[0] = (0..900u32).map(|c| (c, 1.0)).collect();
        for (r, row) in entries.iter_mut().enumerate().skip(1) {
            row.push((r as u32, 1.0));
        }
        let y = SparseMat::from_rows(100, 1000, entries);
        let ranges = nnz_ranges(&y, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges[3].1, 100);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges tile the rows");
        }
        // The hot row is alone in its chunk: everything else spreads out.
        assert_eq!(ranges[0], (0, 1), "hot row isolated: {ranges:?}");
        // Uniform matrices still split near-equally by rows.
        let uniform = SparseMat::from_rows(
            12,
            4,
            (0..12).map(|_| vec![(0u32, 1.0), (2, 1.0)]).collect(),
        );
        assert_eq!(nnz_ranges(&uniform, 3), vec![(0, 4), (4, 8), (8, 12)]);
    }

    #[test]
    fn sparse_mul_dense_is_bitwise_naive_on_any_pool() {
        // Skewed sparsity exercises the nnz-balanced split; every output
        // row is computed by one task in scan order, so all pools (and
        // the naive reference) agree bitwise.
        let mut rng = Prng::seed_from_u64(15);
        let (n, dd, d) = (600usize, 500usize, 24usize);
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (r, row) in entries.iter_mut().enumerate() {
            // Power-law-ish: early rows are much denser.
            let nnz = (400 / (r + 1)).max(2);
            let mut cols: Vec<u32> = (0..nnz).map(|_| rng.index(dd) as u32).collect();
            cols.sort_unstable();
            cols.dedup();
            *row = cols.into_iter().map(|c| (c, rng.normal())).collect();
        }
        let y = SparseMat::from_rows(n, dd, entries);
        let b = rng.normal_mat(dd, d);
        let reference = naive::sparse_mul_dense(&y, &b);
        let serial = WorkerPool::new(1);
        let two = WorkerPool::new(2);
        let wide = WorkerPool::new(8);
        for pool in [&serial, &two, &wide, WorkerPool::global()] {
            let got = sparse_mul_dense_with_pool(pool, &y, &b);
            assert_eq!(got.max_abs_diff(&reference), 0.0, "sparse_mul_dense reassociated");
        }
    }

    #[test]
    fn sparse_mul_dense_into_reuses_buffer_exactly() {
        let mut rng = Prng::seed_from_u64(14);
        let (n, dd, d) = (50usize, 40usize, 6usize);
        let mut triplets = Vec::new();
        for _ in 0..200 {
            triplets.push((rng.index(n), rng.index(dd) as u32, rng.normal()));
        }
        let y = SparseMat::from_triplets(n, dd, &triplets);
        let b = rng.normal_mat(dd, d);
        let fresh = sparse_mul_dense(&y, &b);
        let mut buf = vec![7.0; n * d]; // stale garbage the caller must clear
        buf.clear();
        buf.resize(n * d, 0.0);
        sparse_mul_dense_into(&y, &b, &mut buf);
        assert_eq!(buf, fresh.data());
    }

    #[test]
    fn remainder_rows_are_handled() {
        // 5 rows: one group of 4 plus a remainder row; 3 cols: nt remainder.
        let mut rng = Prng::seed_from_u64(7);
        let a = rng.normal_mat(5, 3);
        let b = rng.normal_mat(3, 5);
        assert!(matmul(&a, &b).approx_eq(&naive::matmul(&a, &b), 1e-13));
        let c = rng.normal_mat(5, 3);
        assert!(matmul_nt(&a, &c).approx_eq(&naive::matmul_nt(&a, &c), 1e-13));
    }
}
