//! CSR sparse matrix.
//!
//! The paper's large inputs (Tweets: 1.26B × 71.5K at ~10⁻⁴ density) only
//! fit anywhere because they are stored sparse, and the entire point of the
//! *mean propagation* optimization (Section 3.1) is to never destroy that
//! sparsity by mean-centering. This CSR type therefore has no in-place
//! mean-subtraction at all — centering is always expressed algebraically by
//! the callers (see `spca-core::mean_prop`).

use crate::dense::Mat;
use crate::vector;

/// Compressed-sparse-row matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMat {
    rows: usize,
    cols: usize,
    /// Row pointers: row `r` occupies `indptr[r]..indptr[r+1]` of the arrays.
    indptr: Vec<usize>,
    /// Column indices, strictly increasing within a row.
    indices: Vec<u32>,
    /// Non-zero values, parallel to `indices`.
    values: Vec<f64>,
}

/// Borrowed view of one sparse row.
#[derive(Debug, Clone, Copy)]
pub struct SparseRow<'a> {
    /// Column indices of the non-zeros, strictly increasing.
    pub indices: &'a [u32],
    /// Non-zero values, parallel to `indices`.
    pub values: &'a [f64],
}

impl SparseMat {
    /// Builds from per-row `(column, value)` lists. Entries within each row
    /// are sorted and zero values are dropped; duplicate columns in one row
    /// are summed.
    pub fn from_rows(rows: usize, cols: usize, mut entries: Vec<Vec<(u32, f64)>>) -> Self {
        assert_eq!(entries.len(), rows, "from_rows: expected {rows} row lists");
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut entries {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut last: Option<u32> = None;
            for &(c, v) in row.iter() {
                assert!((c as usize) < cols, "from_rows: column {c} out of bounds {cols}");
                if v == 0.0 {
                    continue;
                }
                if last == Some(c) {
                    *values.last_mut().expect("just pushed") += v;
                } else {
                    indices.push(c);
                    values.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        SparseMat { rows, cols, indptr, indices, values }
    }

    /// Builds from COO triplets `(row, col, value)`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, u32, f64)]) -> Self {
        let mut per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows, "from_triplets: row {r} out of bounds {rows}");
            per_row[r].push((c, v));
        }
        SparseMat::from_rows(rows, cols, per_row)
    }

    /// Converts a dense matrix, keeping entries with `|v| > 0`.
    pub fn from_dense(m: &Mat) -> Self {
        let per_row = (0..m.rows())
            .map(|r| {
                m.row(r)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(c, &v)| (c as u32, v))
                    .collect()
            })
            .collect();
        SparseMat::from_rows(m.rows(), m.cols(), per_row)
    }

    /// Crate-internal: assembles from already-validated CSR parts.
    ///
    /// Used by `wire` decode, which must reproduce the encoded matrix
    /// *bitwise* — routing through [`SparseMat::from_rows`] would drop
    /// `-0.0` values and re-sort, breaking round-trip fidelity.
    pub(crate) fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        SparseMat { rows, cols, indptr, indices, values }
    }

    /// CSR row pointers (`indptr[r]..indptr[r+1]` spans row `r`): the
    /// cumulative-nnz table the kernels' load-balanced splits binary
    /// search.
    #[inline]
    pub(crate) fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// All stored non-zero values in CSR order (row-major, ascending
    /// column within each row) — the wire codec's payload view.
    #[inline]
    pub(crate) fn values(&self) -> &[f64] {
        &self.values
    }

    /// A copy with `f` applied to every stored value — the precision
    /// ladder's input-rounding hook. The structure (`indptr`/`indices`)
    /// is cloned unchanged: values that map to `0.0` stay as explicit
    /// entries, so row shapes and the kernels' nnz-balanced splits are
    /// identical to the source matrix.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> SparseMat {
        SparseMat {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are non-zero.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// View of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> SparseRow<'_> {
        debug_assert!(r < self.rows);
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        SparseRow { indices: &self.indices[s..e], values: &self.values[s..e] }
    }

    /// In-memory footprint in bytes: 4-byte index + 8-byte value per
    /// non-zero, plus row pointers. This is what the cluster simulator
    /// charges when sparse data moves.
    pub fn size_bytes(&self) -> u64 {
        (self.nnz() * 12 + self.indptr.len() * 8) as u64
    }

    /// Product `self * B` with a dense matrix, iterating non-zeros only
    /// (pairwise-fused kernel, row-parallel on the worker pool when large).
    pub fn mul_dense(&self, b: &Mat) -> Mat {
        crate::kernels::sparse_mul_dense(self, b)
    }

    /// Column sums (Σ over rows of each column), touching non-zeros only.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.cols];
        for (&c, &v) in self.indices.iter().zip(&self.values) {
            s[c as usize] += v;
        }
        s
    }

    /// Column means — the `meanJob` of Algorithm 4.
    pub fn col_means(&self) -> Vec<f64> {
        let mut s = self.col_sums();
        if self.rows > 0 {
            vector::scale(1.0 / self.rows as f64, &mut s);
        }
        s
    }

    /// Squared Frobenius norm of the *stored* matrix (no centering).
    pub fn frobenius_sq(&self) -> f64 {
        vector::norm2_sq(&self.values)
    }

    /// Sum of absolute values of stored entries.
    pub fn norm1(&self) -> f64 {
        vector::norm1(&self.values)
    }

    /// Densifies. Only sensible for test-sized matrices.
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (&c, &v) in row.indices.iter().zip(row.values) {
                m[(r, c as usize)] = v;
            }
        }
        m
    }

    /// Copies rows `[start, end)` into a fresh sparse matrix. Used by the
    /// engines to partition the input across virtual nodes.
    pub fn row_block(&self, start: usize, end: usize) -> SparseMat {
        assert!(start <= end && end <= self.rows, "row_block: bad range {start}..{end}");
        let (s, e) = (self.indptr[start], self.indptr[end]);
        let mut indptr = Vec::with_capacity(end - start + 1);
        for r in start..=end {
            indptr.push(self.indptr[r] - s);
        }
        SparseMat {
            rows: end - start,
            cols: self.cols,
            indptr,
            indices: self.indices[s..e].to_vec(),
            values: self.values[s..e].to_vec(),
        }
    }

    /// Copies the selected rows into a fresh sparse matrix (sampling).
    ///
    /// Source rows are already sorted, deduped CSR, so the arrays are built
    /// directly (as [`Self::row_block`] does) instead of round-tripping
    /// through the sorting/deduping [`Self::from_rows`] path.
    pub fn select_rows(&self, idx: &[usize]) -> SparseMat {
        let nnz: usize = idx.iter().map(|&r| self.indptr[r + 1] - self.indptr[r]).sum();
        let mut indptr = Vec::with_capacity(idx.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for &r in idx {
            assert!(r < self.rows, "select_rows: row {r} out of bounds {}", self.rows);
            let (s, e) = (self.indptr[r], self.indptr[r + 1]);
            indices.extend_from_slice(&self.indices[s..e]);
            values.extend_from_slice(&self.values[s..e]);
            indptr.push(indices.len());
        }
        SparseMat { rows: idx.len(), cols: self.cols, indptr, indices, values }
    }

    /// Assembles a fresh CSR matrix from borrowed row views (each already
    /// sorted and deduped, e.g. [`SparseRow`]s handed out by another
    /// `SparseMat` or stored per-row by an engine partition). A straight
    /// O(nnz) copy — this is how the engines turn a partition slice into a
    /// block for the batched EM kernels without re-sorting anything.
    pub fn from_row_views(cols: usize, rows: &[SparseRow<'_>]) -> SparseMat {
        let nnz: usize = rows.iter().map(|r| r.indices.len()).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for r in rows {
            debug_assert_eq!(r.indices.len(), r.values.len());
            debug_assert!(r.indices.windows(2).all(|w| w[0] < w[1]), "rows must be sorted CSR");
            debug_assert!(r.indices.last().map_or(true, |&c| (c as usize) < cols));
            indices.extend_from_slice(r.indices);
            values.extend_from_slice(r.values);
            indptr.push(indices.len());
        }
        SparseMat { rows: rows.len(), cols, indptr, indices, values }
    }

    /// Flat column-index array of every stored non-zero (CSR order). The
    /// batched EM accumulator uses this to build its column-support table
    /// in one pass.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.indices
    }

    /// Splits into `parts` contiguous row blocks of near-equal size.
    pub fn split_rows(&self, parts: usize) -> Vec<SparseMat> {
        assert!(parts > 0, "split_rows: need at least one part");
        let mut out = Vec::with_capacity(parts);
        let base = self.rows / parts;
        let extra = self.rows % parts;
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            out.push(self.row_block(start, start + len));
            start += len;
        }
        out
    }
}

impl SparseRow<'_> {
    /// Number of non-zeros in the row.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterator over `(column, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().zip(self.values).map(|(&c, &v)| (c as usize, v))
    }

    /// Dot product with a dense vector of the full column dimension.
    pub fn dot_dense(&self, x: &[f64]) -> f64 {
        self.iter().map(|(c, v)| v * x[c]).sum()
    }

    /// Sparse-row × dense-matrix product: `out = row * B` where `B` is the
    /// broadcast in-memory matrix of Section 3.3. `out` must be zeroed by
    /// the caller (or the result is accumulated).
    pub fn mul_mat_into(&self, b: &Mat, out: &mut [f64]) {
        assert_eq!(out.len(), b.cols(), "mul_mat_into: output length mismatch");
        for (c, v) in self.iter() {
            vector::axpy(v, b.row(c), out);
        }
    }

    /// Convenience wrapper allocating the output of [`Self::mul_mat_into`].
    pub fn mul_mat(&self, b: &Mat) -> Vec<f64> {
        let mut out = vec![0.0; b.cols()];
        self.mul_mat_into(b, &mut out);
        out
    }

    /// Squared Euclidean norm of the row.
    pub fn norm2_sq(&self) -> f64 {
        vector::norm2_sq(self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMat {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 4 ]
        SparseMat::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)])
    }

    #[test]
    fn construction_sorts_and_drops_zeros() {
        let m = SparseMat::from_rows(1, 4, vec![vec![(3, 1.0), (1, 2.0), (2, 0.0)]]);
        assert_eq!(m.nnz(), 2);
        let r = m.row(0);
        assert_eq!(r.indices, &[1, 3]);
        assert_eq!(r.values, &[2.0, 1.0]);
    }

    #[test]
    fn duplicate_columns_are_summed() {
        let m = SparseMat::from_rows(1, 3, vec![vec![(1, 2.0), (1, 3.0)]]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).values, &[5.0]);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let back = SparseMat::from_dense(&d);
        assert_eq!(m, back);
    }

    #[test]
    fn mul_dense_matches_dense_product() {
        let m = sample();
        let b = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, 0.0]]);
        let sparse_product = m.mul_dense(&b);
        let dense_product = m.to_dense().matmul(&b);
        assert!(sparse_product.approx_eq(&dense_product, 1e-12));
    }

    #[test]
    fn col_means_touch_nonzeros_only() {
        let m = sample();
        assert_eq!(m.col_means(), vec![1.0 / 3.0, 1.0, 2.0]);
    }

    #[test]
    fn frobenius_of_stored_values() {
        assert_eq!(sample().frobenius_sq(), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn row_block_preserves_content() {
        let m = sample();
        let b = m.row_block(1, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0).nnz(), 0);
        assert_eq!(b.row(1).indices, &[1, 2]);
    }

    #[test]
    fn split_rows_partitions_everything() {
        let m = sample();
        let parts = m.split_rows(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(SparseMat::rows).sum::<usize>(), 3);
        assert_eq!(parts.iter().map(SparseMat::nnz).sum::<usize>(), m.nnz());
        let rejoined = Mat::vcat(&parts.iter().map(SparseMat::to_dense).collect::<Vec<_>>());
        assert!(rejoined.approx_eq(&m.to_dense(), 0.0));
    }

    #[test]
    fn select_rows_copies_requested() {
        let m = sample();
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0).indices, &[1, 2]);
        assert_eq!(s.row(2).indices, &[0, 2]);
    }

    #[test]
    fn from_row_views_preserves_rows() {
        let m = sample();
        let views: Vec<SparseRow> = (0..m.rows()).map(|r| m.row(r)).collect();
        let rebuilt = SparseMat::from_row_views(m.cols(), &views);
        assert_eq!(m, rebuilt);
        let partial = SparseMat::from_row_views(m.cols(), &views[1..]);
        assert_eq!(partial, m.row_block(1, 3));
        assert_eq!(SparseMat::from_row_views(4, &[]).rows(), 0);
    }

    #[test]
    fn sparse_row_products() {
        let m = sample();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let r = m.row(2);
        assert_eq!(r.mul_mat(&b), vec![4.0, 7.0]);
        assert_eq!(r.dot_dense(&[1.0, 1.0, 1.0]), 7.0);
        assert_eq!(r.norm2_sq(), 25.0);
    }

    #[test]
    fn density_and_sizes() {
        let m = sample();
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.size_bytes(), (4 * 12 + 4 * 8) as u64);
    }

    #[test]
    fn empty_matrix_is_sane() {
        let m = SparseMat::from_rows(0, 5, vec![]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_means(), vec![0.0; 5]);
        assert_eq!(m.density(), 0.0);
    }
}
