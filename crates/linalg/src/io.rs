//! Plain-text matrix serialization.
//!
//! A small, self-describing coordinate format (in the spirit of Matrix
//! Market, but versioned and minimal) so datasets and projections can move
//! between the CLI, the examples, and external tools:
//!
//! ```text
//! spca-sparse 3 4 2      # header: kind rows cols nnz
//! 0 1 2.5                # row col value
//! 2 3 -1.0
//! ```
//!
//! Dense matrices use `spca-dense rows cols` followed by one
//! whitespace-separated row per line.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::dense::Mat;
use crate::sparse::SparseMat;

/// Parse failure while reading a matrix file.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatError {
    /// 1-based line where the problem was found (0 = missing content).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

/// Errors from reading: I/O or format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The content did not parse.
    Format(FormatError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<FormatError> for ReadError {
    fn from(e: FormatError) -> Self {
        ReadError::Format(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> ReadError {
    ReadError::Format(FormatError { line, message: message.into() })
}

/// Writes a sparse matrix in coordinate format.
pub fn write_sparse(w: &mut impl Write, m: &SparseMat) -> io::Result<()> {
    writeln!(w, "spca-sparse {} {} {}", m.rows(), m.cols(), m.nnz())?;
    for r in 0..m.rows() {
        for (c, v) in m.row(r).iter() {
            writeln!(w, "{r} {c} {v:e}")?;
        }
    }
    Ok(())
}

/// Reads a sparse matrix in coordinate format.
pub fn read_sparse(r: &mut impl BufRead) -> Result<SparseMat, ReadError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    let header = header?;
    let mut it = header.split_whitespace();
    if it.next() != Some("spca-sparse") {
        return Err(err(1, "expected 'spca-sparse' header"));
    }
    let parse = |line: usize, tok: Option<&str>, what: &str| -> Result<usize, ReadError> {
        tok.ok_or_else(|| err(line, format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|e| err(line, format!("bad {what}: {e}")))
    };
    let rows = parse(1, it.next(), "row count")?;
    let cols = parse(1, it.next(), "column count")?;
    let nnz = parse(1, it.next(), "nnz count")?;

    let mut triplets = Vec::with_capacity(nnz);
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let r = parse(lineno, it.next(), "row index")?;
        let c = parse(lineno, it.next(), "column index")?;
        let v: f64 = it
            .next()
            .ok_or_else(|| err(lineno, "missing value"))?
            .parse()
            .map_err(|e| err(lineno, format!("bad value: {e}")))?;
        if r >= rows || c >= cols {
            return Err(err(lineno, format!("entry ({r},{c}) out of {rows}x{cols}")));
        }
        triplets.push((r, c as u32, v));
    }
    if triplets.len() != nnz {
        return Err(err(0, format!("header promised {nnz} entries, found {}", triplets.len())));
    }
    Ok(SparseMat::from_triplets(rows, cols, &triplets))
}

/// Writes a dense matrix, one row per line.
pub fn write_dense(w: &mut impl Write, m: &Mat) -> io::Result<()> {
    writeln!(w, "spca-dense {} {}", m.rows(), m.cols())?;
    for r in 0..m.rows() {
        let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:e}")).collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Reads a dense matrix written by [`write_dense`].
pub fn read_dense(r: &mut impl BufRead) -> Result<Mat, ReadError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    let header = header?;
    let mut it = header.split_whitespace();
    if it.next() != Some("spca-dense") {
        return Err(err(1, "expected 'spca-dense' header"));
    }
    let rows: usize = it
        .next()
        .ok_or_else(|| err(1, "missing row count"))?
        .parse()
        .map_err(|e| err(1, format!("bad row count: {e}")))?;
    let cols: usize = it
        .next()
        .ok_or_else(|| err(1, "missing column count"))?
        .parse()
        .map_err(|e| err(1, format!("bad column count: {e}")))?;

    let mut m = Mat::zeros(rows, cols);
    let mut filled = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if filled >= rows {
            return Err(err(lineno, "more rows than the header promised"));
        }
        let values: Result<Vec<f64>, ReadError> = line
            .split_whitespace()
            .map(|t| t.parse::<f64>().map_err(|e| err(lineno, format!("bad value: {e}"))))
            .collect();
        let values = values?;
        if values.len() != cols {
            return Err(err(lineno, format!("expected {cols} values, found {}", values.len())));
        }
        m.row_mut(filled).copy_from_slice(&values);
        filled += 1;
    }
    if filled != rows {
        return Err(err(0, format!("header promised {rows} rows, found {filled}")));
    }
    Ok(m)
}

/// Saves a sparse matrix to a file.
pub fn save_sparse(path: impl AsRef<Path>, m: &SparseMat) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_sparse(&mut w, m)
}

/// Loads a sparse matrix from a file.
pub fn load_sparse(path: impl AsRef<Path>) -> Result<SparseMat, ReadError> {
    let mut r = BufReader::new(File::open(path)?);
    read_sparse(&mut r)
}

/// Saves a dense matrix to a file.
pub fn save_dense(path: impl AsRef<Path>, m: &Mat) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_dense(&mut w, m)
}

/// Loads a dense matrix from a file.
pub fn load_dense(path: impl AsRef<Path>) -> Result<Mat, ReadError> {
    let mut r = BufReader::new(File::open(path)?);
    read_dense(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn sparse_roundtrip() {
        let m = SparseMat::from_triplets(
            4,
            5,
            &[(0, 1, 2.5), (2, 4, -1.0), (3, 0, 1e-12), (3, 3, 7.25)],
        );
        let mut buf = Vec::new();
        write_sparse(&mut buf, &m).unwrap();
        let back = read_sparse(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn dense_roundtrip() {
        let mut rng = Prng::seed_from_u64(1);
        let m = rng.normal_mat(6, 3);
        let mut buf = Vec::new();
        write_dense(&mut buf, &m).unwrap();
        let back = read_dense(&mut buf.as_slice()).unwrap();
        assert!(m.approx_eq(&back, 0.0), "text f64 roundtrip must be exact via {{:e}}");
    }

    #[test]
    fn sparse_rejects_bad_headers_and_entries() {
        let cases: &[(&str, &str)] = &[
            ("", "empty"),
            ("not-a-header 1 2 3", "header"),
            ("spca-sparse 2 2", "nnz"),
            ("spca-sparse 2 2 1\n5 0 1.0", "out of"),
            ("spca-sparse 2 2 1\n0 0 abc", "bad value"),
            ("spca-sparse 2 2 2\n0 0 1.0", "promised 2"),
        ];
        for (text, needle) in cases {
            let e = read_sparse(&mut text.as_bytes()).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "input {text:?}: error {e} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn dense_rejects_ragged_rows() {
        let text = "spca-dense 2 3\n1 2 3\n4 5";
        let e = read_dense(&mut text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("expected 3 values"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped_in_sparse() {
        let text = "spca-sparse 2 2 1\n\n# a comment\n1 1 3.0\n";
        let m = read_sparse(&mut text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(1).values, &[3.0]);
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("spca-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.sm");
        let m = SparseMat::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        save_sparse(&path, &m).unwrap();
        let back = load_sparse(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }
}
