//! Abstract linear operators.
//!
//! Lanczos bidiagonalization (Section 2.2's SVD-Lanczos) only needs
//! matrix–vector products, so it is written against [`LinOp`]. Three
//! implementations matter here:
//!
//! * [`Mat`] — dense.
//! * [`SparseMat`] — sparse, products touch non-zeros only.
//! * [`CenteredSparse`] — the mean-centered view `Y - 1⊗mean` *without
//!   materializing it*: products propagate the mean algebraically, the same
//!   identity sPCA's mean propagation uses
//!   (`(Y - 1⊗m)·x = Y·x - (m·x)·1`).

use crate::dense::Mat;
use crate::sparse::SparseMat;
use crate::vector;

/// A real linear operator `A : R^cols → R^rows` exposing products with `A`
/// and `Aᵀ`.
pub trait LinOp {
    /// Output dimension of `apply`.
    fn rows(&self) -> usize;
    /// Input dimension of `apply`.
    fn cols(&self) -> usize;
    /// `out = A * x`. `x.len() == cols()`, `out.len() == rows()`.
    fn apply(&self, x: &[f64], out: &mut [f64]);
    /// `out = Aᵀ * x`. `x.len() == rows()`, `out.len() == cols()`.
    fn apply_t(&self, x: &[f64], out: &mut [f64]);
}

impl LinOp for Mat {
    fn rows(&self) -> usize {
        Mat::rows(self)
    }

    fn cols(&self) -> usize {
        Mat::cols(self)
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), Mat::cols(self));
        assert_eq!(out.len(), Mat::rows(self));
        for (i, o) in out.iter_mut().enumerate() {
            *o = vector::dot(self.row(i), x);
        }
    }

    fn apply_t(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), Mat::rows(self));
        assert_eq!(out.len(), Mat::cols(self));
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vector::axpy(xi, self.row(i), out);
            }
        }
    }
}

impl LinOp for SparseMat {
    fn rows(&self) -> usize {
        SparseMat::rows(self)
    }

    fn cols(&self) -> usize {
        SparseMat::cols(self)
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), SparseMat::cols(self));
        assert_eq!(out.len(), SparseMat::rows(self));
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).dot_dense(x);
        }
    }

    fn apply_t(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), SparseMat::rows(self));
        assert_eq!(out.len(), SparseMat::cols(self));
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                for (c, v) in self.row(i).iter() {
                    out[c] += xi * v;
                }
            }
        }
    }
}

/// Implicitly mean-centered sparse operator `Y - 1 ⊗ mean`.
#[derive(Debug, Clone)]
pub struct CenteredSparse<'a> {
    y: &'a SparseMat,
    mean: &'a [f64],
}

impl<'a> CenteredSparse<'a> {
    /// Wraps `y` with column means `mean` (`mean.len() == y.cols()`).
    pub fn new(y: &'a SparseMat, mean: &'a [f64]) -> Self {
        assert_eq!(mean.len(), y.cols(), "CenteredSparse: mean length mismatch");
        CenteredSparse { y, mean }
    }
}

impl LinOp for CenteredSparse<'_> {
    fn rows(&self) -> usize {
        self.y.rows()
    }

    fn cols(&self) -> usize {
        self.y.cols()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        // (Y - 1⊗m) x = Y x - (m·x) 1
        self.y.apply(x, out);
        let shift = vector::dot(self.mean, x);
        for o in out.iter_mut() {
            *o -= shift;
        }
    }

    fn apply_t(&self, x: &[f64], out: &mut [f64]) {
        // (Y - 1⊗m)ᵀ x = Yᵀ x - (Σ x) m
        self.y.apply_t(x, out);
        let total: f64 = x.iter().sum();
        vector::axpy(-total, self.mean, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (SparseMat, Vec<f64>) {
        let y = SparseMat::from_triplets(
            3,
            4,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 3, 5.0)],
        );
        let mean = y.col_means();
        (y, mean)
    }

    #[test]
    fn dense_and_sparse_ops_agree() {
        let (y, _) = sample();
        let d = y.to_dense();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        LinOp::apply(&y, &x, &mut a);
        LinOp::apply(&d, &x, &mut b);
        assert_eq!(a, b);

        let xt = vec![1.0, 2.0, -1.0];
        let mut at = vec![0.0; 4];
        let mut bt = vec![0.0; 4];
        y.apply_t(&xt, &mut at);
        d.apply_t(&xt, &mut bt);
        for (p, q) in at.iter().zip(&bt) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn centered_operator_matches_explicit_centering() {
        let (y, mean) = sample();
        let mut dense = y.to_dense();
        dense.sub_row_vector(&mean);
        let op = CenteredSparse::new(&y, &mean);

        let x = vec![0.5, 1.0, -1.0, 2.0];
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        op.apply(&x, &mut a);
        LinOp::apply(&dense, &x, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-12);
        }

        let xt = vec![1.0, -1.0, 0.25];
        let mut at = vec![0.0; 4];
        let mut bt = vec![0.0; 4];
        op.apply_t(&xt, &mut at);
        dense.apply_t(&xt, &mut bt);
        for (p, q) in at.iter().zip(&bt) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_adjoint_identity_holds() {
        // <A x, y> == <x, Aᵀ y> for the centered operator.
        let (y, mean) = sample();
        let op = CenteredSparse::new(&y, &mean);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let yv = vec![-1.0, 0.5, 2.0];
        let mut ax = vec![0.0; 3];
        op.apply(&x, &mut ax);
        let mut aty = vec![0.0; 4];
        op.apply_t(&yv, &mut aty);
        let lhs = vector::dot(&ax, &yv);
        let rhs = vector::dot(&x, &aty);
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
