//! Reference norm computations.
//!
//! These are the *oracle* implementations: straightforward, dense, and
//! obviously correct. The optimized sparse equivalents (the paper's
//! Algorithms 2 and 3) live in `spca-core::frobenius` and are tested against
//! these.

use crate::dense::Mat;
use crate::sparse::SparseMat;

/// Squared Frobenius norm of the mean-centered matrix `Y - 1⊗mean`,
/// computed by materializing every centered entry. O(N·D) time regardless
/// of sparsity — exactly the cost profile mean propagation avoids.
pub fn centered_frobenius_sq_dense(y: &Mat, mean: &[f64]) -> f64 {
    assert_eq!(mean.len(), y.cols(), "mean length must equal column count");
    let mut sum = 0.0;
    for r in 0..y.rows() {
        for (v, m) in y.row(r).iter().zip(mean) {
            let c = v - m;
            sum += c * c;
        }
    }
    sum
}

/// Same as [`centered_frobenius_sq_dense`] but reading from a sparse matrix
/// by densifying one row at a time — the paper's Algorithm 2
/// ("Frobenius-simple"). Kept here as a second oracle and as the
/// unoptimized arm of the Table 3 ablation.
pub fn centered_frobenius_sq_simple(y: &SparseMat, mean: &[f64]) -> f64 {
    assert_eq!(mean.len(), y.cols(), "mean length must equal column count");
    let mut sum = 0.0;
    let mut dense_row = vec![0.0; y.cols()];
    for r in 0..y.rows() {
        dense_row.iter_mut().zip(mean).for_each(|(d, m)| *d = -m);
        for (c, v) in y.row(r).iter() {
            dense_row[c] += v;
        }
        sum += dense_row.iter().map(|v| v * v).sum::<f64>();
    }
    sum
}

/// 1-norm (sum of absolute entries) of the dense difference `a - b`,
/// used by the reconstruction-error metric.
pub fn diff_norm1(a: &Mat, b: &Mat) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "diff_norm1: shape mismatch");
    a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_simple_oracles_agree() {
        let y = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[0.0, 3.0, 4.0]]);
        let ys = SparseMat::from_dense(&y);
        let mean = ys.col_means();
        let a = centered_frobenius_sq_dense(&y, &mean);
        let b = centered_frobenius_sq_simple(&ys, &mean);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn centered_norm_of_constant_matrix_is_zero() {
        let y = Mat::from_fn(4, 3, |_, _| 5.0);
        let mean = vec![5.0; 3];
        assert!(centered_frobenius_sq_dense(&y, &mean) < 1e-20);
    }

    #[test]
    fn zero_mean_reduces_to_plain_frobenius() {
        let y = Mat::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let f = centered_frobenius_sq_dense(&y, &[0.0, 0.0]);
        assert!((f - y.frobenius_sq()).abs() < 1e-12);
    }

    #[test]
    fn diff_norm1_hand_check() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[0.0, 4.0]]);
        assert_eq!(diff_norm1(&a, &b), 3.0);
    }
}
