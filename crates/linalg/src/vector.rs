//! Dense vector kernels on `&[f64]` slices.
//!
//! Vectors are plain slices/`Vec<f64>` rather than a newtype: the hot paths
//! of the engines hand rows of [`crate::Mat`] and partition buffers around,
//! and a zero-cost view type would add friction without catching any bug the
//! length asserts here don't.
//!
//! The inner loops are unrolled 4-wide: `dot` keeps four independent
//! accumulators (breaking the add-latency chain so the FMA units stay fed),
//! `axpy` updates four lanes per iteration, and the `axpy2`/`axpy4` fused
//! variants apply several rank-1 updates in a single pass over `y` — the
//! primitive the blocked kernels in [`crate::kernels`] are built from.

/// Dot product `a · b`. Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let (a4, a_tail) = a.split_at(a.len() & !3);
    let (b4, b_tail) = b.split_at(a4.len());
    for (xa, xb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += xa[0] * xb[0];
        acc[1] += xa[1] * xb[1];
        acc[2] += xa[2] * xb[2];
        acc[3] += xa[3] * xb[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

/// `y += alpha * x` (BLAS axpy). Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    let split = x.len() & !3;
    let (x4, x_tail) = x.split_at(split);
    let (y4, y_tail) = y.split_at_mut(split);
    for (ys, xs) in y4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
        ys[0] += alpha * xs[0];
        ys[1] += alpha * xs[1];
        ys[2] += alpha * xs[2];
        ys[3] += alpha * xs[3];
    }
    for (yi, xi) in y_tail.iter_mut().zip(x_tail) {
        *yi += alpha * xi;
    }
}

/// Fused pair of axpys: `y += a0*x0 + a1*x1` in one pass over `y`.
///
/// Per element the adds associate left-to-right, so the result is
/// bit-identical to two sequential [`axpy`] calls while halving the
/// read-modify-write traffic on `y`.
#[inline]
pub fn axpy2(a0: f64, x0: &[f64], a1: f64, x1: &[f64], y: &mut [f64]) {
    let n = y.len();
    assert!(x0.len() == n && x1.len() == n, "axpy2: length mismatch");
    for j in 0..n {
        y[j] = (y[j] + a0 * x0[j]) + a1 * x1[j];
    }
}

/// Fused quad of axpys: `y += a0*x0 + a1*x1 + a2*x2 + a3*x3` in one pass
/// over `y`, adds associated left-to-right (bit-identical to four
/// sequential [`axpy`] calls).
#[inline]
pub fn axpy4(
    a0: f64,
    x0: &[f64],
    a1: f64,
    x1: &[f64],
    a2: f64,
    x2: &[f64],
    a3: f64,
    x3: &[f64],
    y: &mut [f64],
) {
    let n = y.len();
    assert!(
        x0.len() == n && x1.len() == n && x2.len() == n && x3.len() == n,
        "axpy4: length mismatch"
    );
    for j in 0..n {
        y[j] = (((y[j] + a0 * x0[j]) + a1 * x1[j]) + a2 * x2[j]) + a3 * x3[j];
    }
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Sum of absolute values (1-norm). The paper's accuracy metric is built on
/// 1-norms of reconstruction residuals.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `a - b` into a fresh vector. Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b` into a fresh vector. Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Normalizes `x` to unit Euclidean norm in place and returns the original
/// norm. Leaves a zero vector untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_lengths_around_the_unroll() {
        for n in 0..13usize {
            let a: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| (2 * i + 1) as f64).collect();
            let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b), expect, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn axpy_handles_lengths_around_the_unroll() {
        for n in 0..13usize {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut y = vec![1.0; n];
            axpy(3.0, &x, &mut y);
            for (i, v) in y.iter().enumerate() {
                assert_eq!(*v, 1.0 + 3.0 * i as f64, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn fused_axpys_match_sequential() {
        let n = 11;
        let xs: Vec<Vec<f64>> =
            (0..4).map(|k| (0..n).map(|i| ((i * 7 + k * 3) % 5) as f64 - 2.0).collect()).collect();
        let alphas = [1.5, -2.0, 0.25, 3.0];

        let mut seq = vec![0.5; n];
        for (a, x) in alphas.iter().zip(&xs) {
            axpy(*a, x, &mut seq);
        }

        let mut fused2 = vec![0.5; n];
        axpy2(alphas[0], &xs[0], alphas[1], &xs[1], &mut fused2);
        axpy2(alphas[2], &xs[2], alphas[3], &xs[3], &mut fused2);
        assert_eq!(seq, fused2);

        let mut fused4 = vec![0.5; n];
        axpy4(
            alphas[0], &xs[0], alphas[1], &xs[1], alphas[2], &xs[2], alphas[3], &xs[3],
            &mut fused4,
        );
        assert_eq!(seq, fused4);
    }

    #[test]
    fn norms_agree_on_simple_cases() {
        let v = [3.0, -4.0];
        assert_eq!(norm1(&v), 7.0);
        assert_eq!(norm2_sq(&v), 25.0);
        assert_eq!(norm2(&v), 5.0);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_of_zero_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5, -1.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(-3.0, &mut v);
        assert_eq!(v, vec![-3.0, 6.0]);
    }
}
