//! Dense vector kernels on `&[f64]` slices.
//!
//! Vectors are plain slices/`Vec<f64>` rather than a newtype: the hot paths
//! of the engines hand rows of [`crate::Mat`] and partition buffers around,
//! and a zero-cost view type would add friction without catching any bug the
//! length asserts here don't.

/// Dot product `a · b`. Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS axpy). Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Sum of absolute values (1-norm). The paper's accuracy metric is built on
/// 1-norms of reconstruction residuals.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `a - b` into a fresh vector. Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b` into a fresh vector. Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Normalizes `x` to unit Euclidean norm in place and returns the original
/// norm. Leaves a zero vector untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms_agree_on_simple_cases() {
        let v = [3.0, -4.0];
        assert_eq!(norm1(&v), 7.0);
        assert_eq!(norm2_sq(&v), 25.0);
        assert_eq!(norm2(&v), 5.0);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_of_zero_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5, -1.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(-3.0, &mut v);
        assert_eq!(v, vec![-3.0, 6.0]);
    }
}
