//! Observability layer: tracing spans, a metrics registry, and exporters.
//!
//! Every execution layer of the reproduction — the `linalg` kernels and
//! worker pool, `dcluster`'s simulated stages, the `mapreduce` job waves,
//! the `sparkle` RDD stages, and the sPCA drivers in `core` — records into
//! one process-wide [`Collector`] when a caller installs one. The paper's
//! entire evaluation (Figures 6–8, Table 3) is a story told through
//! measurement; this crate is what lets any run of this repository tell
//! the same story: which EM iteration, which job, which stage, and which
//! kernel every second and every byte went to.
//!
//! # Two clock domains
//!
//! Events carry one of two timelines, kept apart as separate *processes*
//! in the exported trace:
//!
//! * **Host wall time** (pid [`HOST_PID`]) — real `Instant` durations of
//!   kernels, pool batches, and task closures, one track per OS thread.
//! * **Virtual cluster time** (one pid per simulated-cluster clock,
//!   allocated with [`Collector::alloc_virtual_pid`]) — the simulated
//!   cluster's clock, the quantity the paper's figures plot. Spans here
//!   nest run → EM iteration → job → stage.
//!
//! # Zero overhead when disabled
//!
//! When no collector is installed, every instrumentation site reduces to
//! one relaxed [`AtomicBool`] load ([`enabled`]) and a branch; no
//! allocation, no locking, no time queries. This is the contract that
//! keeps the PR-1 kernel benchmarks unchanged with tracing compiled in.
//!
//! # Well-formed nesting
//!
//! Spans are RAII guards; the collector still *verifies* LIFO discipline
//! (every exit must match the innermost open span of its track) and counts
//! violations instead of trusting callers — see
//! [`Collector::nesting_violations`] and [`validate_nesting`].

pub mod critpath;
pub mod export;
pub mod json;
pub mod ledger;
pub mod registry;
pub mod report;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub use registry::{Counter, Gauge, Histogram, Registry};

/// The pid under which host-wall-time events are exported.
pub const HOST_PID: u32 = 1;

/// First pid handed out to virtual clocks.
const FIRST_VIRTUAL_PID: u32 = 2;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Chrome `trace_event` phase of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Complete span with duration (`"X"`).
    Complete,
    /// Counter sample (`"C"`).
    Counter,
    /// Instantaneous event (`"i"`).
    Instant,
    /// Metadata (process/thread names, `"M"`).
    Metadata,
}

/// An argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span/counter name.
    pub name: String,
    /// Category (e.g. `"kernel"`, `"stage"`, `"job"`, `"iteration"`).
    pub cat: &'static str,
    /// Event phase.
    pub phase: Phase,
    /// Timestamp in microseconds on the event's clock domain.
    pub ts_us: u64,
    /// Duration in microseconds (only for [`Phase::Complete`]).
    pub dur_us: u64,
    /// Process id: [`HOST_PID`] or an allocated virtual pid.
    pub pid: u32,
    /// Track id within the process (OS-thread ordinal for host events).
    pub tid: u64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// Default event-buffer capacity. Events past the cap are dropped and
/// counted, never reallocated past it — the buffer is bounded by design.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

struct EventBuf {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
    /// Open-span stacks for the virtual domains, pid → stack of names.
    vstacks: HashMap<u32, Vec<String>>,
}

/// In-memory trace collector: a bounded event buffer plus a metrics
/// [`Registry`], shared behind an `Arc` by every instrumented layer.
pub struct Collector {
    epoch: Instant,
    buf: Mutex<EventBuf>,
    registry: Registry,
    next_pid: AtomicU32,
    nesting_violations: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Collector with the default buffer capacity.
    pub fn new() -> Self {
        Collector::with_capacity(DEFAULT_CAPACITY)
    }

    /// Collector with an explicit event cap.
    pub fn with_capacity(capacity: usize) -> Self {
        Collector {
            epoch: Instant::now(),
            buf: Mutex::new(EventBuf {
                events: Vec::new(),
                capacity: capacity.max(16),
                dropped: 0,
                vstacks: HashMap::new(),
            }),
            registry: Registry::new(),
            next_pid: AtomicU32::new(FIRST_VIRTUAL_PID),
            nesting_violations: AtomicU64::new(0),
        }
    }

    fn buf(&self) -> MutexGuard<'_, EventBuf> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The collector's metrics registry (global instruments: pool depth,
    /// kernel FLOPs; per-cluster byte meters live in the cluster's own
    /// registry).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Microseconds of host wall time since this collector was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Appends an event, honouring the capacity bound.
    pub fn record(&self, ev: Event) {
        let mut buf = self.buf();
        if buf.events.len() >= buf.capacity {
            buf.dropped += 1;
            return;
        }
        buf.events.push(ev);
    }

    /// Number of events dropped at the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.buf().dropped
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.buf().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of all recorded events, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.buf().events.clone()
    }

    /// Exits observed that did not match the innermost open span of their
    /// track. Zero for every well-behaved program.
    pub fn nesting_violations(&self) -> u64 {
        self.nesting_violations.load(Ordering::Relaxed)
    }

    /// Counts a nesting violation, mirrored into the registry as the
    /// `obs.nesting_violations` counter so it shows up in every rendered
    /// snapshot and ledger, not only via the direct accessor.
    fn note_nesting_violation(&self) {
        self.nesting_violations.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("obs.nesting_violations").inc();
    }

    /// Allocates a pid for a virtual clock domain and names its process in
    /// the exported trace.
    pub fn alloc_virtual_pid(&self, label: &str) -> u32 {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        self.set_process_label(pid, label);
        pid
    }

    /// (Re)names an exported process — e.g. `"sPCA-Spark (virtual)"`.
    pub fn set_process_label(&self, pid: u32, label: &str) {
        self.record(Event {
            name: "process_name".to_string(),
            cat: "__metadata",
            phase: Phase::Metadata,
            ts_us: 0,
            dur_us: 0,
            pid,
            tid: 0,
            args: vec![("name", ArgValue::Str(label.to_string()))],
        });
    }

    /// Opens a span on a virtual timeline at the caller-supplied virtual
    /// timestamp. Virtual domains are driver-sequential, so each pid has a
    /// single track (tid 0) and one open-span stack.
    pub fn begin_virtual(
        &self,
        pid: u32,
        cat: &'static str,
        name: &str,
        ts_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        {
            let mut buf = self.buf();
            buf.vstacks.entry(pid).or_default().push(name.to_string());
        }
        self.record(Event {
            name: name.to_string(),
            cat,
            phase: Phase::Begin,
            ts_us,
            dur_us: 0,
            pid,
            tid: 0,
            args,
        });
    }

    /// Closes the innermost open virtual span of `pid`. A name mismatch is
    /// counted as a nesting violation (the event is still recorded so the
    /// trace remains inspectable).
    pub fn end_virtual(
        &self,
        pid: u32,
        cat: &'static str,
        name: &str,
        ts_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let matched = {
            let mut buf = self.buf();
            match buf.vstacks.entry(pid).or_default().pop() {
                Some(top) => top == name,
                None => false,
            }
        };
        if !matched {
            self.note_nesting_violation();
        }
        self.record(Event {
            name: name.to_string(),
            cat,
            phase: Phase::End,
            ts_us,
            dur_us: 0,
            pid,
            tid: 0,
            args,
        });
    }

    /// Records a complete span (`ph:"X"`) on a virtual timeline: a
    /// closed `[ts_us, ts_us + dur_us)` window with its duration attached.
    /// Used for the causality segments the critical-path profiler consumes
    /// ([`crate::critpath`]): segments are emitted *between* their enclosing
    /// stage/driver `Begin`/`End` pair, so the text report nests them inside
    /// the span that caused them.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        pid: u32,
        cat: &'static str,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.record(Event {
            name: name.to_string(),
            cat,
            phase: Phase::Complete,
            ts_us,
            dur_us,
            pid,
            tid: 0,
            args,
        });
    }

    /// Records a counter sample (`ph:"C"`).
    pub fn counter(&self, pid: u32, name: &str, ts_us: u64, value: f64) {
        self.record(Event {
            name: name.to_string(),
            cat: "counter",
            phase: Phase::Counter,
            ts_us,
            dur_us: 0,
            pid,
            tid: 0,
            args: vec![("value", ArgValue::F64(value))],
        });
    }

    /// Records an instantaneous event.
    pub fn instant(
        &self,
        pid: u32,
        cat: &'static str,
        name: &str,
        ts_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.record(Event {
            name: name.to_string(),
            cat,
            phase: Phase::Instant,
            ts_us,
            dur_us: 0,
            pid,
            tid: 0,
            args,
        });
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Global install plumbing
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global_slot() -> &'static Mutex<Option<Arc<Collector>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Collector>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// True when a collector is installed. **The** fast path: every
/// instrumentation site checks this single relaxed atomic first, so a
/// disabled build pays one load and a predictable branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `collector` as the process-wide collector and enables
/// instrumentation. Replaces any previous collector.
pub fn install(collector: Arc<Collector>) {
    let slot = global_slot();
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(collector);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Creates, installs, and returns a fresh collector.
pub fn install_new() -> Arc<Collector> {
    let c = Arc::new(Collector::new());
    install(Arc::clone(&c));
    c
}

/// Disables instrumentation and returns the collector that was installed.
pub fn uninstall() -> Option<Arc<Collector>> {
    ENABLED.store(false, Ordering::SeqCst);
    global_slot().lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// The installed collector, if any. Returns `None` without touching the
/// mutex when instrumentation is disabled.
pub fn collector() -> Option<Arc<Collector>> {
    if !enabled() {
        return None;
    }
    global_slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

// ---------------------------------------------------------------------------
// Host-domain spans
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_TRACK: Cell<u64> = const { Cell::new(u64::MAX) };
    static HOST_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Pointer of the collector this thread last announced its name to.
    static ANNOUNCED_TO: Cell<usize> = const { Cell::new(0) };
}

fn host_tid(c: &Arc<Collector>) -> u64 {
    static NEXT_TRACK: AtomicU64 = AtomicU64::new(1);
    let tid = THREAD_TRACK.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_TRACK.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    });
    let ptr = Arc::as_ptr(c) as usize;
    ANNOUNCED_TO.with(|a| {
        if a.get() != ptr {
            a.set(ptr);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            c.record(Event {
                name: "thread_name".to_string(),
                cat: "__metadata",
                phase: Phase::Metadata,
                ts_us: 0,
                dur_us: 0,
                pid: HOST_PID,
                tid,
                args: vec![("name", ArgValue::Str(name))],
            });
        }
    });
    tid
}

/// RAII guard for a host-wall-time span. A disabled collector yields an
/// inert guard (no allocation happened to create it).
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    collector: Arc<Collector>,
    name: String,
    cat: &'static str,
    tid: u64,
    begin_us: u64,
    /// FLOPs attributed to this span; converted to a FLOP/s gauge and
    /// histogram sample at close.
    flops: Option<u64>,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// An inert guard.
    pub fn none() -> Self {
        SpanGuard { inner: None }
    }

    /// True when the guard records on drop.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attributes `flops` floating-point operations to this span: at close
    /// the collector's registry gets a `kernel.flops` counter increment, a
    /// `kernel.gflops_per_sec` histogram sample, and the latest rate in the
    /// `kernel.flops_per_sec` gauge.
    pub fn with_flops(mut self, flops: u64) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.flops = Some(flops);
        }
        self
    }

    /// Appends an annotation to the span's closing event.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let end_us = inner.collector.now_us();
        // LIFO verification: the innermost open span of this thread must be
        // this one.
        let matched = HOST_STACK.with(|s| s.borrow_mut().pop().map(|top| top == inner.name));
        if matched != Some(true) {
            inner.collector.note_nesting_violation();
        }
        if let Some(flops) = inner.flops {
            let secs = (end_us.saturating_sub(inner.begin_us)) as f64 / 1e6;
            let reg = inner.collector.registry();
            reg.counter("kernel.flops").add(flops);
            if secs > 0.0 {
                let rate = flops as f64 / secs;
                reg.gauge("kernel.flops_per_sec").set(rate);
                reg.histogram("kernel.gflops_per_sec").record(rate / 1e9);
            }
        }
        inner.collector.record(Event {
            name: inner.name,
            cat: inner.cat,
            phase: Phase::End,
            ts_us: end_us,
            dur_us: 0,
            pid: HOST_PID,
            tid: inner.tid,
            args: inner.args,
        });
    }
}

/// Opens a host-wall-time span on the current thread. Inert when no
/// collector is installed.
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::none();
    }
    span_owned(cat, name.into())
}

/// Like [`span`], but the name is built only when instrumentation is
/// enabled — use this when the label requires formatting.
pub fn span_lazy(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard::none();
    }
    span_owned(cat, name())
}

fn span_owned(cat: &'static str, name: String) -> SpanGuard {
    let Some(c) = collector() else { return SpanGuard::none() };
    let tid = host_tid(&c);
    let begin_us = c.now_us();
    HOST_STACK.with(|s| s.borrow_mut().push(name.clone()));
    c.record(Event {
        name: name.clone(),
        cat,
        phase: Phase::Begin,
        ts_us: begin_us,
        dur_us: 0,
        pid: HOST_PID,
        tid,
        args: Vec::new(),
    });
    SpanGuard {
        inner: Some(SpanInner { collector: c, name, cat, tid, begin_us, flops: None, args: Vec::new() }),
    }
}

/// Records a counter sample on the host timeline (single-machine
/// convergence telemetry, e.g. the PPCA reference loop).
pub fn host_counter(name: &str, value: f64) {
    if let Some(c) = collector() {
        let ts = c.now_us();
        c.counter(HOST_PID, name, ts, value);
    }
}

// ---------------------------------------------------------------------------
// Nesting validation over recorded events
// ---------------------------------------------------------------------------

/// Replays `events` and verifies span well-formedness per track: every
/// `End` must name the innermost open `Begin` of its `(pid, tid)`, and no
/// span may remain open. Returns the list of violations (empty = OK).
pub fn validate_nesting(events: &[Event]) -> Vec<String> {
    let mut stacks: HashMap<(u32, u64), Vec<&str>> = HashMap::new();
    let mut violations = Vec::new();
    for ev in events {
        let key = (ev.pid, ev.tid);
        match ev.phase {
            Phase::Begin => stacks.entry(key).or_default().push(&ev.name),
            Phase::End => match stacks.entry(key).or_default().pop() {
                Some(top) if top == ev.name => {}
                Some(top) => violations.push(format!(
                    "pid {} tid {}: exit {:?} does not match innermost open span {:?}",
                    ev.pid, ev.tid, ev.name, top
                )),
                None => violations
                    .push(format!("pid {} tid {}: exit {:?} with no open span", ev.pid, ev.tid, ev.name)),
            },
            _ => {}
        }
    }
    for ((pid, tid), stack) in stacks {
        for name in stack {
            violations.push(format!("pid {pid} tid {tid}: span {name:?} never closed"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that install the global collector.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_by_default_and_spans_are_inert() {
        let _g = serial();
        uninstall();
        assert!(!enabled());
        let s = span("test", "noop");
        assert!(!s.is_active());
    }

    #[test]
    fn install_records_host_spans_in_order() {
        let _g = serial();
        let c = install_new();
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
        }
        uninstall();
        let events = c.events();
        let names: Vec<(&str, Phase)> = events
            .iter()
            .filter(|e| e.cat == "test")
            .map(|e| (e.name.as_str(), e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", Phase::Begin),
                ("inner", Phase::Begin),
                ("inner", Phase::End),
                ("outer", Phase::End)
            ]
        );
        assert_eq!(c.nesting_violations(), 0);
        assert!(validate_nesting(&events).is_empty());
    }

    #[test]
    fn virtual_spans_track_their_own_stack() {
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("virt");
        c.begin_virtual(pid, "t", "run", 0, vec![]);
        c.begin_virtual(pid, "t", "iter", 10, vec![]);
        c.end_virtual(pid, "t", "iter", 20, vec![]);
        c.end_virtual(pid, "t", "run", 30, vec![]);
        assert_eq!(c.nesting_violations(), 0);
        assert!(validate_nesting(&c.events()).is_empty());
    }

    #[test]
    fn mismatched_virtual_exit_is_counted() {
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("virt");
        c.begin_virtual(pid, "t", "a", 0, vec![]);
        c.end_virtual(pid, "t", "b", 5, vec![]);
        assert_eq!(c.nesting_violations(), 1);
        assert!(!validate_nesting(&c.events()).is_empty());
    }

    #[test]
    fn buffer_is_bounded() {
        let c = Collector::with_capacity(16);
        for i in 0..100 {
            c.counter(HOST_PID, "x", i, i as f64);
        }
        assert_eq!(c.len(), 16);
        assert_eq!(c.dropped(), 84);
    }

    #[test]
    fn flops_feed_the_registry() {
        let _g = serial();
        let c = install_new();
        {
            let _s = span("kernel", "matmul").with_flops(1_000_000);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        uninstall();
        assert_eq!(c.registry().counter("kernel.flops").get(), 1_000_000);
        assert!(c.registry().gauge("kernel.flops_per_sec").get() > 0.0);
    }
}
