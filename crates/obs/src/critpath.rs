//! Critical-path reconstruction over a recorded trace.
//!
//! The simulated clusters are *driver-sequential*: every advance of a
//! virtual clock — a stage barrier, a shuffle transfer, a DFS read, a
//! recovery recompute — happens one after another on that cluster's single
//! virtual track. Each advance is emitted as a **segment**: a
//! [`Phase::Complete`] event (cat `"segment"`) carrying its time category,
//! a per-cluster sequence number, and the sequence number of the segment
//! that *caused* it (`prev`). The chain of `prev` edges is therefore the
//! critical path of the virtual execution: within-stage task parallelism
//! has already been collapsed by the LPT makespan (the dominating task is
//! recorded as the `critical_task` arg on stage segments), and everything
//! that remains is, by construction, on the path the paper's Fig. 6/7
//! breakdowns attribute.
//!
//! This module rebuilds per-iteration (and whole-run) windows from the
//! `"iteration"` / `"run"` spans, assigns each segment to the windows
//! open around it in the event stream (see [`analyze`]), and attributes
//! the makespan of each window to categories:
//! cpu / scheduler-wait / network / disk / recovery / idle. Segments tile
//! the clock in integer microseconds, so attribution sums to the window
//! makespan *exactly* — `idle` is the part of the window no charge
//! explains (clock truncation plus any uncharged `advance`).

use std::collections::{BTreeMap, BTreeSet};

use crate::{ArgValue, Event, Phase};

/// Category labels, in canonical order. Segment emitters, the ledger, and
/// the report table all index categories through this list.
pub const CATEGORIES: [&str; 5] = ["cpu", "scheduler", "network", "disk", "recovery"];

/// Index of a category label in [`CATEGORIES`], `None` for unknown labels.
pub fn category_index(label: &str) -> Option<usize> {
    CATEGORIES.iter().position(|c| *c == label)
}

/// One node on the critical path: a single categorized clock advance.
#[derive(Debug, Clone)]
pub struct PathNode {
    /// Human label (`"stage:YtX+XtX"`, `"shuffle"`, `"dfs-read"`, …).
    pub label: String,
    /// Index into [`CATEGORIES`].
    pub category: usize,
    /// Window start on the virtual clock, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Segment sequence number (per-cluster, starts at 1).
    pub seq: u64,
    /// Sequence number of the causing segment (0 = chain head).
    pub prev: u64,
    /// Bytes moved, for network/disk segments.
    pub bytes: Option<u64>,
    /// Index of the task that dominated an LPT stage barrier.
    pub critical_task: Option<u64>,
}

/// Makespan attribution for one window: per-category µs plus idle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// µs per category, indexed like [`CATEGORIES`].
    pub cat_us: [u64; 5],
    /// Window time not explained by any segment, µs.
    pub idle_us: u64,
}

impl Attribution {
    /// Sum over categories plus idle — equals the window makespan.
    pub fn total_us(&self) -> u64 {
        self.cat_us.iter().sum::<u64>() + self.idle_us
    }
}

/// Profile of one window (an EM iteration, or the whole run).
#[derive(Debug, Clone)]
pub struct WindowProfile {
    /// Window label (`"iteration 3"`, `"run_em"`).
    pub label: String,
    /// Window start on the virtual clock, µs.
    pub start_us: u64,
    /// Window end on the virtual clock, µs.
    pub end_us: u64,
    /// Category attribution; `attribution.total_us()` == makespan.
    pub attribution: Attribution,
    /// The critical path through the window, in causal order.
    pub path: Vec<PathNode>,
}

impl WindowProfile {
    /// Window makespan, µs.
    pub fn makespan_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Total virtual time on the path, µs. Never exceeds the makespan.
    pub fn path_us(&self) -> u64 {
        self.path.iter().map(|n| n.dur_us).sum()
    }

    /// Structural signature — the `(label, category)` sequence of the
    /// path, with durations erased. Deterministic across host worker
    /// counts (durations are measured; structure is config + seed).
    pub fn structure(&self) -> Vec<(String, &'static str)> {
        self.path.iter().map(|n| (n.label.clone(), CATEGORIES[n.category])).collect()
    }
}

/// Per-virtual-process critical-path profile.
#[derive(Debug, Clone)]
pub struct ProcessProfile {
    /// Virtual pid the profile was reconstructed from.
    pub pid: u32,
    /// Process label from trace metadata (e.g. `"sPCA-Spark (virtual)"`).
    pub name: String,
    /// One profile per EM iteration, in iteration order.
    pub iterations: Vec<WindowProfile>,
    /// Whole-run window, when a `"run"` span was recorded.
    pub run: Option<WindowProfile>,
}

fn arg_u64(ev: &Event, key: &str) -> Option<u64> {
    ev.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::U64(n) => Some(*n),
        _ => None,
    })
}

fn arg_str<'e>(ev: &'e Event, key: &str) -> Option<&'e str> {
    ev.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::Str(s) => Some(s.as_str()),
        _ => None,
    })
}

fn window_profile(label: String, start_us: u64, end_us: u64, path: Vec<PathNode>) -> WindowProfile {
    let mut attribution = Attribution::default();
    for seg in &path {
        attribution.cat_us[seg.category] += seg.dur_us;
    }
    let charged: u64 = attribution.cat_us.iter().sum();
    attribution.idle_us = end_us.saturating_sub(start_us).saturating_sub(charged);
    WindowProfile { label, start_us, end_us, attribution, path }
}

/// A window still waiting for its `End` event, accumulating the segments
/// emitted while it is open.
struct OpenWindow {
    cat: &'static str,
    label: String,
    start_us: u64,
    path: Vec<PathNode>,
}

/// Reconstructs per-process critical-path profiles from recorded events.
///
/// Segments are assigned to windows by **event-stream position**, not by
/// timestamp intersection: a segment belongs to every window of its pid
/// that is open (`Begin` seen, `End` not yet) when the segment event
/// appears. The clusters are driver-sequential, so stream order *is* the
/// causal order — while µs-truncated timestamps can land a zero-width
/// boundary segment on either side of two adjacent iteration windows
/// depending on measured host durations, the stream position cannot.
/// Timestamps are still what attribution and makespans are computed from.
///
/// Only virtual pids that emitted at least one segment appear; processes
/// are ordered by pid (allocation order).
pub fn analyze(events: &[Event]) -> Vec<ProcessProfile> {
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    // Per-pid stack of open windows (a run span encloses its iteration
    // spans, so a segment inside an iteration lands in both).
    let mut open: BTreeMap<u32, Vec<OpenWindow>> = BTreeMap::new();
    let mut iters: BTreeMap<u32, Vec<WindowProfile>> = BTreeMap::new();
    let mut runs: BTreeMap<u32, Vec<WindowProfile>> = BTreeMap::new();
    // Pids that emitted at least one segment. Host-clock processes record
    // iteration/run spans too but never segments; their windows carry no
    // attribution signal, so they are excluded from the profile list.
    let mut seg_pids: BTreeSet<u32> = BTreeSet::new();

    for ev in events {
        match ev.phase {
            Phase::Metadata => {
                if ev.name == "process_name" {
                    if let Some((_, ArgValue::Str(label))) = ev.args.first() {
                        names.insert(ev.pid, label.clone());
                    }
                }
            }
            Phase::Complete if ev.cat == "segment" => {
                seg_pids.insert(ev.pid);
                let Some(cat) = arg_str(ev, "category").and_then(category_index) else {
                    continue;
                };
                let node = PathNode {
                    label: ev.name.clone(),
                    category: cat,
                    start_us: ev.ts_us,
                    dur_us: ev.dur_us,
                    seq: arg_u64(ev, "seq").unwrap_or(0),
                    prev: arg_u64(ev, "prev").unwrap_or(0),
                    bytes: arg_u64(ev, "bytes"),
                    critical_task: arg_u64(ev, "critical_task"),
                };
                for w in open.entry(ev.pid).or_default().iter_mut() {
                    w.path.push(node.clone());
                }
            }
            Phase::Begin if ev.cat == "iteration" || ev.cat == "run" => {
                open.entry(ev.pid).or_default().push(OpenWindow {
                    cat: if ev.cat == "run" { "run" } else { "iteration" },
                    label: ev.name.clone(),
                    start_us: ev.ts_us,
                    path: Vec::new(),
                });
            }
            Phase::End if ev.cat == "iteration" || ev.cat == "run" => {
                let stack = open.entry(ev.pid).or_default();
                if let Some(i) = stack.iter().rposition(|w| w.cat == ev.cat) {
                    let w = stack.remove(i);
                    let profile = window_profile(w.label, w.start_us, ev.ts_us, w.path);
                    let closed = if w.cat == "run" { &mut runs } else { &mut iters };
                    closed.entry(ev.pid).or_default().push(profile);
                }
            }
            _ => {}
        }
    }

    let pids: Vec<u32> = seg_pids.into_iter().collect();

    pids.into_iter()
        .map(|pid| {
            let iterations = iters.remove(&pid).unwrap_or_default();
            let run = runs.remove(&pid).unwrap_or_default().into_iter().next();
            let name = names.get(&pid).cloned().unwrap_or_else(|| format!("process {pid}"));
            ProcessProfile { pid, name, iterations, run }
        })
        .collect()
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

fn push_row(out: &mut String, label: &str, makespan_us: u64, a: &Attribution, path_len: usize) {
    out.push_str(&format!(
        "  {label:<14} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}  {path_len:>5}\n",
        secs(makespan_us),
        secs(a.cat_us[0]),
        secs(a.cat_us[1]),
        secs(a.cat_us[2]),
        secs(a.cat_us[3]),
        secs(a.cat_us[4]),
        secs(a.idle_us),
    ));
}

/// Renders the per-iteration critical-path table for each process. Each
/// row's category columns (plus idle) sum to its makespan column exactly
/// (integer-µs tiling underneath the 3-decimal rendering).
pub fn render(profiles: &[ProcessProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        if p.iterations.is_empty() && p.run.is_none() {
            continue;
        }
        out.push_str(&format!("== critical path: {} (pid {}) ==\n", p.name, p.pid));
        out.push_str(&format!(
            "  {:<14} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>5}\n",
            "window", "makespan", "cpu", "sched", "network", "disk", "recovery", "idle", "nodes"
        ));
        for w in &p.iterations {
            push_row(&mut out, &w.label, w.makespan_us(), &w.attribution, w.path.len());
        }
        if let Some(run) = &p.run {
            push_row(&mut out, &run.label, run.makespan_us(), &run.attribution, run.path.len());
        }
        // Bottleneck line: the single longest path node of the longest
        // iteration — "what is the bottleneck of this run", one line.
        if let Some(w) = p.iterations.iter().max_by_key(|w| w.makespan_us()) {
            if let Some(n) = w.path.iter().max_by_key(|n| n.dur_us) {
                out.push_str(&format!(
                    "  bottleneck: {} [{}] {:.3}s of {} makespan {:.3}s\n",
                    n.label,
                    CATEGORIES[n.category],
                    secs(n.dur_us),
                    w.label,
                    secs(w.makespan_us()),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    fn seg(
        c: &Collector,
        pid: u32,
        name: &str,
        cat: &str,
        ts: u64,
        dur: u64,
        seq: u64,
        prev: u64,
    ) {
        c.complete(
            pid,
            "segment",
            name,
            ts,
            dur,
            vec![
                ("category", ArgValue::Str(cat.to_string())),
                ("seq", ArgValue::U64(seq)),
                ("prev", ArgValue::U64(prev)),
            ],
        );
    }

    #[test]
    fn attribution_tiles_the_window_exactly() {
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("engine");
        c.begin_virtual(pid, "run", "run_em", 0, vec![]);
        c.begin_virtual(pid, "iteration", "iteration 1", 0, vec![]);
        seg(&c, pid, "stage:ytx", "cpu", 0, 700, 1, 0);
        seg(&c, pid, "shuffle", "network", 700, 200, 2, 1);
        seg(&c, pid, "dfs-read", "disk", 900, 50, 3, 2);
        c.end_virtual(pid, "iteration", "iteration 1", 1000, vec![]);
        c.begin_virtual(pid, "iteration", "iteration 2", 1000, vec![]);
        seg(&c, pid, "stage:ytx", "cpu", 1000, 400, 4, 3);
        seg(&c, pid, "recompute", "recovery", 1400, 100, 5, 4);
        c.end_virtual(pid, "iteration", "iteration 2", 1500, vec![]);
        c.end_virtual(pid, "run", "run_em", 1500, vec![]);

        let profiles = analyze(&c.events());
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.iterations.len(), 2);

        let it1 = &p.iterations[0];
        assert_eq!(it1.makespan_us(), 1000);
        assert_eq!(it1.attribution.cat_us, [700, 0, 200, 50, 0]);
        assert_eq!(it1.attribution.idle_us, 50);
        assert_eq!(it1.attribution.total_us(), it1.makespan_us());
        assert!(it1.path_us() <= it1.makespan_us());
        assert_eq!(it1.path.len(), 3);

        let it2 = &p.iterations[1];
        assert_eq!(it2.attribution.cat_us, [400, 0, 0, 0, 100]);
        assert_eq!(it2.attribution.idle_us, 0);
        assert_eq!(it2.attribution.total_us(), it2.makespan_us());

        let run = p.run.as_ref().expect("run window");
        assert_eq!(run.makespan_us(), 1500);
        assert_eq!(run.path.len(), 5);
        assert_eq!(run.attribution.total_us(), 1500);

        let table = render(&profiles);
        assert!(table.contains("iteration 1"), "{table}");
        assert!(table.contains("bottleneck: stage:ytx [cpu]"), "{table}");
    }

    #[test]
    fn structure_ignores_durations() {
        let mk = |durs: [u64; 2]| {
            let c = Collector::new();
            let pid = c.alloc_virtual_pid("e");
            c.begin_virtual(pid, "iteration", "iteration 1", 0, vec![]);
            seg(&c, pid, "stage:a", "cpu", 0, durs[0], 1, 0);
            seg(&c, pid, "shuffle", "network", durs[0], durs[1], 2, 1);
            c.end_virtual(pid, "iteration", "iteration 1", durs[0] + durs[1], vec![]);
            analyze(&c.events())[0].iterations[0].structure()
        };
        assert_eq!(mk([100, 5]), mk([9000, 123]));
    }

    #[test]
    fn unknown_categories_and_foreign_pids_are_ignored() {
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("e");
        c.begin_virtual(pid, "iteration", "iteration 1", 0, vec![]);
        seg(&c, pid, "x", "martian", 0, 10, 1, 0);
        c.end_virtual(pid, "iteration", "iteration 1", 10, vec![]);
        let profiles = analyze(&c.events());
        assert_eq!(profiles[0].iterations[0].path.len(), 0);
        assert_eq!(profiles[0].iterations[0].attribution.idle_us, 10);
    }
}
