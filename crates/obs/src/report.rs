//! Plain-text hierarchical trace report.
//!
//! Rebuilds the span tree from recorded events — per process, per track —
//! and prints it with durations and annotations, followed by each counter
//! series' final value and the metrics registry. This is what the bench
//! binaries and `trace_report` print on stdout; the Chrome JSON export is
//! the machine-readable twin.

use std::collections::{BTreeMap, HashMap};

use crate::registry::Registry;
use crate::{ArgValue, Collector, Event, Phase, HOST_PID};

#[derive(Debug, Clone)]
struct Interval {
    name: String,
    start_us: u64,
    end_us: u64,
    args: Vec<(&'static str, ArgValue)>,
    children: Vec<Interval>,
}

fn fmt_dur(us: u64) -> String {
    let secs = us as f64 / 1e6;
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{us}us")
    }
}

fn fmt_args(args: &[(&'static str, ArgValue)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let mut out = String::from("  {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match v {
            ArgValue::U64(n) => out.push_str(&format!("{k}={n}")),
            ArgValue::F64(f) => out.push_str(&format!("{k}={f:.4}")),
            ArgValue::Str(s) => out.push_str(&format!("{k}={s}")),
        }
    }
    out.push('}');
    out
}

/// Turns one track's events into top-level intervals with nested children.
fn build_track(events: &[&Event]) -> Vec<Interval> {
    // Pair B/E in recording order (per-track events are chronological);
    // X events are already complete.
    let mut flat: Vec<Interval> = Vec::new();
    let mut stack: Vec<Interval> = Vec::new();
    for ev in events {
        match ev.phase {
            Phase::Begin => stack.push(Interval {
                name: ev.name.clone(),
                start_us: ev.ts_us,
                end_us: ev.ts_us,
                args: ev.args.clone(),
                children: Vec::new(),
            }),
            Phase::End => {
                if let Some(mut iv) = stack.pop() {
                    iv.end_us = ev.ts_us.max(iv.start_us);
                    // End-event args supplement the begin-event args.
                    iv.args.extend(ev.args.iter().cloned());
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(iv),
                        None => flat.push(iv),
                    }
                }
            }
            Phase::Complete => {
                let iv = Interval {
                    name: ev.name.clone(),
                    start_us: ev.ts_us,
                    end_us: ev.ts_us + ev.dur_us,
                    args: ev.args.clone(),
                    children: Vec::new(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.children.push(iv),
                    None => flat.push(iv),
                }
            }
            _ => {}
        }
    }
    // Never-closed spans still show up, truncated at their own start.
    while let Some(iv) = stack.pop() {
        match stack.last_mut() {
            Some(parent) => parent.children.push(iv),
            None => flat.push(iv),
        }
    }
    flat
}

fn render_interval(out: &mut String, iv: &Interval, depth: usize) {
    let indent = "  ".repeat(depth + 1);
    out.push_str(&format!(
        "{indent}[{:>10}] {}{}\n",
        fmt_dur(iv.end_us.saturating_sub(iv.start_us)),
        iv.name,
        fmt_args(&iv.args),
    ));
    for child in &iv.children {
        render_interval(out, child, depth + 1);
    }
}

/// Renders the span tree, counter series, and registry as text.
pub fn text_report(events: &[Event], registries: &[(&str, &Registry)]) -> String {
    // Process and thread labels from metadata events.
    let mut process_names: HashMap<u32, String> = HashMap::new();
    let mut thread_names: HashMap<(u32, u64), String> = HashMap::new();
    for ev in events {
        if ev.phase == Phase::Metadata {
            if let Some((_, ArgValue::Str(label))) = ev.args.first() {
                match ev.name.as_str() {
                    "process_name" => {
                        process_names.insert(ev.pid, label.clone());
                    }
                    "thread_name" => {
                        thread_names.insert((ev.pid, ev.tid), label.clone());
                    }
                    _ => {}
                }
            }
        }
    }

    // Group span events by (pid, tid), preserving order.
    let mut tracks: BTreeMap<(u32, u64), Vec<&Event>> = BTreeMap::new();
    let mut counters: BTreeMap<(u32, String), (u64, f64)> = BTreeMap::new();
    for ev in events {
        match ev.phase {
            Phase::Begin | Phase::End | Phase::Complete => {
                tracks.entry((ev.pid, ev.tid)).or_default().push(ev);
            }
            Phase::Counter => {
                if let Some((_, ArgValue::F64(v))) = ev.args.first() {
                    let slot = counters.entry((ev.pid, ev.name.clone())).or_insert((0, 0.0));
                    slot.0 += 1;
                    slot.1 = *v;
                }
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let mut last_pid = u32::MAX;
    for ((pid, tid), evs) in &tracks {
        if *pid != last_pid {
            let label = process_names.get(pid).cloned().unwrap_or_else(|| {
                if *pid == HOST_PID {
                    "host wall time".to_string()
                } else {
                    format!("process {pid}")
                }
            });
            let domain = if *pid == HOST_PID { "host clock" } else { "virtual clock" };
            out.push_str(&format!("== {label} (pid {pid}, {domain}) ==\n"));
            last_pid = *pid;
        }
        if let Some(name) = thread_names.get(&(*pid, *tid)) {
            out.push_str(&format!("  -- track {tid}: {name}\n"));
        }
        for iv in build_track(evs) {
            render_interval(&mut out, &iv, if *pid == HOST_PID { 1 } else { 0 });
        }
    }

    if !counters.is_empty() {
        out.push_str("== counter series (final values) ==\n");
        for ((pid, name), (samples, last)) in &counters {
            out.push_str(&format!("  pid {pid} {name:<28} {last:.6}  ({samples} samples)\n"));
        }
    }

    for (label, reg) in registries {
        let rendered = reg.render();
        if !rendered.is_empty() {
            out.push_str(&format!("== metrics: {label} ==\n"));
            out.push_str(&rendered);
        }
    }
    out
}

/// Prominent ring-buffer-overflow banner, or `None` when nothing was
/// dropped. Every surface that renders a trace (bench guards,
/// `trace_report`, the run ledger) prints this so a truncated trace can
/// never masquerade as a complete one.
pub fn dropped_warning(dropped: u64) -> Option<String> {
    if dropped == 0 {
        return None;
    }
    Some(format!(
        "!! WARNING: dropped={dropped} trace events (collector ring buffer overflow) — \
         spans, counters, and critical-path segments past the capacity bound are MISSING \
         from this trace; raise Collector::with_capacity to record everything\n"
    ))
}

/// Report over everything a collector holds plus its own registry. Leads
/// with the `dropped=N` overflow warning when the bounded event buffer
/// overflowed — a silently truncated trace must be visible at first glance.
pub fn collector_report(c: &Collector) -> String {
    let mut out = String::new();
    if let Some(warning) = dropped_warning(c.dropped()) {
        out.push_str(&warning);
    }
    out.push_str(&text_report(&c.events(), &[("collector", c.registry())]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_nests_and_labels() {
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("sPCA-Spark");
        c.begin_virtual(pid, "run", "run_em", 0, vec![]);
        c.begin_virtual(pid, "iteration", "iteration 1", 100, vec![]);
        c.begin_virtual(pid, "stage", "YtXJob", 150, vec![("tasks", ArgValue::U64(4))]);
        c.end_virtual(pid, "stage", "YtXJob", 1_150, vec![("util", ArgValue::F64(0.5))]);
        c.end_virtual(pid, "iteration", "iteration 1", 2_000_000, vec![]);
        c.end_virtual(pid, "run", "run_em", 3_000_000, vec![]);
        c.counter(pid, "em.error", 2_000_000, 0.125);

        let report = collector_report(&c);
        assert!(report.contains("sPCA-Spark"), "{report}");
        let run_at = report.find("run_em").unwrap();
        let iter_at = report.find("iteration 1").unwrap();
        let stage_at = report.find("YtXJob").unwrap();
        assert!(run_at < iter_at && iter_at < stage_at, "tree order: {report}");
        assert!(report.contains("tasks=4"));
        assert!(report.contains("util=0.5"));
        assert!(report.contains("em.error"));
        assert!(report.contains("[   1.000ms] YtXJob"), "{report}");
    }

    #[test]
    fn unclosed_span_is_still_reported() {
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("p");
        c.begin_virtual(pid, "run", "dangling", 0, vec![]);
        let report = collector_report(&c);
        assert!(report.contains("dangling"));
    }

    #[test]
    fn overflow_prints_a_prominent_dropped_warning() {
        // Force a ring-buffer overflow: capacity clamps to 16, and the pid
        // metadata event takes one slot, so 100 counters drop 85 — the
        // report must lead with the dropped count.
        let c = Collector::with_capacity(16);
        let pid = c.alloc_virtual_pid("p");
        for i in 0..100u64 {
            c.counter(pid, "x", i, i as f64);
        }
        assert_eq!(c.dropped(), 85);
        let report = collector_report(&c);
        assert!(report.starts_with("!! WARNING: dropped=85"), "{report}");
        // And a clean collector prints no warning at all.
        let clean = Collector::new();
        clean.counter(HOST_PID, "x", 0, 1.0);
        assert!(!collector_report(&clean).contains("WARNING"), "spurious warning");
    }
}
