//! Tiny std-only JSON validator and DOM parser.
//!
//! The CI gate runs a smoke bench with `--trace` and must confirm the
//! emitted file *parses* without shipping a JSON crate (the workspace is
//! dependency-free by policy). [`validate`] is a strict recursive-descent
//! recognizer for RFC 8259 JSON; [`parse`] is its DOM-building twin, added
//! for the `perf_gate` regression checker which must *compare* two
//! documents field by field, not merely accept them.

/// A parsed JSON value. Object member order is preserved (ledgers are
/// written with deterministic key order and the gate diffs them as flat
/// dotted paths, so ordering carries no semantics but keeps output stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; 64-bit hashes are ledger'd as hex
    /// *strings* precisely because this loses integer precision past 2⁵³).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses `input` as exactly one JSON value into a [`Json`] DOM. Accepts
/// the same language as [`validate`].
pub fn parse(input: &str) -> Result<Json, String> {
    validate(input)?;
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    // Already validated, so the builders below cannot fail structurally.
    Ok(build(bytes, &mut pos))
}

/// Builds the DOM over an already-validated byte slice.
fn build(b: &[u8], pos: &mut usize) -> Json {
    match b[*pos] {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b[*pos] == b'}' {
                *pos += 1;
                return Json::Obj(members);
            }
            loop {
                skip_ws(b, pos);
                let key = build_string(b, pos);
                skip_ws(b, pos);
                *pos += 1; // ':'
                skip_ws(b, pos);
                let val = build(b, pos);
                members.push((key, val));
                skip_ws(b, pos);
                if b[*pos] == b',' {
                    *pos += 1;
                } else {
                    *pos += 1; // '}'
                    return Json::Obj(members);
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b[*pos] == b']' {
                *pos += 1;
                return Json::Arr(items);
            }
            loop {
                skip_ws(b, pos);
                items.push(build(b, pos));
                skip_ws(b, pos);
                if b[*pos] == b',' {
                    *pos += 1;
                } else {
                    *pos += 1; // ']'
                    return Json::Arr(items);
                }
            }
        }
        b'"' => Json::Str(build_string(b, pos)),
        b't' => {
            *pos += 4;
            Json::Bool(true)
        }
        b'f' => {
            *pos += 5;
            Json::Bool(false)
        }
        b'n' => {
            *pos += 4;
            Json::Null
        }
        _ => {
            let start = *pos;
            let _ = number(b, pos);
            let text = std::str::from_utf8(&b[start..*pos]).unwrap_or("0");
            Json::Num(text.parse::<f64>().unwrap_or(f64::NAN))
        }
    }
}

fn build_string(b: &[u8], pos: &mut usize) -> String {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return out;
            }
            b'\\' => {
                *pos += 1;
                match b[*pos] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).unwrap_or("0000");
                        let code = u32::from_str_radix(hex, 16).unwrap_or(0);
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {}
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (validation guaranteed the input
                // is a valid &str, so char boundaries are intact).
                let rest = std::str::from_utf8(&b[*pos..]).unwrap_or("");
                if let Some(c) = rest.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                } else {
                    *pos += 1;
                }
            }
        }
    }
}

/// Validates that `input` is exactly one JSON value (plus surrounding
/// whitespace). Returns the byte offset and a message on failure.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, msg: &str) -> String {
    format!("byte {pos}: {msg}")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(err(*pos, "expected a value, found end of input")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(err(*pos, &format!("unexpected byte {:?}", *c as char))),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:` after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "bad escape sequence")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "unescaped control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(err(*pos, "expected digit")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(err(*pos, "expected digit after decimal point"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(err(*pos, "expected digit in exponent"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            r#"{"a": [1, 2.5, "x\n", {"b": null}], "c": false}"#,
            "  { \"k\" : [ ] }  ",
            r#""é""#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn parse_builds_the_dom() {
        let doc = r#"{"a": [1, 2.5, "x\n"], "b": {"c": null, "d": true}, "e": -3e2}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("e").and_then(Json::as_num), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Bool(true)));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[2], Json::Str("x\n".to_string()));
            }
            other => panic!("a: {other:?}"),
        }
        assert!(parse("{\"k\": }").is_err());
    }

    #[test]
    fn parse_resolves_escapes() {
        let v = parse(r#""é\t\"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("é\t\"q\""));
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\"",
            "{} extra",
            "\"ctrl\u{1}char\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }
}
