//! Tiny std-only JSON validator.
//!
//! The CI gate runs a smoke bench with `--trace` and must confirm the
//! emitted file *parses* without shipping a JSON crate (the workspace is
//! dependency-free by policy). This is a strict recursive-descent
//! recognizer for RFC 8259 JSON — it validates, it does not build a DOM.

/// Validates that `input` is exactly one JSON value (plus surrounding
/// whitespace). Returns the byte offset and a message on failure.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, msg: &str) -> String {
    format!("byte {pos}: {msg}")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(err(*pos, "expected a value, found end of input")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(err(*pos, &format!("unexpected byte {:?}", *c as char))),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:` after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "bad escape sequence")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "unescaped control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(err(*pos, "expected digit")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(err(*pos, "expected digit after decimal point"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(err(*pos, "expected digit in exponent"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            r#"{"a": [1, 2.5, "x\n", {"b": null}], "c": false}"#,
            "  { \"k\" : [ ] }  ",
            r#""é""#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\"",
            "{} extra",
            "\"ctrl\u{1}char\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }
}
