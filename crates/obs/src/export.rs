//! Chrome `trace_event` JSON export.
//!
//! The output is the JSON-object flavour of the Trace Event Format:
//! `{"traceEvents": [...], "displayTimeUnit": "ms", ...}`, loadable in
//! `chrome://tracing` and <https://ui.perfetto.dev>. Host wall time and
//! every virtual cluster clock appear as separate *processes*, so the two
//! clock domains never share an axis but sit side by side in the UI.

use crate::{ArgValue, Collector, Event, Phase};

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no Inf/NaN; stringify them.
        out.push('"');
        out.push_str(&format!("{v}"));
        out.push('"');
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(f) => push_f64(out, *f),
            ArgValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn phase_str(p: Phase) -> &'static str {
    match p {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Complete => "X",
        Phase::Counter => "C",
        Phase::Instant => "i",
        Phase::Metadata => "M",
    }
}

fn push_event(out: &mut String, ev: &Event) {
    out.push_str("{\"name\":\"");
    escape_into(out, &ev.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, ev.cat);
    out.push_str("\",\"ph\":\"");
    out.push_str(phase_str(ev.phase));
    out.push_str(&format!("\",\"ts\":{},\"pid\":{},\"tid\":{}", ev.ts_us, ev.pid, ev.tid));
    if ev.phase == Phase::Complete {
        out.push_str(&format!(",\"dur\":{}", ev.dur_us));
    }
    if ev.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":");
        push_args(&mut *out, &ev.args);
    }
    out.push('}');
}

/// Renders events to a Chrome trace JSON string. `meta` entries land in
/// the top-level `otherData` object.
pub fn chrome_trace(events: &[Event], meta: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\n\"traceEvents\":[\n");
    // Name the host process up front; virtual processes announce
    // themselves via metadata events at allocation.
    let host_meta = Event {
        name: "process_name".to_string(),
        cat: "__metadata",
        phase: Phase::Metadata,
        ts_us: 0,
        dur_us: 0,
        pid: crate::HOST_PID,
        tid: 0,
        args: vec![("name", ArgValue::Str("host wall time".to_string()))],
    };
    push_event(&mut out, &host_meta);
    for ev in events {
        out.push_str(",\n");
        push_event(&mut out, ev);
    }
    out.push_str("\n],\n\"displayTimeUnit\":\"ms\"");
    if !meta.is_empty() {
        out.push_str(",\n\"otherData\":{");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":\"");
            escape_into(&mut out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push_str("\n}\n");
    out
}

/// Convenience: exports everything a collector holds, annotating dropped
/// events and nesting violations in `otherData`.
pub fn export_collector(c: &Collector) -> String {
    let events = c.events();
    let meta = [
        ("dropped_events", c.dropped().to_string()),
        ("nesting_violations", c.nesting_violations().to_string()),
    ];
    chrome_trace(&events, &meta.iter().map(|(k, v)| (*k, v.clone())).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                name: "stage \"weird\\name\"".to_string(),
                cat: "stage",
                phase: Phase::Begin,
                ts_us: 10,
                dur_us: 0,
                pid: 2,
                tid: 0,
                args: vec![("tasks", ArgValue::U64(4))],
            },
            Event {
                name: "stage \"weird\\name\"".to_string(),
                cat: "stage",
                phase: Phase::End,
                ts_us: 30,
                dur_us: 0,
                pid: 2,
                tid: 0,
                args: vec![("util", ArgValue::F64(0.5)), ("label", ArgValue::Str("x\ty".into()))],
            },
            Event {
                name: "em.error".to_string(),
                cat: "counter",
                phase: Phase::Counter,
                ts_us: 30,
                dur_us: 0,
                pid: 2,
                tid: 0,
                args: vec![("value", ArgValue::F64(0.25))],
            },
        ]
    }

    #[test]
    fn output_is_valid_json_with_expected_keys() {
        let json = chrome_trace(&sample_events(), &[("mode", "test".to_string())]);
        crate::json::validate(&json).expect("exporter must emit valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"otherData\""));
        assert!(json.contains("host wall time"));
    }

    #[test]
    fn escapes_are_parseable() {
        let json = chrome_trace(&sample_events(), &[]);
        // The quote and backslash in the span name must be escaped.
        assert!(json.contains("stage \\\"weird\\\\name\\\""));
        crate::json::validate(&json).unwrap();
    }

    #[test]
    fn non_finite_counter_values_export_as_valid_json() {
        // NaN / ±Inf have no JSON literal; the exporter must stringify
        // them ("NaN", "inf", "-inf") so trace_check never rejects a trace
        // that recorded a pathological counter sample. Regression test:
        // every non-finite value, as both a counter sample and a span arg.
        let c = Collector::new();
        let pid = c.alloc_virtual_pid("pathological");
        for (i, v) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY].iter().enumerate() {
            c.counter(pid, "em.divergence", i as u64, *v);
        }
        c.begin_virtual(pid, "stage", "s", 10, vec![("ratio", ArgValue::F64(f64::NAN))]);
        c.end_virtual(pid, "stage", "s", 20, vec![("peak", ArgValue::F64(f64::INFINITY))]);
        let json = export_collector(&c);
        crate::json::validate(&json)
            .expect("non-finite counter values must still export as valid JSON");
        // The values survive as strings, not bare literals.
        assert!(json.contains("\"NaN\""), "{json}");
        assert!(json.contains("\"inf\""), "{json}");
        assert!(json.contains("\"-inf\""), "{json}");
        // And the DOM parser agrees end to end.
        crate::json::parse(&json).unwrap();
    }

    #[test]
    fn collector_export_includes_diagnostics() {
        let c = Collector::with_capacity(16);
        c.counter(1, "x", 0, 1.0);
        let json = export_collector(&c);
        crate::json::validate(&json).unwrap();
        assert!(json.contains("dropped_events"));
    }
}
