//! Versioned machine-readable run ledger.
//!
//! A [`RunLedger`] is the durable record of one tool invocation: the
//! config fingerprint of every fit it performed (engine, precision, codec,
//! fault plan, cluster shape), per-iteration convergence telemetry
//! (`em.error`, `em.objective`, precision divergence), the critical-path
//! category attribution, the bytes-moved totals, and a full
//! [`RegistrySnapshot`] — everything `perf_gate` needs to decide whether a
//! commit regressed the system, in one JSON file (`RUN_*.json`).
//!
//! Producers don't build ledgers by hand: a **sink** is installed
//! process-wide (like the trace [`crate::Collector`]), `run_em` appends a
//! [`RunRecord`] per fit when one is active, and the owning harness drains
//! it into a [`RunLedger`] at exit. The JSON is written by a deterministic
//! std-only writer (object keys in fixed order, non-finite floats
//! stringified) and always passes [`crate::json::validate`].

use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::critpath::CATEGORIES;
use crate::export::{escape_into, push_f64};
use crate::registry::RegistrySnapshot;

/// Schema version of the emitted JSON. Bump on any breaking layout change;
/// `perf_gate` refuses to diff ledgers of different versions.
pub const LEDGER_VERSION: u64 = 1;

/// One EM iteration's telemetry row.
#[derive(Debug, Clone, Default)]
pub struct IterationRow {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Reconstruction error `1 - cos(C_new, C_old)` proxy (`em.error`).
    pub error: f64,
    /// Objective proxy (`em.objective`).
    pub objective: f64,
    /// Mixed-precision divergence vs f64 (`em.precision.divergence`).
    pub divergence: f64,
    /// Cluster clock at the end of the iteration, seconds.
    pub virtual_secs: f64,
    /// Per-category virtual µs spent in this iteration, indexed like
    /// [`CATEGORIES`].
    pub cat_us: [u64; 5],
}

/// Ledger record of one fit.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Engine label, e.g. `"sPCA-Spark"`.
    pub label: String,
    /// Config fingerprint as ordered key/value pairs (engine, precision,
    /// codec, fault plan, cluster shape, seeds).
    pub config: Vec<(String, String)>,
    /// Content hash of the fitted model (hex string — kept out of JSON
    /// number space so no f64 rounding can corrupt it).
    pub model_hash: String,
    /// Iterations executed.
    pub iterations_run: u64,
    /// Final reconstruction error.
    pub final_error: f64,
    /// Total virtual time of the fit, seconds.
    pub virtual_time_secs: f64,
    /// Bytes-moved totals as ordered key/value pairs (network, dfs read /
    /// written, intermediate).
    pub bytes: Vec<(String, u64)>,
    /// Whole-run per-category attribution, µs, indexed like [`CATEGORIES`].
    pub attribution_us: [u64; 5],
    /// Backwards/NaN clock steps dropped by the cluster during this fit.
    pub clock_violations: u64,
    /// The cluster's full metrics registry at the end of the fit.
    pub registry: RegistrySnapshot,
    /// Per-iteration telemetry.
    pub iterations: Vec<IterationRow>,
}

/// A complete run ledger: every fit the tool performed plus collector-level
/// integrity counters.
#[derive(Debug, Clone, Default)]
pub struct RunLedger {
    /// Producing binary, e.g. `"bench_em"` or `"spca-cli"`.
    pub tool: String,
    /// Fit records in execution order.
    pub runs: Vec<RunRecord>,
    /// Trace events dropped at the collector's capacity bound. Non-zero
    /// means the trace (and any attribution derived from it) is truncated.
    pub dropped_events: u64,
    /// Span-nesting violations observed by the collector.
    pub nesting_violations: u64,
    /// The installed collector's own registry (kernel FLOPs, pool depth).
    pub collector_registry: RegistrySnapshot,
}

// ---------------------------------------------------------------------------
// Global sink
// ---------------------------------------------------------------------------

fn sink_slot() -> &'static Mutex<Option<Vec<RunRecord>>> {
    static SLOT: OnceLock<Mutex<Option<Vec<RunRecord>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn lock_sink() -> MutexGuard<'static, Option<Vec<RunRecord>>> {
    sink_slot().lock().unwrap_or_else(|e| e.into_inner())
}

/// Starts collecting [`RunRecord`]s process-wide. Replaces (discards) any
/// records a previously installed sink had accumulated.
pub fn install_sink() {
    *lock_sink() = Some(Vec::new());
}

/// True when a sink is installed — producers skip record construction
/// entirely otherwise, keeping fits ledger-free by default.
pub fn sink_enabled() -> bool {
    lock_sink().is_some()
}

/// Appends a record to the installed sink; a no-op without one.
pub fn record_run(record: RunRecord) {
    if let Some(records) = lock_sink().as_mut() {
        records.push(record);
    }
}

/// Removes the sink and returns everything it accumulated.
pub fn drain_sink() -> Vec<RunRecord> {
    lock_sink().take().unwrap_or_default()
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn push_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str(out, key);
    out.push(':');
}

fn push_registry(out: &mut String, snap: &RegistrySnapshot) {
    out.push('{');
    let mut first = true;
    push_key(out, &mut first, "counters");
    out.push('{');
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push('}');
    push_key(out, &mut first, "gauges");
    out.push('{');
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, name);
        out.push(':');
        push_f64(out, *v);
    }
    out.push('}');
    push_key(out, &mut first, "histograms");
    out.push('{');
    for (i, (name, count, mean, p50, p99)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, name);
        out.push_str(&format!(":{{\"count\":{count},\"mean\":"));
        push_f64(out, *mean);
        out.push_str(",\"p50\":");
        push_f64(out, *p50);
        out.push_str(",\"p99\":");
        push_f64(out, *p99);
        out.push('}');
    }
    out.push('}');
    out.push('}');
}

fn push_attribution(out: &mut String, cat_us: &[u64; 5]) {
    out.push('{');
    for (i, label) in CATEGORIES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{label}_us\":{}", cat_us[i]));
    }
    out.push('}');
}

fn push_run(out: &mut String, run: &RunRecord) {
    out.push('{');
    let mut first = true;
    push_key(out, &mut first, "label");
    push_str(out, &run.label);
    push_key(out, &mut first, "config");
    out.push('{');
    for (i, (k, v)) in run.config.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, k);
        out.push(':');
        push_str(out, v);
    }
    out.push('}');
    push_key(out, &mut first, "model_hash");
    push_str(out, &run.model_hash);
    push_key(out, &mut first, "iterations_run");
    out.push_str(&run.iterations_run.to_string());
    push_key(out, &mut first, "final_error");
    push_f64(out, run.final_error);
    push_key(out, &mut first, "virtual_time_secs");
    push_f64(out, run.virtual_time_secs);
    push_key(out, &mut first, "bytes");
    out.push('{');
    for (i, (k, v)) in run.bytes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push('}');
    push_key(out, &mut first, "attribution");
    push_attribution(out, &run.attribution_us);
    push_key(out, &mut first, "integrity");
    out.push_str(&format!("{{\"clock_violations\":{}}}", run.clock_violations));
    push_key(out, &mut first, "iterations");
    out.push('[');
    for (i, row) in run.iterations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"iteration\":{},\"error\":", row.iteration));
        push_f64(out, row.error);
        out.push_str(",\"objective\":");
        push_f64(out, row.objective);
        out.push_str(",\"divergence\":");
        push_f64(out, row.divergence);
        out.push_str(",\"virtual_secs\":");
        push_f64(out, row.virtual_secs);
        out.push_str(",\"attribution\":");
        push_attribution(out, &row.cat_us);
        out.push('}');
    }
    out.push(']');
    push_key(out, &mut first, "registry");
    push_registry(out, &run.registry);
    out.push('}');
}

impl RunLedger {
    /// Serializes the ledger as deterministic JSON (fixed key order,
    /// non-finite floats stringified). The output always passes
    /// [`crate::json::validate`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "ledger_version");
        out.push_str(&LEDGER_VERSION.to_string());
        push_key(&mut out, &mut first, "tool");
        push_str(&mut out, &self.tool);
        push_key(&mut out, &mut first, "integrity");
        out.push_str(&format!(
            "{{\"dropped_events\":{},\"nesting_violations\":{}}}",
            self.dropped_events, self.nesting_violations
        ));
        push_key(&mut out, &mut first, "collector_registry");
        push_registry(&mut out, &self.collector_registry);
        push_key(&mut out, &mut first, "runs");
        out.push('[');
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_run(&mut out, run);
        }
        out.push(']');
        out.push('}');
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_ledger() -> RunLedger {
        let mut reg = RegistrySnapshot::default();
        reg.counters.push(("cluster.network_bytes".into(), 1234));
        reg.gauges.push(("stage.util".into(), 0.75));
        reg.histograms.push(("stage.secs".into(), 3, 1.5, 2.0, 4.0));
        RunLedger {
            tool: "bench_em".into(),
            dropped_events: 0,
            nesting_violations: 0,
            collector_registry: RegistrySnapshot::default(),
            runs: vec![RunRecord {
                label: "sPCA-Spark".into(),
                config: vec![("engine".into(), "spark".into()), ("seed".into(), "7".into())],
                model_hash: "0x1f2e3d4c5b6a7988".into(),
                iterations_run: 2,
                final_error: 0.125,
                virtual_time_secs: 12.5,
                bytes: vec![("network".into(), 100), ("dfs_written".into(), 50)],
                attribution_us: [7, 1, 2, 3, 0],
                clock_violations: 0,
                registry: reg,
                iterations: vec![IterationRow {
                    iteration: 1,
                    error: 0.5,
                    objective: 0.9,
                    divergence: f64::NAN,
                    virtual_secs: 6.0,
                    cat_us: [4, 0, 1, 1, 0],
                }],
            }],
        }
    }

    #[test]
    fn ledger_json_is_valid_and_versioned() {
        let json_text = sample_ledger().to_json();
        json::validate(&json_text).expect("ledger must serialize to valid JSON");
        let dom = json::parse(&json_text).unwrap();
        assert_eq!(
            dom.get("ledger_version").and_then(json::Json::as_num),
            Some(LEDGER_VERSION as f64)
        );
        let runs = match dom.get("runs") {
            Some(json::Json::Arr(rs)) => rs,
            other => panic!("runs: {other:?}"),
        };
        let run = &runs[0];
        assert_eq!(run.get("model_hash").and_then(json::Json::as_str), Some("0x1f2e3d4c5b6a7988"));
        assert_eq!(run.get("config").and_then(|c| c.get("engine")).and_then(json::Json::as_str), Some("spark"));
        // NaN divergence serialized as a string, not a bare literal.
        assert!(json_text.contains("\"divergence\":\"NaN\""), "{json_text}");
        let attr = run.get("attribution").unwrap();
        assert_eq!(attr.get("cpu_us").and_then(json::Json::as_num), Some(7.0));
    }

    #[test]
    fn sink_collects_and_drains() {
        // The sink is process-global; this test owns it end to end.
        install_sink();
        assert!(sink_enabled());
        record_run(RunRecord { label: "a".into(), ..RunRecord::default() });
        record_run(RunRecord { label: "b".into(), ..RunRecord::default() });
        let runs = drain_sink();
        assert_eq!(runs.iter().map(|r| r.label.as_str()).collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(!sink_enabled());
        record_run(RunRecord::default());
        assert!(drain_sink().is_empty(), "records without a sink are dropped");
    }
}
