//! Named metric instruments: counters, gauges, and log₂ histograms.
//!
//! A [`Registry`] is a lazily-populated map from names to shared
//! instruments. Instruments are lock-free atomics; the registry mutex is
//! only taken to *look up or create* an instrument, so hot paths that cache
//! the returned `Arc` pay a single atomic op per update.
//!
//! Two registries exist in practice: each simulated cluster owns one (byte
//! meters, stage utilization — this is what backs
//! `dcluster::MetricsSnapshot`), and the installed [`crate::Collector`]
//! owns one for cluster-less instruments (worker-pool queue depth, kernel
//! FLOP/s).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (metrics-reset support).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-value gauge storing an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the value if it exceeds the current one (peak tracking).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if v <= f64::from_bits(cur) {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets (covers values up to 2⁶³).
const BUCKETS: usize = 64;

/// Histogram over non-negative values with log₂ buckets: bucket `i` holds
/// samples in `[2^(i-1), 2^i)` (bucket 0 holds `< 1`).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of samples, as accumulated f64 bits behind a CAS loop.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Histogram {
    fn bucket_of(v: f64) -> usize {
        if !(v >= 1.0) {
            return 0;
        }
        let b = (v.min(u64::MAX as f64) as u64).ilog2() as usize + 1;
        b.min(BUCKETS - 1)
    }

    /// Records one sample (negative/NaN samples land in bucket 0).
    pub fn record(&self, v: f64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let v = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) / n as f64
        }
    }

    /// Upper bound of the smallest bucket prefix holding at least
    /// `q·count` samples — a coarse quantile estimate.
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 1.0 } else { (1u128 << i) as f64 };
            }
        }
        f64::INFINITY
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

/// Read-only copy of a registry's instruments.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → (count, mean, p50 bound, p99 bound).
    pub histograms: Vec<(String, u64, f64, f64, f64)>,
}

impl RegistrySnapshot {
    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Renders every instrument as aligned text lines. Integrity counters
    /// (`cluster.clock_violations`, `obs.nesting_violations`) render like
    /// any other counter when present, so metric-integrity failures are
    /// visible in CI output rather than only via accessor calls.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("  counter   {name:<32} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("  gauge     {name:<32} {v:.4}\n"));
        }
        for (name, count, mean, p50, p99) in &self.histograms {
            out.push_str(&format!(
                "  histogram {name:<32} count={count} mean={mean:.3} p50<{p50:.0} p99<{p99:.0}\n"
            ));
        }
        out
    }
}

/// Lazily-populated map of named instruments.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Copies every instrument's current value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.count(),
                        v.mean(),
                        v.quantile_upper_bound(0.5),
                        v.quantile_upper_bound(0.99),
                    )
                })
                .collect(),
        }
    }

    /// Renders every instrument as aligned text lines (delegates to
    /// [`RegistrySnapshot::render`]).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let r = Registry::new();
        let c = r.counter("bytes");
        c.add(10);
        c.inc();
        assert_eq!(r.counter("bytes").get(), 11, "same name, same instrument");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_last_and_max() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        g.set_max(2.0);
        assert_eq!(g.get(), 3.5, "set_max must not lower");
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        for v in [0.5, 1.0, 2.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.875).abs() < 1e-12);
        assert!(h.quantile_upper_bound(0.5) <= 2.0);
        assert!(h.quantile_upper_bound(1.0) >= 100.0);
    }

    #[test]
    fn snapshot_lists_everything_sorted() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        r.gauge("g").set(1.0);
        r.histogram("h").record(4.0);
        let s = r.snapshot();
        assert_eq!(s.counters.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("n");
                    let h = r.histogram("h");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("n").get(), 4000);
        assert_eq!(r.histogram("h").count(), 4000);
    }
}
