//! Mean propagation: the per-row kernels of the distributed jobs.
//!
//! PPCA needs the mean-centered matrix `Yc = Y − 1⊗Ym`, but centering a
//! sparse matrix destroys its sparsity (Section 3.1). Every kernel here
//! therefore works on the *original* sparse rows and pushes the mean
//! through algebraically:
//!
//! * latent row: `x = (y − Ym)·CM = y·CM − Xm` with `Xm = Ym·CM` broadcast;
//! * `YtX` update: `Σᵢ(yᵢ − Ym)' ⊗ xᵢ = Σᵢ yᵢ' ⊗ xᵢ − Ym' ⊗ Σᵢxᵢ` — the
//!   `Ym' ⊗ Σxᵢ` term is **hoisted**: workers accumulate only the d-vector
//!   `Σxᵢ`, and the driver applies the rank-1 correction once;
//! * `ss3` update: `xᵢ·(C'·yᵢ')` uses the associativity trick of
//!   Section 4.1's Equation (3) — multiply `C'` by the *sparse* `yᵢ'`
//!   first (O(z·d)), never forming the dense `xᵢ·C'` (O(D·d)).
//!
//! [`YtxPartial`] is the consolidated accumulator of the paper's `YtXJob`
//! (Figure 3): one pass computes the `XtX` and `YtX` contributions *and*
//! the hoisted sums, recomputing `x` on demand instead of materializing the
//! N×d matrix `X`.

use std::collections::HashMap;

use linalg::bytes::ByteSized;
use linalg::sparse::SparseRow;
use linalg::{Mat, SparseMat};

/// Latent row `x = y·CM − Xm` for one sparse row (O(z·d)).
pub fn latent_row(row: SparseRow<'_>, cm: &Mat, xm: &[f64]) -> Vec<f64> {
    let mut x = row.mul_mat(cm);
    linalg::vector::axpy(-1.0, xm, &mut x);
    x
}

/// The ablation arm: the same latent row computed *without* mean
/// propagation — materialize the dense centered row, then multiply
/// (O(D·d) regardless of sparsity). Used by the Table 3 comparison.
pub fn latent_row_dense(row: SparseRow<'_>, mean: &[f64], cm: &Mat) -> Vec<f64> {
    let mut dense = vec![0.0; mean.len()];
    for (d, m) in dense.iter_mut().zip(mean) {
        *d = -m;
    }
    for (c, v) in row.iter() {
        dense[c] += v;
    }
    cm.vecmat(&dense)
}

/// Per-task accumulator of the consolidated `YtX`/`XtX` job.
#[derive(Debug, Clone, PartialEq)]
pub struct YtxPartial {
    /// `Σᵢ xᵢ ⊗ xᵢ` (d × d).
    pub xtx: Mat,
    /// `Σᵢ yᵢ' ⊗ xᵢ`, stored sparsely: only columns some row touched.
    pub ytx_rows: HashMap<u32, Vec<f64>>,
    /// `Σᵢ xᵢ` — the hoisted mean-correction vector.
    pub sum_x: Vec<f64>,
    /// Rows processed (for sanity checks).
    pub rows_seen: u64,
}

impl YtxPartial {
    /// Empty accumulator for `d` components.
    pub fn new(d: usize) -> Self {
        YtxPartial {
            xtx: Mat::zeros(d, d),
            ytx_rows: HashMap::new(),
            sum_x: vec![0.0; d],
            rows_seen: 0,
        }
    }

    /// Folds one sparse row into the accumulator, recomputing its latent
    /// vector on demand (the "redundant computation" of Section 3.2).
    pub fn add_row(&mut self, row: SparseRow<'_>, cm: &Mat, xm: &[f64]) {
        let x = latent_row(row, cm, xm);
        // XtX += x ⊗ x.
        let d = x.len();
        for i in 0..d {
            let xi = x[i];
            if xi != 0.0 {
                linalg::vector::axpy(xi, &x, &mut self.xtx.row_mut(i)[..]);
            }
        }
        // YtX: only the non-zero columns of y contribute to Σ y' ⊗ x.
        for (c, v) in row.iter() {
            let slot = self.ytx_rows.entry(c as u32).or_insert_with(|| vec![0.0; d]);
            linalg::vector::axpy(v, &x, slot);
        }
        linalg::vector::axpy(1.0, &x, &mut self.sum_x);
        self.rows_seen += 1;
    }

    /// Merges another partial (accumulator semantics: associative add).
    pub fn merge(&mut self, other: YtxPartial) {
        self.xtx.add_assign(&other.xtx);
        for (c, row) in other.ytx_rows {
            match self.ytx_rows.entry(c) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    linalg::vector::axpy(1.0, &row, e.get_mut());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(row);
                }
            }
        }
        linalg::vector::axpy(1.0, &other.sum_x, &mut self.sum_x);
        self.rows_seen += other.rows_seen;
    }

    /// Driver-side assembly of the dense `YtX = Σ y'⊗x − Ym' ⊗ Σx`
    /// (D × d).
    pub fn finalize_ytx(&self, mean: &[f64]) -> Mat {
        let d = self.sum_x.len();
        let d_in = mean.len();
        let mut ytx = Mat::zeros(d_in, d);
        for (&c, row) in &self.ytx_rows {
            ytx.row_mut(c as usize).copy_from_slice(row);
        }
        for (j, &m) in mean.iter().enumerate() {
            if m != 0.0 {
                linalg::vector::axpy(-m, &self.sum_x, ytx.row_mut(j));
            }
        }
        ytx
    }
}

impl ByteSized for YtxPartial {
    fn size_bytes(&self) -> u64 {
        let d = self.sum_x.len() as u64;
        let xtx = 8 * d * d;
        let rows: u64 = self.ytx_rows.len() as u64 * (4 + 8 * d);
        xtx + rows + 8 * d + 8
    }
}

/// One row's contribution to `Σᵢ xᵢ·(C'·yᵢ')`, the distributed part of
/// `ss3` (Algorithm 4, line 13), using the sparse-first associativity
/// order.
pub fn ss3_row(row: SparseRow<'_>, cm: &Mat, xm: &[f64], c_new: &Mat) -> f64 {
    let x = latent_row(row, cm, xm);
    // C'·y' over non-zeros of y: a d-vector in O(z·d).
    let d = x.len();
    let mut cy = vec![0.0; d];
    for (c, v) in row.iter() {
        linalg::vector::axpy(v, c_new.row(c), &mut cy);
    }
    linalg::vector::dot(&x, &cy)
}

/// Driver-side completion of ss3:
/// `ss3 = Σᵢ xᵢ·(C'yᵢ') − (Σᵢxᵢ)·(C'·Ym')`.
pub fn ss3_finalize(part: f64, sum_x: &[f64], c_new: &Mat, mean: &[f64]) -> f64 {
    let cy_mean = c_new.vecmat(mean);
    part - linalg::vector::dot(sum_x, &cy_mean)
}

/// Dense-oracle computation of `XtX`, `YtX` and `Σx` for tests: centers
/// the matrix explicitly and uses plain dense algebra.
pub fn dense_oracle(y: &SparseMat, mean: &[f64], cm: &Mat) -> (Mat, Mat, Vec<f64>) {
    let mut yc = y.to_dense();
    yc.sub_row_vector(mean);
    let x = yc.matmul(cm);
    let xtx = x.matmul_tn(&x);
    let ytx = yc.matmul_tn(&x);
    let mut sum_x = vec![0.0; cm.cols()];
    for r in 0..x.rows() {
        linalg::vector::axpy(1.0, x.row(r), &mut sum_x);
    }
    (xtx, ytx, sum_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Prng;

    fn fixture() -> (SparseMat, Vec<f64>, Mat, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(5);
        let y = SparseMat::from_triplets(
            6,
            8,
            &[
                (0, 0, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (2, 7, 1.0),
                (3, 1, 1.0),
                (4, 0, 1.0),
                (4, 4, 1.0),
                (5, 5, 1.0),
            ],
        );
        let mean = y.col_means();
        let cm = rng.normal_mat(8, 3);
        let xm = cm.vecmat(&mean);
        (y, mean, cm, xm)
    }

    #[test]
    fn latent_row_matches_dense_centering() {
        let (y, mean, cm, xm) = fixture();
        for r in 0..y.rows() {
            let fast = latent_row(y.row(r), &cm, &xm);
            let slow = latent_row_dense(y.row(r), &mean, &cm);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-12, "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn partial_matches_dense_oracle() {
        let (y, mean, cm, xm) = fixture();
        let mut p = YtxPartial::new(3);
        for r in 0..y.rows() {
            p.add_row(y.row(r), &cm, &xm);
        }
        let (xtx_o, ytx_o, sum_o) = dense_oracle(&y, &mean, &cm);
        assert!(p.xtx.approx_eq(&xtx_o, 1e-10), "XtX mismatch");
        let ytx = p.finalize_ytx(&mean);
        assert!(ytx.approx_eq(&ytx_o, 1e-10), "YtX mismatch");
        for (a, b) in p.sum_x.iter().zip(&sum_o) {
            assert!((a - b).abs() < 1e-10);
        }
        assert_eq!(p.rows_seen, 6);
    }

    #[test]
    fn merge_equals_single_pass() {
        let (y, mean, cm, xm) = fixture();
        let mut whole = YtxPartial::new(3);
        for r in 0..y.rows() {
            whole.add_row(y.row(r), &cm, &xm);
        }
        let mut a = YtxPartial::new(3);
        let mut b = YtxPartial::new(3);
        for r in 0..3 {
            a.add_row(y.row(r), &cm, &xm);
        }
        for r in 3..6 {
            b.add_row(y.row(r), &cm, &xm);
        }
        a.merge(b);
        assert!(a.xtx.approx_eq(&whole.xtx, 1e-12));
        assert!(a.finalize_ytx(&mean).approx_eq(&whole.finalize_ytx(&mean), 1e-12));
        assert_eq!(a.rows_seen, whole.rows_seen);
    }

    #[test]
    fn ytx_partial_stays_sparse() {
        // Only touched columns are stored — the property that keeps sPCA's
        // shuffle at O(z·d) instead of O(D·d).
        let (y, _, cm, xm) = fixture();
        let mut p = YtxPartial::new(3);
        p.add_row(y.row(0), &cm, &xm); // touches columns 0 and 3
        assert_eq!(p.ytx_rows.len(), 2);
        assert!(p.ytx_rows.contains_key(&0));
        assert!(p.ytx_rows.contains_key(&3));
    }

    #[test]
    fn ss3_matches_dense_oracle() {
        let (y, mean, cm, xm) = fixture();
        let mut rng = Prng::seed_from_u64(9);
        let c_new = rng.normal_mat(8, 3);

        let part: f64 = (0..y.rows()).map(|r| ss3_row(y.row(r), &cm, &xm, &c_new)).sum();
        let mut p = YtxPartial::new(3);
        for r in 0..y.rows() {
            p.add_row(y.row(r), &cm, &xm);
        }
        let fast = ss3_finalize(part, &p.sum_x, &c_new, &mean);

        // Oracle: Σ xᵢ · (C'·ycᵢ') densely.
        let mut yc = y.to_dense();
        yc.sub_row_vector(&mean);
        let x = yc.matmul(&cm);
        let cy = yc.matmul(&c_new); // N×d rows = C'·ycᵢ'
        let slow: f64 =
            (0..x.rows()).map(|r| linalg::vector::dot(x.row(r), cy.row(r))).sum();
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn byte_size_reflects_sparsity() {
        let mut p = YtxPartial::new(4);
        let before = p.size_bytes();
        let y = SparseMat::from_triplets(1, 10, &[(0, 2, 1.0)]);
        let cm = Mat::zeros(10, 4);
        p.add_row(y.row(0), &cm, &[0.0; 4]);
        assert_eq!(p.size_bytes() - before, 4 + 8 * 4);
    }
}
