//! Mean propagation: the per-row and per-partition kernels of the
//! distributed jobs.
//!
//! PPCA needs the mean-centered matrix `Yc = Y − 1⊗Ym`, but centering a
//! sparse matrix destroys its sparsity (Section 3.1). Every kernel here
//! therefore works on the *original* sparse rows and pushes the mean
//! through algebraically:
//!
//! * latent row: `x = (y − Ym)·CM = y·CM − Xm` with `Xm = Ym·CM` broadcast;
//! * `YtX` update: `Σᵢ(yᵢ − Ym)' ⊗ xᵢ = Σᵢ yᵢ' ⊗ xᵢ − Ym' ⊗ Σᵢxᵢ` — the
//!   `Ym' ⊗ Σxᵢ` term is **hoisted**: workers accumulate only the d-vector
//!   `Σxᵢ`, and the driver applies the rank-1 correction once;
//! * `ss3` update: `xᵢ·(C'·yᵢ')` uses the associativity trick of
//!   Section 4.1's Equation (3) — multiply `C'` by the *sparse* `yᵢ'`
//!   first (O(z·d)), never forming the dense `xᵢ·C'` (O(D·d)).
//!
//! [`YtxPartial`] is the consolidated accumulator of the paper's `YtXJob`
//! (Figure 3): one pass computes the `XtX` and `YtX` contributions *and*
//! the hoisted sums. Two entry points fold data in:
//!
//! * [`YtxPartial::add_block`] — the batched path. A whole partition goes
//!   through the blocked kernels: `X_blk = Y_blk·CM − 1⊗Xm` via the
//!   threaded `sparse_mul_dense` into a reusable scratch buffer,
//!   `XtX += syrk_tn(X_blk)`, `YtX += spmm_tn(Y_blk, X_blk)` scattered
//!   straight into a packed slab (sorted column table, hash-free inner
//!   loop), `Σx` via per-row column sums.
//! * [`YtxPartial::add_row`] — one sparse row at a time, recomputing its
//!   latent vector on demand (the "redundant computation" of Section 3.2).
//!
//! Both produce bit-identical accumulators on any worker count: the
//! kernels accumulate every output element in ascending input-row order
//! (see the determinism notes in `linalg::kernels`), and the only
//! reassociation points are partition boundaries — which the engines align
//! with merge boundaries. The seed's HashMap-based row-at-a-time
//! accumulator is preserved verbatim in [`rowwise`] as the ablation arm
//! `bench_em` measures against.

use linalg::bytes::ByteSized;
use linalg::sparse::SparseRow;
use linalg::wire::{self, Wire, WireError, WireReader};
use linalg::{bf16_round, Mat, MatF32, Precision, SparseMat, WorkerPool};

/// Latent row `x = y·CM − Xm` for one sparse row (O(z·d)).
pub fn latent_row(row: SparseRow<'_>, cm: &Mat, xm: &[f64]) -> Vec<f64> {
    let mut x = row.mul_mat(cm);
    linalg::vector::axpy(-1.0, xm, &mut x);
    x
}

/// The ablation arm: the same latent row computed *without* mean
/// propagation — materialize the dense centered row, then multiply
/// (O(D·d) regardless of sparsity). Used by the Table 3 comparison.
pub fn latent_row_dense(row: SparseRow<'_>, mean: &[f64], cm: &Mat) -> Vec<f64> {
    let mut dense = vec![0.0; mean.len()];
    for (d, m) in dense.iter_mut().zip(mean) {
        *d = -m;
    }
    for (c, v) in row.iter() {
        dense[c] += v;
    }
    cm.vecmat(&dense)
}

/// Per-task accumulator of the consolidated `YtX`/`XtX` job.
///
/// The `Σ y'⊗x` term is stored packed: `cols` holds the touched column
/// indices in ascending order and `slab` one d-vector per touched column,
/// back to back — no hashing anywhere, O(z·d) shuffle size preserved, and
/// merging two partials is a linear sorted merge.
#[derive(Debug, Clone)]
pub struct YtxPartial {
    /// `Σᵢ xᵢ ⊗ xᵢ` (d × d).
    pub xtx: Mat,
    /// Touched columns of `Σ y'⊗x`, strictly ascending.
    cols: Vec<u32>,
    /// One packed d-row per touched column, parallel to `cols`.
    slab: Vec<f64>,
    /// `Σᵢ xᵢ` — the hoisted mean-correction vector.
    pub sum_x: Vec<f64>,
    /// Rows processed (for sanity checks).
    pub rows_seen: u64,
    /// Reusable `X_blk` buffer for [`Self::add_block`] — driver-local
    /// scratch, never shipped, excluded from equality and byte size.
    scratch: Vec<f64>,
}

impl PartialEq for YtxPartial {
    fn eq(&self, other: &Self) -> bool {
        self.xtx == other.xtx
            && self.cols == other.cols
            && self.slab == other.slab
            && self.sum_x == other.sum_x
            && self.rows_seen == other.rows_seen
    }
}

impl YtxPartial {
    /// Empty accumulator for `d` components.
    pub fn new(d: usize) -> Self {
        YtxPartial {
            xtx: Mat::zeros(d, d),
            cols: Vec::new(),
            slab: Vec::new(),
            sum_x: vec![0.0; d],
            rows_seen: 0,
            scratch: Vec::new(),
        }
    }

    /// Latent dimensionality `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.sum_x.len()
    }

    /// Number of input columns some folded row touched.
    pub fn touched_cols(&self) -> usize {
        self.cols.len()
    }

    /// The packed `Σ y'⊗x` row for column `c`, if any row touched it.
    pub fn ytx_row(&self, c: u32) -> Option<&[f64]> {
        let d = self.d();
        self.cols.binary_search(&c).ok().map(|i| &self.slab[i * d..(i + 1) * d])
    }

    /// Iterates `(column, packed row)` pairs in ascending column order.
    pub fn ytx_iter(&self) -> impl Iterator<Item = (u32, &[f64])> + '_ {
        let d = self.d().max(1);
        self.cols.iter().copied().zip(self.slab.chunks_exact(d))
    }

    /// Overwrites (or inserts) the packed row for column `c` — the
    /// MapReduce driver uses this to reassemble a partial from reduced
    /// `Row(c)` keys, which arrive in ascending order (append fast path).
    pub fn set_ytx_row(&mut self, c: u32, row: &[f64]) {
        let d = self.d();
        assert_eq!(row.len(), d, "set_ytx_row: row length is {} not {d}", row.len());
        match self.cols.binary_search(&c) {
            Ok(i) => self.slab[i * d..(i + 1) * d].copy_from_slice(row),
            Err(i) => {
                self.cols.insert(i, c);
                self.slab.splice(i * d..i * d, row.iter().copied());
            }
        }
    }

    /// Folds one sparse row into the accumulator, recomputing its latent
    /// vector on demand (the "redundant computation" of Section 3.2).
    pub fn add_row(&mut self, row: SparseRow<'_>, cm: &Mat, xm: &[f64]) {
        let x = latent_row(row, cm, xm);
        // XtX += x ⊗ x.
        let d = x.len();
        for i in 0..d {
            let xi = x[i];
            if xi != 0.0 {
                linalg::vector::axpy(xi, &x, &mut self.xtx.row_mut(i)[..]);
            }
        }
        // YtX: only the non-zero columns of y contribute to Σ y' ⊗ x.
        for (c, v) in row.iter() {
            let slot = self.slot_mut(c as u32);
            linalg::vector::axpy(v, &x, slot);
        }
        linalg::vector::axpy(1.0, &x, &mut self.sum_x);
        self.rows_seen += 1;
    }

    /// The packed slot for column `c`, inserted (zeroed) if absent.
    fn slot_mut(&mut self, c: u32) -> &mut [f64] {
        let d = self.d();
        let i = match self.cols.binary_search(&c) {
            Ok(i) => i,
            Err(i) => {
                self.cols.insert(i, c);
                self.slab.splice(i * d..i * d, std::iter::repeat(0.0).take(d));
                i
            }
        };
        &mut self.slab[i * d..(i + 1) * d]
    }

    /// Folds a whole partition block through the batched kernels on the
    /// process-global pool. See [`Self::add_block_with_pool`].
    pub fn add_block(&mut self, block: &SparseMat, cm: &Mat, xm: &[f64]) {
        self.add_block_with_pool(WorkerPool::global(), block, cm, xm)
    }

    /// Folds a whole partition block through the batched kernels:
    /// `X_blk = Y_blk·CM − 1⊗Xm` (threaded sparse GEMM into the reusable
    /// scratch — zero per-row allocation), `XtX += syrk_tn(X_blk)`,
    /// `YtX += spmm_tn(Y_blk, X_blk)` scattered into a packed slab keyed by
    /// a column-offset table built once per block, and `Σx` via per-row
    /// column sums.
    ///
    /// Starting from an empty accumulator this is bit-for-bit equal to
    /// folding the block's rows through [`Self::add_row`]: every kernel
    /// accumulates each output element in ascending-row order with the
    /// same per-element operations. Folding *multiple* blocks into one
    /// accumulator reassociates at block boundaries — exactly like
    /// [`Self::merge`] at partition boundaries, which is where the engines
    /// put them.
    pub fn add_block_with_pool(
        &mut self,
        pool: &WorkerPool,
        block: &SparseMat,
        cm: &Mat,
        xm: &[f64],
    ) {
        let d = self.d();
        assert_eq!(cm.cols(), d, "add_block: CM has {} columns, expected {d}", cm.cols());
        assert_eq!(block.cols(), cm.rows(), "add_block: block/CM inner dimensions differ");
        let n = block.rows();
        if n == 0 {
            return;
        }
        let z = block.nnz();
        // 2·z·d (Y·CM) + n·d (−Xm) + n·d·(d+1) (Gram) + 2·z·d (scatter) + n·d (Σx).
        let flops = (4 * z * d + n * d * (d + 3)) as u64;
        let _span = obs::span_lazy("em", || format!("ytx add_block {n}x{}x{d}", block.cols()))
            .with_flops(flops);

        // Column support + slab-offset table, one O(z) + O(D) pass.
        let mut map = vec![u32::MAX; block.cols()];
        for &c in block.col_indices() {
            map[c as usize] = 0;
        }
        let mut cols: Vec<u32> = Vec::new();
        for (c, slot) in map.iter_mut().enumerate() {
            if *slot == 0 {
                *slot = cols.len() as u32;
                cols.push(c as u32);
            }
        }

        // X_blk = Y·CM − 1⊗Xm: multiply first, then subtract — the exact
        // operation order of `latent_row`.
        let mut buf = match self.scratch.capacity() {
            0 => linalg::scratch::take_cleared(n * d),
            _ => std::mem::take(&mut self.scratch),
        };
        buf.clear();
        buf.resize(n * d, 0.0);
        linalg::kernels::sparse_mul_dense_into_with_pool(pool, block, cm, &mut buf);
        let mut x_blk = Mat::from_vec(n, d, buf);
        for r in 0..n {
            linalg::vector::axpy(-1.0, xm, x_blk.row_mut(r));
        }

        // XtX += X'X (upper-triangle kernel, mirrored once).
        let xtx_blk = linalg::kernels::syrk_tn_with_pool(pool, &x_blk);
        self.xtx.add_assign(&xtx_blk);

        // YtX: scatter Y'X straight into a fresh packed slab, then merge.
        let mut slab = linalg::scratch::take_zeroed(cols.len() * d);
        linalg::kernels::spmm_tn_packed_with_pool(pool, block, &x_blk, &map, &mut slab);
        self.merge_packed(cols, slab);

        // Σx: per-row adds in ascending order, straight into the
        // accumulator (the same association as the row-at-a-time fold).
        for r in 0..n {
            linalg::vector::axpy(1.0, x_blk.row(r), &mut self.sum_x);
        }
        self.rows_seen += n as u64;
        self.scratch = x_blk.into_vec();

        if let Some(c) = obs::collector() {
            let reg = c.registry();
            reg.counter("em.ytx.batch_rows").add(n as u64);
            reg.counter("em.ytx.flops").add(flops);
        }
    }

    /// [`Self::add_block_prec_with_pool`] on the process-global pool.
    pub fn add_block_prec(
        &mut self,
        block: &SparseMat,
        cm: &Mat,
        xm: &[f64],
        precision: Precision,
    ) {
        self.add_block_prec_with_pool(WorkerPool::global(), block, cm, xm, precision)
    }

    /// [`Self::add_block_with_pool`] with a selectable arithmetic arm.
    ///
    /// * [`Precision::F64`] dispatches to the unchanged double-precision
    ///   path — byte-for-byte the reference result.
    /// * [`Precision::F32`] narrows `CM` and `Xm` once per call, runs the
    ///   whole block pipeline (`Y·CM`, Gram, packed scatter, `Σx`) through
    ///   the `f32` kernels, and widens the per-block results into the
    ///   `f64` accumulator fields. Cross-block and cross-partition merges
    ///   stay in `f64`, so error does not compound across the reduction
    ///   tree.
    /// * [`Precision::Bf16AccF64`] rounds the block's values, `CM` and
    ///   `Xm` to bfloat16 and then runs the unchanged `f64` kernels —
    ///   representation error only, full-width accumulation.
    ///
    /// Every arm inherits the kernels' determinism contract, so each is
    /// bitwise reproducible across worker counts; only the *arms* differ
    /// from one another.
    pub fn add_block_prec_with_pool(
        &mut self,
        pool: &WorkerPool,
        block: &SparseMat,
        cm: &Mat,
        xm: &[f64],
        precision: Precision,
    ) {
        match precision {
            Precision::F64 => self.add_block_with_pool(pool, block, cm, xm),
            Precision::F32 => self.add_block_f32(pool, block, cm, xm),
            Precision::Bf16AccF64 => {
                let (block, cm, xm) = bf16_inputs(block, cm, xm);
                self.add_block_with_pool(pool, &block, &cm, &xm);
            }
        }
    }

    /// The `f32` arm of [`Self::add_block_prec_with_pool`]: same block
    /// pipeline and same ascending-row accumulation order as the `f64`
    /// path, in single precision end to end, widened once per block.
    fn add_block_f32(&mut self, pool: &WorkerPool, block: &SparseMat, cm: &Mat, xm: &[f64]) {
        let d = self.d();
        assert_eq!(cm.cols(), d, "add_block: CM has {} columns, expected {d}", cm.cols());
        assert_eq!(block.cols(), cm.rows(), "add_block: block/CM inner dimensions differ");
        let n = block.rows();
        if n == 0 {
            return;
        }
        let z = block.nnz();
        let flops = (4 * z * d + n * d * (d + 3)) as u64;
        let _span = obs::span_lazy("em", || {
            format!("ytx add_block f32 {n}x{}x{d}", block.cols())
        })
        .with_flops(flops);

        let cm32 = MatF32::from_f64(cm);
        let xm32: Vec<f32> = xm.iter().map(|&v| v as f32).collect();

        // Column support + slab-offset table, identical to the f64 path.
        let mut map = vec![u32::MAX; block.cols()];
        for &c in block.col_indices() {
            map[c as usize] = 0;
        }
        let mut cols: Vec<u32> = Vec::new();
        for (c, slot) in map.iter_mut().enumerate() {
            if *slot == 0 {
                *slot = cols.len() as u32;
                cols.push(c as u32);
            }
        }

        // X_blk = Y·CM − 1⊗Xm in f32.
        let mut x32 = MatF32::zeros(n, d);
        linalg::kernels_f32::sparse_mul_dense_f32_into_with_pool(
            pool,
            block,
            &cm32,
            x32.data_mut(),
        );
        for row in x32.data_mut().chunks_exact_mut(d) {
            for (o, &m) in row.iter_mut().zip(&xm32) {
                *o -= m;
            }
        }

        // XtX += X'X, widened element-wise after the f32 Gram.
        let xtx32 = linalg::kernels_f32::syrk_tn_f32_with_pool(pool, &x32);
        for (dst, &src) in self.xtx.data_mut().iter_mut().zip(xtx32.data()) {
            *dst += f64::from(src);
        }

        // YtX: f32 packed scatter, widened into a fresh f64 slab.
        let mut slab32 = vec![0.0f32; cols.len() * d];
        linalg::kernels_f32::spmm_tn_packed_f32_with_pool(pool, block, &x32, &map, &mut slab32);
        let slab: Vec<f64> = slab32.iter().map(|&v| f64::from(v)).collect();
        self.merge_packed(cols, slab);

        // Σx: f32 row sums in ascending order, widened once.
        let mut sum32 = vec![0.0f32; d];
        for row in x32.data().chunks_exact(d) {
            for (s, &v) in sum32.iter_mut().zip(row) {
                *s += v;
            }
        }
        for (dst, &src) in self.sum_x.iter_mut().zip(&sum32) {
            *dst += f64::from(src);
        }
        self.rows_seen += n as u64;

        if let Some(c) = obs::collector() {
            let reg = c.registry();
            reg.counter("em.ytx.batch_rows").add(n as u64);
            reg.counter("em.ytx.flops").add(flops);
        }
    }

    /// Merges another partial (accumulator semantics: associative add).
    pub fn merge(&mut self, mut other: YtxPartial) {
        self.xtx.add_assign(&other.xtx);
        self.merge_packed(std::mem::take(&mut other.cols), std::mem::take(&mut other.slab));
        linalg::vector::axpy(1.0, &other.sum_x, &mut self.sum_x);
        self.rows_seen += other.rows_seen;
        linalg::scratch::recycle(std::mem::take(&mut other.scratch));
    }

    /// Linear sorted merge of a packed (cols, slab) pair into this
    /// accumulator; shared columns add `other` onto `self`.
    fn merge_packed(&mut self, cols: Vec<u32>, slab: Vec<f64>) {
        if self.cols.is_empty() {
            self.cols = cols;
            self.slab = slab;
            return;
        }
        if cols.is_empty() {
            return;
        }
        let d = self.d();
        let mut out_cols = Vec::with_capacity(self.cols.len() + cols.len());
        let mut out_slab = linalg::scratch::take_cleared(out_cols.capacity() * d);
        let (mut i, mut j) = (0, 0);
        while i < self.cols.len() || j < cols.len() {
            let take_self = match (self.cols.get(i), cols.get(j)) {
                (Some(a), Some(b)) if a == b => {
                    let start = out_slab.len();
                    out_slab.extend_from_slice(&self.slab[i * d..(i + 1) * d]);
                    linalg::vector::axpy(1.0, &slab[j * d..(j + 1) * d], &mut out_slab[start..]);
                    out_cols.push(*a);
                    i += 1;
                    j += 1;
                    continue;
                }
                (Some(a), Some(b)) => a < b,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_self {
                out_cols.push(self.cols[i]);
                out_slab.extend_from_slice(&self.slab[i * d..(i + 1) * d]);
                i += 1;
            } else {
                out_cols.push(cols[j]);
                out_slab.extend_from_slice(&slab[j * d..(j + 1) * d]);
                j += 1;
            }
        }
        self.cols = out_cols;
        linalg::scratch::recycle(std::mem::replace(&mut self.slab, out_slab));
        linalg::scratch::recycle(slab);
    }

    /// Driver-side assembly of the dense `YtX = Σ y'⊗x − Ym' ⊗ Σx`
    /// (D × d).
    pub fn finalize_ytx(&self, mean: &[f64]) -> Mat {
        let d = self.d();
        let d_in = mean.len();
        let mut ytx = Mat::zeros(d_in, d);
        for (c, row) in self.ytx_iter() {
            ytx.row_mut(c as usize).copy_from_slice(row);
        }
        for (j, &m) in mean.iter().enumerate() {
            if m != 0.0 {
                linalg::vector::axpy(-m, &self.sum_x, ytx.row_mut(j));
            }
        }
        ytx
    }
}

impl ByteSized for YtxPartial {
    fn size_bytes(&self) -> u64 {
        let d = self.d() as u64;
        let xtx = 8 * d * d;
        let rows: u64 = self.cols.len() as u64 * (4 + 8 * d);
        xtx + rows + 8 * d + 8
    }
}

impl Wire for YtxPartial {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.xtx.encode_into(out);
        wire::write_uvarint(out, self.cols.len() as u64);
        wire::write_ascending_u32(out, &self.cols);
        for v in &self.slab {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.sum_x.encode_into(out);
        wire::write_uvarint(out, self.rows_seen);
    }

    fn encoded_size(&self) -> u64 {
        self.xtx.encoded_size()
            + wire::uvarint_len(self.cols.len() as u64)
            + wire::ascending_u32_len(&self.cols)
            + 8 * self.slab.len() as u64
            + self.sum_x.encoded_size()
            + wire::uvarint_len(self.rows_seen)
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let xtx = Mat::decode_from(r)?;
        let d = xtx.rows();
        if xtx.cols() != d {
            return Err(WireError::Malformed("YtxPartial xtx is not square"));
        }
        let n = r.ulen()?;
        let cols = wire::read_ascending_u32(r, n, u64::from(u32::MAX) + 1)?;
        let slab_len = n
            .checked_mul(d)
            .ok_or(WireError::Malformed("YtxPartial slab overflows"))?;
        let mut slab = Vec::with_capacity(slab_len.min(r.remaining() / 8 + 1));
        for _ in 0..slab_len {
            slab.push(r.f64_bits()?);
        }
        let sum_x = Vec::<f64>::decode_from(r)?;
        if sum_x.len() != d {
            return Err(WireError::Malformed("YtxPartial sum_x length mismatch"));
        }
        let rows_seen = r.uvarint()?;
        Ok(YtxPartial { xtx, cols, slab, sum_x, rows_seen, scratch: Vec::new() })
    }

    // v3 fast path: the touched-column set is strictly ascending, so it
    // bitpacks; the slab and sum_x ride the mode-tagged f64 payloads.
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        self.xtx.encode_v3_into(out, quantize);
        wire::write_uvarint(out, self.cols.len() as u64);
        wire::write_bitpacked_u32(out, &self.cols);
        wire::write_f64_slice_v3(out, &self.slab, quantize);
        self.sum_x.encode_v3_into(out, quantize);
        wire::write_uvarint(out, self.rows_seen);
    }

    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        self.xtx.encoded_size_v3(quantize)
            + wire::uvarint_len(self.cols.len() as u64)
            + wire::bitpacked_u32_len(&self.cols)
            + wire::f64_slice_v3_len(&self.slab, quantize)
            + self.sum_x.encoded_size_v3(quantize)
            + wire::uvarint_len(self.rows_seen)
    }

    fn decode_v3_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let xtx = Mat::decode_v3_from(r)?;
        let d = xtx.rows();
        if xtx.cols() != d {
            return Err(WireError::Malformed("YtxPartial xtx is not square"));
        }
        let n = r.ulen()?;
        let cols = wire::read_bitpacked_u32(r, n, u64::from(u32::MAX) + 1)?;
        let slab_len = n
            .checked_mul(d)
            .ok_or(WireError::Malformed("YtxPartial slab overflows"))?;
        let slab = wire::read_f64_slice_v3(r, slab_len)?;
        let sum_x = Vec::<f64>::decode_v3_from(r)?;
        if sum_x.len() != d {
            return Err(WireError::Malformed("YtxPartial sum_x length mismatch"));
        }
        let rows_seen = r.uvarint()?;
        Ok(YtxPartial { xtx, cols, slab, sum_x, rows_seen, scratch: Vec::new() })
    }
}

/// Current totals of the batched-path throughput counters
/// (`em.ytx.flops`, `em.ytx.batch_rows`) — zeros when tracing is off. The
/// engines diff a snapshot across each `YtXJob` to emit the per-iteration
/// counter samples `trace_report` renders.
pub fn ytx_counter_snapshot() -> (u64, u64) {
    match obs::collector() {
        Some(c) => {
            let reg = c.registry();
            (reg.counter("em.ytx.flops").get(), reg.counter("em.ytx.batch_rows").get())
        }
        None => (0, 0),
    }
}

/// One row's contribution to `Σᵢ xᵢ·(C'·yᵢ')`, the distributed part of
/// `ss3` (Algorithm 4, line 13), using the sparse-first associativity
/// order.
pub fn ss3_row(row: SparseRow<'_>, cm: &Mat, xm: &[f64], c_new: &Mat) -> f64 {
    let x = latent_row(row, cm, xm);
    // C'·y' over non-zeros of y: a d-vector in O(z·d).
    let d = x.len();
    let mut cy = vec![0.0; d];
    for (c, v) in row.iter() {
        linalg::vector::axpy(v, c_new.row(c), &mut cy);
    }
    linalg::vector::dot(&x, &cy)
}

/// A whole partition's contribution to `Σᵢ xᵢ·(C'·yᵢ')` through the
/// batched kernels, on the process-global pool.
pub fn ss3_block(block: &SparseMat, cm: &Mat, xm: &[f64], c_new: &Mat) -> f64 {
    ss3_block_with_pool(WorkerPool::global(), block, cm, xm, c_new)
}

/// [`ss3_block`] on an explicit pool: two blocked sparse GEMMs
/// (`X = Y·CM − 1⊗Xm` and `CY = Y·C_new`) and one dot product per row,
/// summed in ascending row order — bit-identical to summing
/// [`ss3_row`] over the block's rows on any pool size.
pub fn ss3_block_with_pool(
    pool: &WorkerPool,
    block: &SparseMat,
    cm: &Mat,
    xm: &[f64],
    c_new: &Mat,
) -> f64 {
    let n = block.rows();
    if n == 0 {
        return 0.0;
    }
    let mut x = linalg::kernels::sparse_mul_dense_with_pool(pool, block, cm);
    for r in 0..n {
        linalg::vector::axpy(-1.0, xm, x.row_mut(r));
    }
    let cy = linalg::kernels::sparse_mul_dense_with_pool(pool, block, c_new);
    let mut part = 0.0;
    for r in 0..n {
        part += linalg::vector::dot(x.row(r), cy.row(r));
    }
    part
}

/// [`ss3_block_prec_with_pool`] on the process-global pool.
pub fn ss3_block_prec(
    block: &SparseMat,
    cm: &Mat,
    xm: &[f64],
    c_new: &Mat,
    precision: Precision,
) -> f64 {
    ss3_block_prec_with_pool(WorkerPool::global(), block, cm, xm, c_new, precision)
}

/// [`ss3_block_with_pool`] with a selectable arithmetic arm — the same
/// per-arm contract as [`YtxPartial::add_block_prec_with_pool`].
pub fn ss3_block_prec_with_pool(
    pool: &WorkerPool,
    block: &SparseMat,
    cm: &Mat,
    xm: &[f64],
    c_new: &Mat,
    precision: Precision,
) -> f64 {
    match precision {
        Precision::F64 => ss3_block_with_pool(pool, block, cm, xm, c_new),
        Precision::F32 => {
            let n = block.rows();
            if n == 0 {
                return 0.0;
            }
            let d = cm.cols();
            let cm32 = MatF32::from_f64(cm);
            let xm32: Vec<f32> = xm.iter().map(|&v| v as f32).collect();
            let c32 = MatF32::from_f64(c_new);
            let mut x32 = MatF32::zeros(n, d);
            linalg::kernels_f32::sparse_mul_dense_f32_into_with_pool(
                pool,
                block,
                &cm32,
                x32.data_mut(),
            );
            for row in x32.data_mut().chunks_exact_mut(d) {
                for (o, &m) in row.iter_mut().zip(&xm32) {
                    *o -= m;
                }
            }
            let mut cy32 = MatF32::zeros(n, d);
            linalg::kernels_f32::sparse_mul_dense_f32_into_with_pool(
                pool,
                block,
                &c32,
                cy32.data_mut(),
            );
            // Per-row f32 dot products, summed in ascending row order in
            // f32, widened once per block.
            let mut part = 0.0f32;
            for (xr, cr) in x32.data().chunks_exact(d).zip(cy32.data().chunks_exact(d)) {
                let mut dot = 0.0f32;
                for (a, b) in xr.iter().zip(cr) {
                    dot += a * b;
                }
                part += dot;
            }
            f64::from(part)
        }
        Precision::Bf16AccF64 => {
            let (block, cm, xm) = bf16_inputs(block, cm, xm);
            let c_new = bf16_mat(c_new);
            ss3_block_with_pool(pool, &block, &cm, &xm, &c_new)
        }
    }
}

/// The bf16 arm's input rounding: block values, `CM` and `Xm` all rounded
/// to bfloat16, everything downstream unchanged `f64`.
fn bf16_inputs(block: &SparseMat, cm: &Mat, xm: &[f64]) -> (SparseMat, Mat, Vec<f64>) {
    (block.map_values(bf16_round), bf16_mat(cm), xm.iter().map(|&v| bf16_round(v)).collect())
}

fn bf16_mat(m: &Mat) -> Mat {
    let mut out = m.clone();
    for v in out.data_mut() {
        *v = bf16_round(*v);
    }
    out
}

/// Driver-side completion of ss3:
/// `ss3 = Σᵢ xᵢ·(C'yᵢ') − (Σᵢxᵢ)·(C'·Ym')`.
pub fn ss3_finalize(part: f64, sum_x: &[f64], c_new: &Mat, mean: &[f64]) -> f64 {
    let cy_mean = c_new.vecmat(mean);
    part - linalg::vector::dot(sum_x, &cy_mean)
}

/// Dense-oracle computation of `XtX`, `YtX` and `Σx` for tests: centers
/// the matrix explicitly and uses plain dense algebra.
pub fn dense_oracle(y: &SparseMat, mean: &[f64], cm: &Mat) -> (Mat, Mat, Vec<f64>) {
    let mut yc = y.to_dense();
    yc.sub_row_vector(mean);
    let x = yc.matmul(cm);
    let xtx = x.matmul_tn(&x);
    let ytx = yc.matmul_tn(&x);
    let mut sum_x = vec![0.0; cm.cols()];
    for r in 0..x.rows() {
        linalg::vector::axpy(1.0, x.row(r), &mut sum_x);
    }
    (xtx, ytx, sum_x)
}

/// The seed's HashMap-based row-at-a-time `YtXJob` accumulator, preserved
/// verbatim as the ablation arm of the batched EM path — the `mean_prop`
/// analog of `linalg::kernels::naive`. `bench_em` reports the batched
/// path's speedup over this, and the equivalence tests pin the two paths
/// bit-for-bit, so the comparison stays honest as the batched path
/// evolves.
pub mod rowwise {
    use std::collections::HashMap;

    use linalg::bytes::ByteSized;
    use linalg::sparse::SparseRow;
    use linalg::Mat;

    use super::latent_row;

    /// Row-at-a-time accumulator: fresh latent vector per row, HashMap
    /// probe per non-zero, unfused scalar axpys into `XtX`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RowwisePartial {
        /// `Σᵢ xᵢ ⊗ xᵢ` (d × d).
        pub xtx: Mat,
        /// `Σᵢ yᵢ' ⊗ xᵢ`, stored sparsely: only columns some row touched.
        pub ytx_rows: HashMap<u32, Vec<f64>>,
        /// `Σᵢ xᵢ` — the hoisted mean-correction vector.
        pub sum_x: Vec<f64>,
        /// Rows processed (for sanity checks).
        pub rows_seen: u64,
    }

    impl RowwisePartial {
        /// Empty accumulator for `d` components.
        pub fn new(d: usize) -> Self {
            RowwisePartial {
                xtx: Mat::zeros(d, d),
                ytx_rows: HashMap::new(),
                sum_x: vec![0.0; d],
                rows_seen: 0,
            }
        }

        /// Folds one sparse row into the accumulator.
        pub fn add_row(&mut self, row: SparseRow<'_>, cm: &Mat, xm: &[f64]) {
            let x = latent_row(row, cm, xm);
            let d = x.len();
            for i in 0..d {
                let xi = x[i];
                if xi != 0.0 {
                    linalg::vector::axpy(xi, &x, &mut self.xtx.row_mut(i)[..]);
                }
            }
            for (c, v) in row.iter() {
                let slot = self.ytx_rows.entry(c as u32).or_insert_with(|| vec![0.0; d]);
                linalg::vector::axpy(v, &x, slot);
            }
            linalg::vector::axpy(1.0, &x, &mut self.sum_x);
            self.rows_seen += 1;
        }

        /// Merges another partial (accumulator semantics: associative add).
        pub fn merge(&mut self, other: RowwisePartial) {
            self.xtx.add_assign(&other.xtx);
            for (c, row) in other.ytx_rows {
                match self.ytx_rows.entry(c) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        linalg::vector::axpy(1.0, &row, e.get_mut());
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(row);
                    }
                }
            }
            linalg::vector::axpy(1.0, &other.sum_x, &mut self.sum_x);
            self.rows_seen += other.rows_seen;
        }

        /// Driver-side assembly of the dense `YtX` (D × d).
        pub fn finalize_ytx(&self, mean: &[f64]) -> Mat {
            let d = self.sum_x.len();
            let d_in = mean.len();
            let mut ytx = Mat::zeros(d_in, d);
            for (&c, row) in &self.ytx_rows {
                ytx.row_mut(c as usize).copy_from_slice(row);
            }
            for (j, &m) in mean.iter().enumerate() {
                if m != 0.0 {
                    linalg::vector::axpy(-m, &self.sum_x, ytx.row_mut(j));
                }
            }
            ytx
        }
    }

    impl ByteSized for RowwisePartial {
        fn size_bytes(&self) -> u64 {
            let d = self.sum_x.len() as u64;
            let xtx = 8 * d * d;
            let rows: u64 = self.ytx_rows.len() as u64 * (4 + 8 * d);
            xtx + rows + 8 * d + 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Prng;

    fn fixture() -> (SparseMat, Vec<f64>, Mat, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(5);
        let y = SparseMat::from_triplets(
            6,
            8,
            &[
                (0, 0, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (2, 7, 1.0),
                (3, 1, 1.0),
                (4, 0, 1.0),
                (4, 4, 1.0),
                (5, 5, 1.0),
            ],
        );
        let mean = y.col_means();
        let cm = rng.normal_mat(8, 3);
        let xm = cm.vecmat(&mean);
        (y, mean, cm, xm)
    }

    #[test]
    fn latent_row_matches_dense_centering() {
        let (y, mean, cm, xm) = fixture();
        for r in 0..y.rows() {
            let fast = latent_row(y.row(r), &cm, &xm);
            let slow = latent_row_dense(y.row(r), &mean, &cm);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-12, "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn partial_matches_dense_oracle() {
        let (y, mean, cm, xm) = fixture();
        let mut p = YtxPartial::new(3);
        for r in 0..y.rows() {
            p.add_row(y.row(r), &cm, &xm);
        }
        let (xtx_o, ytx_o, sum_o) = dense_oracle(&y, &mean, &cm);
        assert!(p.xtx.approx_eq(&xtx_o, 1e-10), "XtX mismatch");
        let ytx = p.finalize_ytx(&mean);
        assert!(ytx.approx_eq(&ytx_o, 1e-10), "YtX mismatch");
        for (a, b) in p.sum_x.iter().zip(&sum_o) {
            assert!((a - b).abs() < 1e-10);
        }
        assert_eq!(p.rows_seen, 6);
    }

    #[test]
    fn add_block_is_bitwise_add_row() {
        let (y, _, cm, xm) = fixture();
        let mut by_row = YtxPartial::new(3);
        for r in 0..y.rows() {
            by_row.add_row(y.row(r), &cm, &xm);
        }
        let mut by_block = YtxPartial::new(3);
        by_block.add_block(&y, &cm, &xm);
        assert_eq!(by_row, by_block, "batched path diverged from row-at-a-time");
    }

    #[test]
    fn add_block_reuses_scratch_across_blocks() {
        let (y, _, cm, xm) = fixture();
        let mut p = YtxPartial::new(3);
        p.add_block(&y.row_block(0, 4), &cm, &xm);
        let cap = p.scratch.capacity();
        assert!(cap >= 4 * 3);
        p.add_block(&y.row_block(4, 6), &cm, &xm); // smaller block: same buffer
        assert_eq!(p.scratch.capacity(), cap, "scratch was reallocated");
        assert_eq!(p.rows_seen, 6);
    }

    #[test]
    fn rowwise_arm_matches_packed_add_row() {
        let (y, mean, cm, xm) = fixture();
        let mut packed = YtxPartial::new(3);
        let mut hash = rowwise::RowwisePartial::new(3);
        for r in 0..y.rows() {
            packed.add_row(y.row(r), &cm, &xm);
            hash.add_row(y.row(r), &cm, &xm);
        }
        assert_eq!(packed.xtx.max_abs_diff(&hash.xtx), 0.0);
        assert_eq!(packed.sum_x, hash.sum_x);
        assert_eq!(
            packed.finalize_ytx(&mean).max_abs_diff(&hash.finalize_ytx(&mean)),
            0.0
        );
    }

    #[test]
    fn merge_equals_single_pass() {
        let (y, mean, cm, xm) = fixture();
        let mut whole = YtxPartial::new(3);
        for r in 0..y.rows() {
            whole.add_row(y.row(r), &cm, &xm);
        }
        let mut a = YtxPartial::new(3);
        let mut b = YtxPartial::new(3);
        for r in 0..3 {
            a.add_row(y.row(r), &cm, &xm);
        }
        for r in 3..6 {
            b.add_row(y.row(r), &cm, &xm);
        }
        a.merge(b);
        assert!(a.xtx.approx_eq(&whole.xtx, 1e-12));
        assert!(a.finalize_ytx(&mean).approx_eq(&whole.finalize_ytx(&mean), 1e-12));
        assert_eq!(a.rows_seen, whole.rows_seen);
    }

    #[test]
    fn ytx_partial_stays_sparse() {
        // Only touched columns are stored — the property that keeps sPCA's
        // shuffle at O(z·d) instead of O(D·d).
        let (y, _, cm, xm) = fixture();
        let mut p = YtxPartial::new(3);
        p.add_row(y.row(0), &cm, &xm); // touches columns 0 and 3
        assert_eq!(p.touched_cols(), 2);
        assert!(p.ytx_row(0).is_some());
        assert!(p.ytx_row(3).is_some());
        assert!(p.ytx_row(1).is_none());
        assert_eq!(p.ytx_iter().map(|(c, _)| c).collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn set_ytx_row_inserts_and_overwrites() {
        let mut p = YtxPartial::new(2);
        p.set_ytx_row(5, &[1.0, 2.0]);
        p.set_ytx_row(1, &[3.0, 4.0]);
        p.set_ytx_row(5, &[9.0, 9.0]);
        assert_eq!(p.ytx_iter().collect::<Vec<_>>(), vec![
            (1, &[3.0, 4.0][..]),
            (5, &[9.0, 9.0][..]),
        ]);
    }

    #[test]
    fn ss3_matches_dense_oracle() {
        let (y, mean, cm, xm) = fixture();
        let mut rng = Prng::seed_from_u64(9);
        let c_new = rng.normal_mat(8, 3);

        let part: f64 = (0..y.rows()).map(|r| ss3_row(y.row(r), &cm, &xm, &c_new)).sum();
        let mut p = YtxPartial::new(3);
        for r in 0..y.rows() {
            p.add_row(y.row(r), &cm, &xm);
        }
        let fast = ss3_finalize(part, &p.sum_x, &c_new, &mean);

        // Oracle: Σ xᵢ · (C'·ycᵢ') densely.
        let mut yc = y.to_dense();
        yc.sub_row_vector(&mean);
        let x = yc.matmul(&cm);
        let cy = yc.matmul(&c_new); // N×d rows = C'·ycᵢ'
        let slow: f64 =
            (0..x.rows()).map(|r| linalg::vector::dot(x.row(r), cy.row(r))).sum();
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn ss3_block_is_bitwise_row_sum() {
        let (y, _, cm, xm) = fixture();
        let mut rng = Prng::seed_from_u64(9);
        let c_new = rng.normal_mat(8, 3);
        let by_row: f64 = (0..y.rows()).map(|r| ss3_row(y.row(r), &cm, &xm, &c_new)).sum();
        let by_block = ss3_block(&y, &cm, &xm, &c_new);
        assert_eq!(by_row.to_bits(), by_block.to_bits());
    }

    #[test]
    fn byte_size_reflects_sparsity() {
        let mut p = YtxPartial::new(4);
        let before = p.size_bytes();
        let y = SparseMat::from_triplets(1, 10, &[(0, 2, 1.0)]);
        let cm = Mat::zeros(10, 4);
        p.add_row(y.row(0), &cm, &[0.0; 4]);
        assert_eq!(p.size_bytes() - before, 4 + 8 * 4);
    }
}
