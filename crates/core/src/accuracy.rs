//! The paper's accuracy metric (Section 5, "Performance Metrics").
//!
//! Accuracy is measured through the 1-norm of the reconstruction error on a
//! random row subset: `e = ‖Yr − Ŷr‖₁ / ‖Yr‖₁`, where `Ŷr` reconstructs
//! each sampled row through the model (`x = (y−μ)·CM`, `ŷ = x·C' + μ`).
//! Progress is reported as a percentage of the *ideal* accuracy — the
//! error a long reference run converges to.

use linalg::{Prng, SparseMat};

use crate::model::PcaModel;
use crate::Result;

/// Relative 1-norm reconstruction error over the given (sampled) rows.
pub fn reconstruction_error(sample: &SparseMat, model: &PcaModel) -> Result<f64> {
    assert_eq!(sample.cols(), model.input_dim(), "sample dimensionality mismatch");
    if sample.rows() == 0 {
        return Ok(0.0);
    }
    let x = model.transform_sparse(sample)?;
    let d_in = model.input_dim();
    let c = model.components();
    let mean = model.mean();

    let mut err_sum = 0.0;
    let mut norm_sum = 0.0;
    let mut recon = vec![0.0; d_in];
    for r in 0..sample.rows() {
        // ŷ = x·C' + μ, built row by row to avoid a dense N×D buffer.
        let xr = x.row(r);
        for (j, slot) in recon.iter_mut().enumerate() {
            *slot = linalg::vector::dot(xr, c.row(j)) + mean[j];
        }
        // ‖y − ŷ‖₁ over a sparse y: correct the dense term at non-zeros.
        let mut row_err: f64 = recon.iter().map(|v| v.abs()).sum();
        for (cidx, v) in sample.row(r).iter() {
            row_err += (v - recon[cidx]).abs() - recon[cidx].abs();
        }
        err_sum += row_err;
        norm_sum += sample.row(r).values.iter().map(|v| v.abs()).sum::<f64>();
    }
    if norm_sum == 0.0 {
        return Ok(if err_sum == 0.0 { 0.0 } else { f64::INFINITY });
    }
    Ok(err_sum / norm_sum)
}

/// Draws the row sample used for error estimation throughout a run.
pub fn sample_rows(y: &SparseMat, rows: usize, seed: u64) -> SparseMat {
    let k = rows.min(y.rows());
    let mut rng = Prng::seed_from_u64(seed ^ 0xacc);
    let idx = rng.sample_indices(y.rows(), k);
    y.select_rows(&idx)
}

/// Percentage of the ideal accuracy achieved: `100·e_ideal/e`, capped at
/// 100. Reaches 100 when the run matches the reference error and falls
/// toward 0 as the reconstruction degrades. (The ratio form is used
/// because on very sparse binary data the relative 1-norm error of even a
/// converged model can exceed 1 — the dense reconstruction spreads small
/// junk over every column — which would make an additive `1−e` scale
/// degenerate.)
pub fn percent_of_ideal(error: f64, ideal_error: f64) -> f64 {
    assert!(ideal_error >= 0.0 && error >= 0.0, "errors are non-negative");
    if error <= ideal_error {
        return 100.0;
    }
    if error == 0.0 {
        return 100.0;
    }
    (100.0 * ideal_error / error).clamp(0.0, 100.0)
}

/// The error corresponding to `percent`% of ideal accuracy under the
/// [`percent_of_ideal`] scale — e.g. the paper's "time to reach 95% of the
/// ideal accuracy" is `time_to_error(target_error_for(e_ideal, 95.0))`.
pub fn target_error_for(ideal_error: f64, percent: f64) -> f64 {
    assert!(percent > 0.0 && percent <= 100.0, "percent in (0, 100]");
    ideal_error * 100.0 / percent
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Mat;

    fn tiny_model() -> PcaModel {
        // C = e1, mean = 0: model reconstructs the first coordinate only.
        let mut c = Mat::zeros(3, 1);
        c[(0, 0)] = 1.0;
        PcaModel::new(c, vec![0.0; 3], 1e-9)
    }

    #[test]
    fn perfect_model_has_near_zero_error() {
        // Data entirely along e1 is perfectly reconstructed.
        let y = SparseMat::from_triplets(3, 3, &[(0, 0, 1.0), (1, 0, 2.0), (2, 0, 3.0)]);
        let e = reconstruction_error(&y, &tiny_model()).unwrap();
        assert!(e < 1e-6, "error {e}");
    }

    #[test]
    fn orthogonal_data_has_full_error() {
        // Data along e2 cannot be reconstructed at all: e = 1.
        let y = SparseMat::from_triplets(2, 3, &[(0, 1, 1.0), (1, 1, 2.0)]);
        let e = reconstruction_error(&y, &tiny_model()).unwrap();
        assert!((e - 1.0).abs() < 1e-9, "error {e}");
    }

    #[test]
    fn empty_sample_is_zero_error() {
        let y = SparseMat::from_rows(0, 3, vec![]);
        assert_eq!(reconstruction_error(&y, &tiny_model()).unwrap(), 0.0);
    }

    #[test]
    fn sample_rows_is_deterministic_and_bounded() {
        let y = SparseMat::from_triplets(
            10,
            4,
            &(0..10).map(|r| (r, (r % 4) as u32, 1.0)).collect::<Vec<_>>(),
        );
        let a = sample_rows(&y, 5, 7);
        let b = sample_rows(&y, 5, 7);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 5);
        let all = sample_rows(&y, 100, 7);
        assert_eq!(all.rows(), 10, "sample size caps at N");
    }

    #[test]
    fn percent_scale_endpoints() {
        assert_eq!(percent_of_ideal(0.3, 0.3), 100.0);
        assert!((percent_of_ideal(0.6, 0.3) - 50.0).abs() < 1e-12);
        assert!(percent_of_ideal(30.0, 0.3) <= 1.0);
        assert_eq!(percent_of_ideal(0.2, 0.3), 100.0, "capped at 100");
        // Works when even the ideal error exceeds 1 (sparse binary data).
        assert_eq!(percent_of_ideal(1.6, 1.6), 100.0);
        assert!((percent_of_ideal(3.2, 1.6) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn target_error_inverts_percent() {
        let ideal = 1.61;
        let target = target_error_for(ideal, 95.0);
        assert!((percent_of_ideal(target, ideal) - 95.0).abs() < 1e-9);
        assert_eq!(target_error_for(ideal, 100.0), ideal);
    }
}
