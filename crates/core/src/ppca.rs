//! Reference single-machine PPCA — the paper's Algorithm 1, verbatim
//! (with the EM-correct `N·ss·M⁻¹` term; see DESIGN.md).
//!
//! This is the *unoptimized* baseline everything else is validated
//! against: it densifies, it materializes `X`, it mean-centers explicitly.
//! The distributed sPCA implementations must produce numerically identical
//! iterates from the same seed — that equivalence is what "our
//! optimization ideas do not change any theoretical properties of PPCA"
//! means operationally, and it is asserted in the integration tests.

use linalg::decomp::cholesky::solve_spd_right;
use linalg::decomp::lu::Lu;
use linalg::Mat;

use crate::error::SpcaError;
use crate::init::random_init;
use crate::model::PcaModel;
use crate::Result;

/// Per-iteration state exposed to tests.
#[derive(Debug, Clone)]
pub struct PpcaTrace {
    /// `C` after each iteration.
    pub c_history: Vec<Mat>,
    /// `ss` after each iteration.
    pub ss_history: Vec<f64>,
}

/// Fits PPCA on a dense matrix by EM (Algorithm 1).
pub fn fit_dense(y: &Mat, d: usize, iterations: usize, seed: u64) -> Result<(PcaModel, PpcaTrace)> {
    let n = y.rows();
    let d_in = y.cols();
    if n == 0 || d_in == 0 {
        return Err(SpcaError::EmptyInput);
    }
    if d > d_in.min(n) {
        return Err(SpcaError::TooManyComponents { requested: d, available: d_in.min(n) });
    }

    // Lines 1–4: initialize and mean-center (the reference *does* densify).
    let (mut c, mut ss) = random_init(d_in, d, seed);
    let mean = y.col_means();
    let mut yc = y.clone();
    yc.sub_row_vector(&mean);
    let ss1 = yc.frobenius_sq();

    let mut trace = PpcaTrace { c_history: Vec::new(), ss_history: Vec::new() };

    let _run_span = obs::span_lazy("run", || format!("ppca::fit_dense N={n} D={d_in} d={d}"));
    for iter in 0..iterations {
        let _iter_span = obs::span_lazy("iteration", || format!("ppca iteration {}", iter + 1));
        // Line 6: M = C'C + ss·I.
        let mut m = c.matmul_tn(&c);
        m.add_diag(ss);
        let m_inv = Lu::new(&m)?.inverse();
        // Line 7: X = Yc·C·M⁻¹.
        let cm = c.matmul(&m_inv);
        let x = yc.matmul(&cm);
        // Line 8 (EM-complete): XtX = X'X + N·ss·M⁻¹.
        let mut xtx = x.matmul_tn(&x);
        xtx.add_scaled(n as f64 * ss, &m_inv);
        // Line 9: YtX = Yc'·X.
        let ytx = yc.matmul_tn(&x);
        // Line 10: C = YtX / XtX.
        let c_new = solve_spd_right(&xtx, &ytx)?;
        // Line 11: ss2 = tr(XtX·C'C).
        let ctc = c_new.matmul_tn(&c_new);
        let ss2 = xtx.matmul(&ctc).trace();
        // Line 12: ss3 = Σₙ Xₙ·C'·Ycₙ'.
        let p = yc.matmul(&c_new);
        let ss3: f64 =
            (0..n).map(|r| linalg::vector::dot(x.row(r), p.row(r))).sum();
        // Line 13: ss = (‖Yc‖² + ss2 − 2·ss3)/N/D.
        c = c_new;
        ss = ((ss1 + ss2 - 2.0 * ss3) / (n as f64) / (d_in as f64)).max(1e-12);

        trace.c_history.push(c.clone());
        trace.ss_history.push(ss);
        obs::host_counter("ppca.ss", ss);
    }

    Ok((PcaModel::new(c, mean, ss), trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::decomp::{qr_thin, svd_jacobi};
    use linalg::Prng;

    /// Low-rank + noise data with a known principal subspace.
    fn planted_data(n: usize, d_in: usize, rank: usize, noise: f64, seed: u64) -> (Mat, Mat) {
        let mut rng = Prng::seed_from_u64(seed);
        let basis = qr_thin(&rng.normal_mat(d_in, rank)).q; // d_in × rank
        let latent = rng.normal_mat(n, rank);
        let mut y = latent.matmul(&basis.transpose());
        y.scale(3.0);
        // Non-zero per-column mean (constant within each column, so the
        // mean-centering step removes it exactly).
        for r in 0..n {
            for (j, v) in y.row_mut(r).iter_mut().enumerate() {
                *v += 0.5 * ((j % 7) as f64);
            }
        }
        let e = rng.normal_mat(n, d_in);
        y.add_scaled(noise, &e);
        (y, basis)
    }

    /// Largest principal angle (as cosine deficit) between the column
    /// spaces of two orthonormal-izable matrices.
    fn subspace_alignment(a: &Mat, b: &Mat) -> f64 {
        let qa = qr_thin(a).q;
        let qb = qr_thin(b).q;
        let overlap = qa.matmul_tn(&qb);
        let svd = svd_jacobi(&overlap).unwrap();
        // Smallest singular value of Qa'Qb = cos(largest principal angle).
        *svd.s.last().unwrap()
    }

    #[test]
    fn recovers_planted_subspace() {
        let (y, basis) = planted_data(300, 12, 3, 0.05, 1);
        let (model, _) = fit_dense(&y, 3, 30, 42).unwrap();
        let align = subspace_alignment(model.components(), &basis);
        assert!(align > 0.99, "subspace alignment {align}");
    }

    #[test]
    fn ss_converges_to_noise_floor() {
        let noise = 0.2;
        let (y, _) = planted_data(400, 10, 2, noise, 2);
        let (model, trace) = fit_dense(&y, 2, 40, 7).unwrap();
        // ss estimates the residual variance per dimension ≈ noise².
        let ss = model.noise_variance();
        assert!(
            ss > noise * noise * 0.5 && ss < noise * noise * 2.0,
            "ss {ss} vs noise² {}",
            noise * noise
        );
        // And the trajectory is eventually non-increasing-ish: final below first.
        assert!(trace.ss_history.last().unwrap() < &trace.ss_history[0]);
    }

    #[test]
    fn matches_svd_subspace_on_clean_data() {
        let (y, _) = planted_data(200, 8, 2, 0.01, 3);
        let (model, _) = fit_dense(&y, 2, 40, 11).unwrap();
        // Compare against the top-2 right singular vectors of centered Y.
        let mean = y.col_means();
        let mut yc = y.clone();
        yc.sub_row_vector(&mean);
        let svd = svd_jacobi(&yc).unwrap();
        let mut top = Mat::zeros(8, 2);
        for j in 0..2 {
            for r in 0..8 {
                top[(r, j)] = svd.vt[(j, r)];
            }
        }
        let align = subspace_alignment(model.components(), &top);
        assert!(align > 0.999, "alignment with SVD subspace {align}");
    }

    #[test]
    fn mean_is_exact() {
        let (y, _) = planted_data(100, 6, 2, 0.1, 4);
        let (model, _) = fit_dense(&y, 2, 5, 1).unwrap();
        for (a, b) in model.mean().iter().zip(y.col_means()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_empty_and_oversized() {
        let empty = Mat::zeros(0, 5);
        assert!(matches!(fit_dense(&empty, 1, 5, 0), Err(SpcaError::EmptyInput)));
        let y = Mat::zeros(4, 3);
        assert!(matches!(
            fit_dense(&y, 4, 5, 0),
            Err(SpcaError::TooManyComponents { requested: 4, available: 3 })
        ));
    }

    #[test]
    fn likelihood_proxy_improves_monotonically_in_practice() {
        // EM guarantees non-decreasing likelihood; on well-conditioned data
        // the reconstruction error through the model should shrink.
        let (y, _) = planted_data(250, 10, 3, 0.1, 5);
        let (_, trace) = fit_dense(&y, 3, 15, 3).unwrap();
        let first = trace.ss_history[0];
        let last = *trace.ss_history.last().unwrap();
        assert!(last < first, "ss should shrink: {first} → {last}");
    }
}
