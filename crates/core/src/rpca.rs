//! Randomized subspace iteration as a competing algorithm family.
//!
//! Implements randomized PCA (Halko et al., arXiv:1007.5510; distributed
//! formulation after Li/Kluger/Tygert, arXiv:1612.08709) on both simulated
//! engines, selected via `SpcaConfig::with_algorithm(Algorithm::Randomized)`.
//! Where EM runs *many thin iterations* (two small accumulator jobs per
//! iteration), randomized iteration runs *few fat passes*: each pass
//! broadcasts the D×K sketch basis `W`, streams the sparse input once, and
//! ships one D×K covariance-sketch partial per partition back to the
//! driver.
//!
//! Per pass, partition `p` computes with the batched kernels
//!
//! ```text
//! P_p    = Y_p·W − 1⊗(Wᵀμ)          (its slab of the centered range sketch)
//! Zraw_p = Y_pᵀ·P_p                  (spmm_tn)
//! t_p    = 1ᵀP_p                     (column sums of the slab)
//! ```
//!
//! and the driver folds the partials **sequentially in partition order**:
//!
//! ```text
//! Z = Σ_p Zraw_p − μ⊗(Σ_p t_p)  =  YcᵀYc·W        (Yc = Y − 1⊗μ)
//! ```
//!
//! so the N×K sketch `Q` is never materialized or shuffled — the paper's
//! minimized-intermediate-data discipline carried over to the challenger.
//! The driver then recovers the current top-d model from the small D×K `Z`
//! (`top_singular_triplets`), re-orthonormalizes `Z` into the next basis
//! (`orthonormal_columns`), and repeats for `q` power passes.
//!
//! **Bitwise determinism.** EM's two engines agree only to round-off
//! (their reduction trees differ); the randomized arm is held to a harder
//! bar — the *same* model hash across engines, worker counts, timing
//! models and fault plans. Three design rules buy that: both engines split
//! rows with the same `split_rows` layout, both run the identical
//! `pass_partial` kernel per partition, and every cross-partition fold
//! happens on the driver in partition index order (the MapReduce path keys
//! partials by partition index, so its sorted job output *is* partition
//! order; the Spark path `collect`s, which preserves partition order).
//! The engines still differ in what they charge — Spark persists the RDD
//! and pays per-partition collect flows, MapReduce pays job init, spills
//! and shuffle — which is exactly the comparison the three-way bench
//! measures.

use dcluster::SimCluster;
use linalg::decomp::{orthonormal_columns, top_singular_triplets};
use linalg::sparse::SparseRow;
use linalg::{Mat, SparseMat};
use mapreduce::{Emitter, MapReduceEngine, MapReduceJob};
use sparkle::{Lineage, Rdd, SparkleContext};

use crate::accuracy;
use crate::checkpoint::{self, EmCheckpoint};
use crate::config::SpcaConfig;
use crate::error::SpcaError;
use crate::frobenius;
use crate::model::{IterationStat, PcaModel, SpcaRun};
use crate::spark::{partition_range, to_rows, SpRow};
use crate::Result;

/// One partition's pass contribution: (`Zraw_p` = Y_pᵀP_p, `t_p` = 1ᵀP_p).
/// Travels as a plain tuple — `Mat` and `Vec<f64>` are `Wire`, so the
/// partial moves through the versioned codec like every other intermediate.
pub type PassPartial = (Mat, Vec<f64>);

/// The distributed surface of the randomized driver, one impl per engine.
/// Every method returns *per-partition* partials in partition index order;
/// all folding happens in [`run_rpca`] so both engines reduce identically.
pub trait RpcaJobs {
    /// Number of input rows N.
    fn num_rows(&self) -> usize;
    /// Number of input columns D.
    fn num_cols(&self) -> usize;
    /// Per-partition column sums of `Y` (one vector per partition).
    fn colsum_job(&mut self) -> Vec<Vec<f64>>;
    /// Per-partition centered squared-Frobenius partials (Algorithm 3).
    fn fnorm_job(&mut self, mean: &[f64], mean_norm_sq: f64) -> Vec<f64>;
    /// One fat pass: broadcast `w` (D×K) and `shift = Wᵀμ`, return each
    /// partition's [`PassPartial`].
    fn pass_job(&mut self, w: &Mat, shift: &[f64], pass: usize) -> Vec<PassPartial>;
}

/// The per-partition pass kernel, shared verbatim by both engines so their
/// partials are bit-identical. `block` is the partition's CSR slab.
pub(crate) fn pass_partial(block: &SparseMat, w: &Mat, shift: &[f64]) -> PassPartial {
    // P = Y_p·W − 1⊗shift: the centered range-sketch slab, via the batched
    // sparse-dense kernel (row layout is deterministic on any pool size).
    let mut p = block.mul_dense(w);
    for r in 0..p.rows() {
        linalg::vector::axpy(-1.0, shift, p.row_mut(r));
    }
    let mut colsum = vec![0.0; w.cols()];
    for r in 0..p.rows() {
        linalg::vector::axpy(1.0, p.row(r), &mut colsum);
    }
    let zraw = linalg::kernels::spmm_tn(block, &p);
    (zraw, colsum)
}

/// Runs the randomized driver loop over the given engine jobs.
///
/// `error_sample` is the pre-drawn row sample for the per-pass accuracy
/// estimate — instrumentation, charged to neither engine (same contract as
/// `run_em`).
pub fn run_rpca(
    cluster: &SimCluster,
    jobs: &mut dyn RpcaJobs,
    error_sample: &SparseMat,
    config: &SpcaConfig,
) -> Result<SpcaRun> {
    let n = jobs.num_rows();
    let d_in = jobs.num_cols();
    let d = config.components;
    if n == 0 || d_in == 0 {
        return Err(SpcaError::EmptyInput);
    }
    if d > d_in.min(n) {
        return Err(SpcaError::TooManyComponents { requested: d, available: d_in.min(n) });
    }
    config.validate(d_in)?;
    let k = d + config.rpca_oversample;
    // Total distributed passes: the range sketch plus q power iterations.
    let passes = config.rpca_power_iters + 1;

    let start_metrics = cluster.metrics();
    let start_time = start_metrics.virtual_time_secs;
    let start_intermediate = start_metrics.intermediate_bytes;
    let ledger_on = obs::ledger::sink_enabled();
    let mut ledger_rows: Vec<obs::ledger::IterationRow> = Vec::new();

    let _run_host_span = obs::span_lazy("run", || format!("run_rpca N={n} D={d_in} d={d} K={k}"));
    if obs::enabled() {
        cluster.trace_begin(
            "run",
            "run_rpca",
            vec![
                ("N", (n as u64).into()),
                ("D", (d_in as u64).into()),
                ("d", (d as u64).into()),
                ("K", (k as u64).into()),
                ("passes", (passes as u64).into()),
                ("codec", cluster.wire_codec().label().into()),
            ],
        );
    }

    // The driver holds W, Z, the small SVD factors and the mean — all
    // O(D·K), the same no-D² guarantee as the EM driver (Figure 8).
    let driver_bytes = 4 * (d_in * k * 8) as u64 + (d_in * 8) as u64;
    let _driver_guard = cluster.alloc_driver(driver_bytes)?;

    // One-time jobs, folded in partition order. Also re-run on a resume:
    // deterministic, so recomputation reproduces the original values.
    let mut colsum = vec![0.0; d_in];
    for part in jobs.colsum_job() {
        linalg::vector::axpy(1.0, &part, &mut colsum);
    }
    let mut mean = colsum;
    linalg::vector::scale(1.0 / n as f64, &mut mean);
    let mean_norm_sq = linalg::vector::norm2_sq(&mean);
    let fnorm_c: f64 = jobs.fnorm_job(&mean, mean_norm_sq).into_iter().sum();

    // Seeded Gaussian test matrix Ω (D×K): the only randomness in the
    // whole arm, derived from the config seed alone.
    let mut w = linalg::Prng::seed_from_u64(config.seed ^ 0x03e6a).normal_mat(d_in, k);

    let mut iterations: Vec<IterationStat> = Vec::new();
    let mut prev_error = f64::INFINITY;
    let mut final_state: Option<(Mat, f64)> = None;

    // Resume: the blob layout is shared with EM (`W` travels in the `c`
    // slot) but under a distinct DFS name, so the two arms' crash state
    // can never cross-contaminate. Anything unreadable is a fresh start.
    let mut start_pass = 1;
    let checkpoint_file = checkpoint::rpca_file_name(config.job_id.as_deref());
    if config.checkpoint_every.is_some() {
        let restored = cluster
            .dfs()
            .get_blob(cluster, &checkpoint_file)
            .ok()
            .and_then(|blob| EmCheckpoint::decode(&blob).ok())
            .filter(|ck| (ck.c.rows(), ck.c.cols()) == (d_in, k));
        if let Some(ck) = restored {
            cluster.note_checkpoint_restored(ck.iteration as u64);
            start_pass = ck.iteration + 1;
            prev_error = ck.prev_error;
            w = ck.c;
        }
    }

    for pass in start_pass..=passes {
        let pass_cat_start = cluster.category_time_us();
        if obs::enabled() {
            cluster.trace_begin("iteration", &format!("pass {pass}"), Vec::new());
        }
        let _pass_host_span = obs::span_lazy("iteration", || format!("rpca pass {pass}"));

        // Driver: shift = Wᵀμ, so tasks center their sketch slab without
        // ever touching a dense D-vector per row.
        let shift = w.vecmat(&mean);

        // The fat pass (distributed): per-partition covariance-sketch
        // partials, folded sequentially in partition order.
        let partials = jobs.pass_job(&w, &shift, pass);
        let (mut z, mut tsum) = (Mat::zeros(d_in, k), vec![0.0; k]);
        {
            let _s = obs::span("driver", "rpca driver fold");
            for (zraw, t) in &partials {
                z.add_assign(zraw);
                linalg::vector::axpy(1.0, t, &mut tsum);
            }
            // Mean correction: Z = YᵀP − μ⊗(1ᵀP) = YcᵀP.
            for j in 0..d_in {
                linalg::vector::axpy(-mean[j], &tsum, z.row_mut(j));
            }
        }

        // Driver: recover the current top-d model from the small sketch.
        // Z = YcᵀYc·W has singular values ≤ σᵢ²(Yc), so the captured
        // energy Σ_{i<d} sᵢ(Z) never exceeds ‖Yc‖²_F and the residual
        // noise estimate stays non-negative by construction.
        let (c, ss, captured) = cluster.run_driver("rpca/recover", || -> Result<_> {
            let svd = top_singular_triplets(&z, d).map_err(SpcaError::Numeric)?;
            let captured: f64 = svd.s.iter().sum();
            let residual = (fnorm_c - captured).max(0.0);
            let free_dims = (n * (d_in - d)).max(1) as f64;
            let ss = (residual / free_dims).max(1e-12);
            Ok((svd.u, ss, captured))
        })?;

        // Instrumentation: sampled reconstruction error (not charged).
        let model = PcaModel::new(c.clone(), mean.clone(), ss);
        let error = accuracy::reconstruction_error(error_sample, &model)?;
        iterations.push(IterationStat {
            iteration: pass,
            error,
            ss,
            virtual_time_secs: cluster.metrics().virtual_time_secs - start_time,
        });
        final_state = Some((c, ss));

        // Convergence telemetry: fraction of centered energy the top-d
        // sketch captures — the randomized analogue of EM's objective.
        let objective = captured / fnorm_c.max(f64::MIN_POSITIVE);
        let pass_cat_end = cluster.category_time_us();
        let mut cat_us = [0u64; 5];
        for (i, slot) in cat_us.iter_mut().enumerate() {
            *slot = pass_cat_end[i].saturating_sub(pass_cat_start[i]);
        }
        if obs::enabled() {
            cluster.trace_counter("rpca.error", error);
            cluster.trace_counter("rpca.ss", ss);
            cluster.trace_counter("rpca.objective", objective);
            for (i, name) in obs::critpath::CATEGORIES.iter().enumerate() {
                cluster.trace_counter(&format!("rpca.pass.{name}_secs"), cat_us[i] as f64 / 1e6);
            }
            cluster.trace_end(
                "iteration",
                &format!("pass {pass}"),
                vec![("error", error.into()), ("objective", objective.into())],
            );
        }
        if ledger_on {
            ledger_rows.push(obs::ledger::IterationRow {
                iteration: pass as u64,
                error,
                objective,
                // No reduced-precision arms on the randomized path (yet):
                // the precision knob is inert here, as for f64 EM.
                divergence: f64::NAN,
                virtual_secs: cluster.metrics().virtual_time_secs - start_time,
                cat_us,
            });
        }

        // Next basis: re-orthonormalize the sketch on the driver (the
        // power-iteration step — cheap at D×K, no distributed TSQR
        // needed because Z already lives on the driver).
        w = cluster.run_driver("rpca/orthonormalize", || orthonormal_columns(&z));

        // Pass-boundary checkpoint, written before the stop checks so a
        // crash at any point resumes to exactly this state.
        if let Some(every) = config.checkpoint_every {
            if pass % every == 0 {
                let blob =
                    EmCheckpoint { iteration: pass, c: w.clone(), ss, prev_error: error }.encode();
                let bytes = blob.len() as u64;
                cluster.dfs().put_blob(cluster, checkpoint_file.clone(), blob);
                cluster.note_checkpoint_written(pass as u64, bytes);
            }
        }
        // Injected driver crash (fault testing): state is on the DFS (if
        // checkpointing is on); the next fit on this cluster resumes.
        if config.crash_at_iteration == Some(pass) {
            return Err(SpcaError::DriverCrashed { iteration: pass });
        }

        // STOP_CONDITION — same knobs as EM.
        if let Some(target) = config.target_error {
            if error <= target {
                break;
            }
        }
        if let Some(tol) = config.rel_tolerance {
            if prev_error.is_finite() && (prev_error - error).abs() <= tol * prev_error.abs() {
                break;
            }
        }
        prev_error = error;
    }

    // The run completed: its checkpoint (if any) is spent.
    if config.checkpoint_every.is_some() {
        let _ = cluster.dfs().delete(&checkpoint_file);
    }

    if obs::enabled() {
        cluster.trace_end("run", "run_rpca", vec![("passes", (iterations.len() as u64).into())]);
    }
    let (c, ss) = final_state.expect("at least one pass runs");
    let end = cluster.metrics();
    let model = PcaModel::new(c, mean, ss);
    if ledger_on {
        let mut fingerprint = config.fingerprint();
        fingerprint.extend(cluster.config().fingerprint());
        fingerprint.push(("engine".to_string(), cluster.trace_label()));
        fingerprint.sort();
        let mut attribution_us = [0u64; 5];
        for (i, slot) in attribution_us.iter_mut().enumerate() {
            *slot = end.time_us[i].saturating_sub(start_metrics.time_us[i]);
        }
        obs::ledger::record_run(obs::ledger::RunRecord {
            label: cluster.trace_label(),
            config: fingerprint,
            model_hash: format!("{:016x}", model.content_hash()),
            iterations_run: iterations.len() as u64,
            final_error: iterations.last().map_or(f64::INFINITY, |s| s.error),
            virtual_time_secs: end.virtual_time_secs - start_time,
            bytes: vec![
                ("network_bytes".into(), end.network_bytes - start_metrics.network_bytes),
                (
                    "dfs_bytes_written".into(),
                    end.dfs_bytes_written - start_metrics.dfs_bytes_written,
                ),
                ("dfs_bytes_read".into(), end.dfs_bytes_read - start_metrics.dfs_bytes_read),
                ("intermediate_bytes".into(), end.intermediate_bytes - start_intermediate),
            ],
            attribution_us,
            clock_violations: end.clock_violations - start_metrics.clock_violations,
            registry: cluster.registry().snapshot(),
            iterations: ledger_rows,
        });
    }
    Ok(SpcaRun {
        model,
        iterations,
        virtual_time_secs: end.virtual_time_secs - start_time,
        intermediate_bytes: end.intermediate_bytes - start_intermediate,
    })
}

// ---------------------------------------------------------------------------
// Spark-like engine
// ---------------------------------------------------------------------------

struct SparkRpcaJobs<'a> {
    rdd: Rdd<'a, SpRow>,
    n: usize,
    d_in: usize,
}

impl RpcaJobs for SparkRpcaJobs<'_> {
    fn num_rows(&self) -> usize {
        self.n
    }

    fn num_cols(&self) -> usize {
        self.d_in
    }

    fn colsum_job(&mut self) -> Vec<Vec<f64>> {
        let d_in = self.d_in;
        self.rdd
            .map_partitions("rpca/colsumJob", |part| {
                let views: Vec<SparseRow> = part.iter().map(SpRow::view).collect();
                vec![SparseMat::from_row_views(d_in, &views).col_sums()]
            })
            .collect()
    }

    fn fnorm_job(&mut self, mean: &[f64], mean_norm_sq: f64) -> Vec<f64> {
        let d_in = self.d_in;
        self.rdd
            .map_partitions("rpca/FnormJob", |part| {
                let views: Vec<SparseRow> = part.iter().map(SpRow::view).collect();
                let block = SparseMat::from_row_views(d_in, &views);
                vec![frobenius::centered_sq_block(&block, mean, mean_norm_sq)]
            })
            .collect()
    }

    fn pass_job(&mut self, w: &Mat, shift: &[f64], pass: usize) -> Vec<PassPartial> {
        // Broadcast the pass's basis W (D×K) and shift vector to every
        // node — the fat part of the fat pass, priced like every other
        // broadcast.
        let cluster = self.rdd.cluster();
        cluster.charge_broadcast(cluster.wire_size(w) + cluster.sizing().f64_payload(shift.len()));
        let d_in = self.d_in;
        self.rdd
            .map_partitions(&format!("rpca/pass{pass}"), |part| {
                let views: Vec<SparseRow> = part.iter().map(SpRow::view).collect();
                let block = SparseMat::from_row_views(d_in, &views);
                vec![pass_partial(&block, w, shift)]
            })
            // collect() preserves partition order and charges one flow
            // per partition — the D×K partial each executor ships home.
            .collect()
    }
}

/// Fits randomized PCA on the Spark-like engine. Input pipeline (DFS
/// seeding, persisted RDD with re-read lineage, job scoping) is identical
/// to the EM path, so fault plans and multi-tenant scoping compose
/// unchanged.
pub fn fit_spark(cluster: &SimCluster, y: &SparseMat, config: &SpcaConfig) -> Result<SpcaRun> {
    config.validate(y.cols())?;
    let input_file = crate::scoped_input(config, "input/Y");
    let run = (|| {
        if obs::enabled() {
            cluster.set_trace_label("rPCA-Spark");
        }
        cluster.set_job_scope(config.job_id.as_deref());
        let ctx = SparkleContext::new(cluster);
        let partitions = config
            .partitions
            .unwrap_or_else(|| cluster.config().total_cores())
            .min(y.rows().max(1));

        cluster.dfs().seed(cluster, &input_file, cluster.wire_size(y));

        let blocks: Vec<Vec<SpRow>> = y.split_rows(partitions).iter().map(to_rows).collect();
        let mut rdd = ctx.from_partitions(blocks);
        let n_rows = y.rows();
        let lineage_input = input_file.clone();
        rdd.persist_with_lineage(
            Lineage::new(
                vec![format!("textFile({lineage_input})"), "parse".into()],
                Box::new(move |p| {
                    let (start, len) = partition_range(n_rows, partitions, p);
                    to_rows(&y.row_block(start, start + len))
                }),
            )
            .with_source(&input_file),
        );

        let error_sample = accuracy::sample_rows(y, config.error_sample_rows, config.seed);
        let mut jobs = SparkRpcaJobs { rdd, n: y.rows(), d_in: y.cols() };
        run_rpca(cluster, &mut jobs, &error_sample, config)
    })();
    cluster.set_job_scope(None);
    run
}

// ---------------------------------------------------------------------------
// MapReduce engine
// ---------------------------------------------------------------------------
//
// Unlike the EM jobs (which reduce across partitions at the reducers), the
// randomized jobs key every partial by its *partition index*: exactly one
// value per key, so the reducer is an identity pass-through and the sorted
// job output is the partials in partition order — the property the
// cross-engine bitwise bar rests on. The engine still meters the partials
// as shuffle data (they really do cross the network to wherever the
// driver-side fold runs) and still pays job init, spills and re-execution.

/// `colsumJob`: per-partition column sums, keyed by partition.
struct ColsumJob;

impl MapReduceJob for ColsumJob {
    type Input = (u32, SparseMat);
    type Key = u32;
    type Value = Vec<f64>;
    type Output = Vec<f64>;

    fn map(&self, block: &(u32, SparseMat), emitter: &mut Emitter<u32, Vec<f64>>) {
        emitter.emit(block.0, block.1.col_sums());
    }

    fn reduce(&self, _key: u32, mut values: Vec<Vec<f64>>) -> Vec<f64> {
        values.pop().expect("one partial per partition key")
    }
}

/// `FnormJob`: per-partition Algorithm-3 partial, keyed by partition.
struct RpcaFnormJob {
    mean: Vec<f64>,
    mean_norm_sq: f64,
}

impl MapReduceJob for RpcaFnormJob {
    type Input = (u32, SparseMat);
    type Key = u32;
    type Value = f64;
    type Output = f64;

    fn map(&self, block: &(u32, SparseMat), emitter: &mut Emitter<u32, f64>) {
        emitter.emit(block.0, frobenius::centered_sq_block(&block.1, &self.mean, self.mean_norm_sq));
    }

    fn reduce(&self, _key: u32, mut values: Vec<f64>) -> f64 {
        values.pop().expect("one partial per partition key")
    }
}

/// The fat pass: stateful mapper runs the shared kernel once per block and
/// emits its D×K partial under its partition key.
struct PassJob {
    w: Mat,
    shift: Vec<f64>,
}

impl MapReduceJob for PassJob {
    type Input = (u32, SparseMat);
    type Key = u32;
    type Value = PassPartial;
    type Output = PassPartial;

    fn map(&self, block: &(u32, SparseMat), emitter: &mut Emitter<u32, PassPartial>) {
        emitter.emit(block.0, pass_partial(&block.1, &self.w, &self.shift));
    }

    fn reduce(&self, _key: u32, mut values: Vec<PassPartial>) -> PassPartial {
        values.pop().expect("one partial per partition key")
    }
}

struct MrRpcaJobs<'a> {
    engine: MapReduceEngine<'a>,
    blocks: Vec<(u32, SparseMat)>,
    n: usize,
    d_in: usize,
    reducers: usize,
}

impl RpcaJobs for MrRpcaJobs<'_> {
    fn num_rows(&self) -> usize {
        self.n
    }

    fn num_cols(&self) -> usize {
        self.d_in
    }

    fn colsum_job(&mut self) -> Vec<Vec<f64>> {
        let (out, _) = self.engine.run_job("rpca/colsumJob", &ColsumJob, &self.blocks, 1);
        out.into_iter().map(|(_, v)| v).collect()
    }

    fn fnorm_job(&mut self, mean: &[f64], mean_norm_sq: f64) -> Vec<f64> {
        let job = RpcaFnormJob { mean: mean.to_vec(), mean_norm_sq };
        let (out, _) = self.engine.run_job("rpca/FnormJob", &job, &self.blocks, 1);
        out.into_iter().map(|(_, v)| v).collect()
    }

    fn pass_job(&mut self, w: &Mat, shift: &[f64], pass: usize) -> Vec<PassPartial> {
        // Distributed-cache shipment of W and the shift vector (each MR
        // job re-reads its cache; nothing persists across jobs).
        let cluster = self.engine.cluster();
        cluster.charge_broadcast(cluster.wire_size(w) + cluster.sizing().f64_payload(shift.len()));
        let job = PassJob { w: w.clone(), shift: shift.to_vec() };
        let (out, _) =
            self.engine.run_job(&format!("rpca/pass{pass}"), &job, &self.blocks, self.reducers);
        out.into_iter().map(|(_, v)| v).collect()
    }
}

/// Fits randomized PCA on the MapReduce engine: HDFS-materialized input,
/// per-job overheads, partials metered as shuffle data.
pub fn fit_mapreduce(cluster: &SimCluster, y: &SparseMat, config: &SpcaConfig) -> Result<SpcaRun> {
    config.validate(y.cols())?;
    let input_file = crate::scoped_input(config, "input/Y");
    let run = (|| {
        if obs::enabled() {
            cluster.set_trace_label("rPCA-MR");
        }
        cluster.set_job_scope(config.job_id.as_deref());
        let partitions = config
            .partitions
            .unwrap_or_else(|| cluster.config().total_cores())
            .min(y.rows().max(1));
        let blocks: Vec<(u32, SparseMat)> = y
            .split_rows(partitions)
            .into_iter()
            .enumerate()
            .map(|(i, b)| (i as u32, b))
            .collect();

        cluster.dfs().seed(cluster, &input_file, cluster.wire_size(y));

        let error_sample = accuracy::sample_rows(y, config.error_sample_rows, config.seed);
        let reducers = cluster.config().nodes.max(1);
        let mut jobs = MrRpcaJobs {
            engine: MapReduceEngine::new(cluster),
            blocks,
            n: y.rows(),
            d_in: y.cols(),
            reducers,
        };
        run_rpca(cluster, &mut jobs, &error_sample, config)
    })();
    cluster.set_job_scope(None);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use dcluster::ClusterConfig;

    fn lowrank() -> SparseMat {
        let mut rng = linalg::Prng::seed_from_u64(7);
        let spec = datasets::LowRankSpec::small_test();
        datasets::sparse_lowrank(&spec, &mut rng)
    }

    fn config() -> SpcaConfig {
        SpcaConfig::new(3)
            .with_algorithm(Algorithm::Randomized)
            .with_rpca_oversample(4)
            .with_rpca_power_iters(2)
            .with_rel_tolerance(None)
    }

    #[test]
    fn randomized_fit_runs_and_improves() {
        let y = lowrank();
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let run = fit_spark(&cluster, &y, &config()).unwrap();
        assert_eq!(run.model.output_dim(), 3);
        assert_eq!(run.iterations.len(), 3, "q + 1 passes");
        assert!(run.final_error() <= run.iterations[0].error * 1.0 + 1e-12);
        assert!(run.model.noise_variance() > 0.0);
        assert!(run.virtual_time_secs > 0.0);
        assert!(run.intermediate_bytes > 0);
    }

    #[test]
    fn engines_agree_bitwise() {
        let y = lowrank();
        let c1 = SimCluster::new(ClusterConfig::paper_cluster());
        let spark = fit_spark(&c1, &y, &config()).unwrap();
        let c2 = SimCluster::new(ClusterConfig::paper_cluster());
        let mr = fit_mapreduce(&c2, &y, &config()).unwrap();
        assert_eq!(
            spark.model.content_hash(),
            mr.model.content_hash(),
            "randomized models must be bitwise identical across engines"
        );
        // MapReduce pays job overheads the Spark engine does not.
        assert!(mr.virtual_time_secs > spark.virtual_time_secs);
    }

    #[test]
    fn pass_partial_matches_direct_computation() {
        let y = lowrank();
        let mut rng = linalg::Prng::seed_from_u64(11);
        let w = rng.normal_mat(y.cols(), 5);
        let mean = y.col_means();
        let shift = w.vecmat(&mean);
        let (zraw, colsum) = pass_partial(&y, &w, &shift);
        // Reference: dense Yc, P = Yc·W, Z = YᵀP, t = 1ᵀP.
        let mut yc = y.to_dense();
        yc.sub_row_vector(&mean);
        let p_ref = yc.matmul(&w);
        for j in 0..w.cols() {
            let t: f64 = (0..y.rows()).map(|r| p_ref[(r, j)]).sum();
            assert!((colsum[j] - t).abs() <= 1e-9 * (1.0 + t.abs()));
        }
        // Driver-side fold of a single partition reproduces YcᵀYc·W.
        let mut z = zraw;
        for j in 0..y.cols() {
            linalg::vector::axpy(-mean[j], &colsum, z.row_mut(j));
        }
        let z_ref = yc.matmul_tn(&p_ref);
        assert!(z.approx_eq(&z_ref, 1e-8), "max diff {:.3e}", z.max_abs_diff(&z_ref));
    }
}
