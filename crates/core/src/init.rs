//! Initialization of `C` and `ss`: random (Algorithm 4, lines 1–2) and
//! smart-guess (sPCA-SG, Section 5.2).

use dcluster::SimCluster;
use linalg::{Mat, Prng, SparseMat};

use crate::config::{SmartGuess, SpcaConfig};
use crate::Result;

/// Random initialization — the paper's `C = normrnd(D, d)`,
/// `ss = normrnd(1,1)` (made positive: a non-positive variance is
/// meaningless and the reference implementation clamps it too).
pub fn random_init(d_in: usize, d: usize, seed: u64) -> (Mat, f64) {
    let mut rng = Prng::seed_from_u64(seed);
    let c = rng.normal_mat(d_in, d);
    let ss = rng.normal().powi(2) + 0.5;
    (c, ss)
}

/// Smart-guess initialization: fit on a small random row sample and return
/// the resulting `(C, ss)` as the starting point for the full run.
///
/// The paper notes this is only possible because sPCA's state is the small
/// D×d matrix `C` — independent of N — whereas Mahout-PCA's random
/// initialization has N rows and cannot be transplanted from a sample.
pub fn smart_guess_init(
    cluster: &SimCluster,
    y: &SparseMat,
    config: &SpcaConfig,
    sg: &SmartGuess,
) -> Result<(Mat, f64)> {
    assert!(sg.sample_fraction > 0.0 && sg.sample_fraction <= 1.0, "bad sample fraction");
    let want = ((y.rows() as f64) * sg.sample_fraction).ceil() as usize;
    // Enough rows for the EM to see a d-dimensional subspace.
    let k = want.max(2 * config.components + 2).min(y.rows());
    let mut rng = Prng::seed_from_u64(config.seed ^ 0x5650);
    let idx = rng.sample_indices(y.rows(), k);
    let sample = y.select_rows(&idx);

    // The warm-up must not inherit fault knobs: checkpointing would
    // collide with the full run's checkpoint file, and an injected crash
    // belongs to the main loop only.
    let warm_config = SpcaConfig {
        smart_guess: None,
        max_iters: sg.iterations,
        rel_tolerance: None,
        target_error: None,
        checkpoint_every: None,
        crash_at_iteration: None,
        ..config.clone()
    };
    let run = crate::spark::fit_with_input(
        cluster,
        &sample,
        &warm_config,
        &crate::scoped_input(&warm_config, "input/Y.sample"),
    )?;
    Ok((run.model.components().clone(), run.model.noise_variance()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_shapes_and_positivity() {
        let (c, ss) = random_init(20, 4, 1);
        assert_eq!((c.rows(), c.cols()), (20, 4));
        assert!(ss > 0.0);
    }

    #[test]
    fn random_init_is_seeded() {
        let (c1, s1) = random_init(5, 2, 9);
        let (c2, s2) = random_init(5, 2, 9);
        assert!(c1.approx_eq(&c2, 0.0));
        assert_eq!(s1, s2);
        let (c3, _) = random_init(5, 2, 10);
        assert!(!c1.approx_eq(&c3, 1e-9));
    }
}
