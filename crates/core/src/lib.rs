//! sPCA: scalable probabilistic principal component analysis.
//!
//! This crate is the paper's primary contribution (Sections 3–4): an
//! Expectation–Maximization implementation of probabilistic PCA
//! restructured for distributed execution, with four optimizations —
//!
//! 1. **Mean propagation** ([`mean_prop`]) — never subtract the column
//!    means from the sparse input; push the mean algebraically through
//!    every product so all distributed work stays O(nnz).
//! 2. **Minimized intermediate data** ([`em`]) — the large latent matrix
//!    `X` is never stored or shuffled; each job recomputes its rows
//!    on demand from the broadcast `CM` matrix, and the `XtX`/`YtX` jobs
//!    are consolidated into one pass.
//! 3. **In-memory matrix multiplication** — the small matrices (`C`, `M⁻¹`,
//!    `CM`) are broadcast to every task; each sparse row is multiplied
//!    against them locally (Section 3.3's Equation (2) pattern is used for
//!    the transpose products).
//! 4. **Sparse Frobenius norm** ([`frobenius`]) — Algorithm 3 computes
//!    `‖Y − 1⊗Ym‖²_F` touching non-zeros only.
//!
//! Entry points: [`Spca::fit_spark`] and [`Spca::fit_mapreduce`] run the
//! full distributed algorithm on the two simulated platforms; [`ppca`]
//! holds the single-machine reference implementation (the paper's
//! Algorithm 1) the distributed versions are tested against; [`missing`]
//! and [`mixture`] implement the two PPCA extensions Section 2.4 credits
//! the probabilistic formulation with (EM under missing values, mixtures
//! of PPCA).

pub mod ablation;
pub mod accuracy;
pub mod checkpoint;
pub mod config;
pub mod em;
pub mod error;
pub mod frobenius;
pub mod init;
pub mod likelihood;
pub mod mean_prop;
pub mod missing;
pub mod mixture;
pub mod model;
pub mod mr;
pub mod ppca;
pub mod rpca;
pub mod serving;
pub mod spark;

pub use config::{Algorithm, SpcaConfig};
pub use error::SpcaError;
pub use model::{IterationStat, PcaModel, SpcaRun};

use dcluster::SimCluster;
use linalg::SparseMat;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SpcaError>;

/// DFS name for a fit's materialized input: the legacy shared `name`
/// when the config carries no job id, `jobs/<id>/<name>` otherwise
/// (mirrors [`checkpoint::file_name`] for checkpoints).
pub(crate) fn scoped_input(config: &SpcaConfig, name: &str) -> String {
    match config.job_id.as_deref() {
        Some(job) => dcluster::hdfs::job_scoped(job, name),
        None => name.to_string(),
    }
}

/// The sPCA algorithm, configured and ready to fit.
///
/// ```
/// use dcluster::{ClusterConfig, SimCluster};
/// use linalg::Prng;
/// use spca_core::{Spca, SpcaConfig};
///
/// let mut rng = Prng::seed_from_u64(1);
/// let spec = datasets::LowRankSpec::small_test();
/// let y = datasets::sparse_lowrank(&spec, &mut rng);
///
/// let cluster = SimCluster::new(ClusterConfig::paper_cluster());
/// let run = Spca::new(SpcaConfig::new(3).with_max_iters(5))
///     .fit_spark(&cluster, &y)
///     .unwrap();
/// assert_eq!(run.model.components().cols(), 3);
/// // EM improves the sampled reconstruction error monotonically here.
/// assert!(run.final_error() <= run.iterations[0].error);
/// ```
#[derive(Debug, Clone)]
pub struct Spca {
    config: SpcaConfig,
}

impl Spca {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: SpcaConfig) -> Self {
        Spca { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SpcaConfig {
        &self.config
    }

    /// Fits on the Spark-like engine. For the default [`Algorithm::PpcaEm`]
    /// this is Algorithm 4 + Algorithm 5 (accumulator-based `YtX`/`XtX`
    /// job, cached input RDD, millisecond task overheads); with
    /// [`Algorithm::Randomized`] it runs the fat-pass subspace iteration
    /// of [`rpca`] over the same persisted RDD.
    pub fn fit_spark(&self, cluster: &SimCluster, y: &SparseMat) -> Result<SpcaRun> {
        spark::fit(cluster, y, &self.config)
    }

    /// Fits on the MapReduce engine (Section 4.1): stateful-combiner
    /// mappers, composite shuffle keys, per-job Hadoop overheads,
    /// intermediate data through the simulated DFS. Dispatches on
    /// [`SpcaConfig::algorithm`] like [`Self::fit_spark`].
    pub fn fit_mapreduce(&self, cluster: &SimCluster, y: &SparseMat) -> Result<SpcaRun> {
        mr::fit(cluster, y, &self.config)
    }
}
