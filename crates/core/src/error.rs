//! Error type for the sPCA algorithms.

use std::fmt;

use dcluster::ClusterError;
use linalg::LinalgError;

/// Failures surfaced by PCA fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum SpcaError {
    /// The input matrix has no rows or no columns.
    EmptyInput,
    /// More components requested than the data supports.
    TooManyComponents {
        /// Requested component count.
        requested: usize,
        /// min(N, D) of the input.
        available: usize,
    },
    /// A numeric routine failed (singular M, non-convergent eigensolver…).
    Numeric(LinalgError),
    /// The simulated cluster refused a resource (driver OOM — the MLlib
    /// failure mode of Figures 7–8).
    Cluster(ClusterError),
    /// The simulated driver crashed mid-run (fault injection via
    /// `SpcaConfig::with_crash_at_iteration`). Re-running `fit` on the
    /// same cluster resumes from the last checkpoint.
    DriverCrashed {
        /// The iteration the crash interrupted.
        iteration: usize,
    },
    /// A checkpoint blob failed to decode.
    CorruptCheckpoint {
        /// What the decoder objected to.
        reason: String,
    },
    /// A serving workload was mis-specified (a tenant serving without a
    /// fitted model, an empty request stream, a zero batch…). Rejected
    /// at validation, before any virtual time is charged.
    InvalidServing {
        /// Human-readable description of the offending spec.
        what: String,
    },
    /// A fit configuration was mis-specified (nonsensical randomized
    /// knobs: zero oversampling, no power passes on a declared-noisy
    /// spectrum, sketch wider than the input). Rejected by
    /// `SpcaConfig::validate` before any cluster work is charged.
    InvalidConfig {
        /// Human-readable description of the offending knob combination.
        what: String,
    },
}

impl fmt::Display for SpcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpcaError::EmptyInput => write!(f, "input matrix is empty"),
            SpcaError::TooManyComponents { requested, available } => write!(
                f,
                "requested {requested} principal components but the data supports at most {available}"
            ),
            SpcaError::Numeric(e) => write!(f, "numeric failure: {e}"),
            SpcaError::Cluster(e) => write!(f, "cluster failure: {e}"),
            SpcaError::DriverCrashed { iteration } => {
                write!(f, "driver crashed during EM iteration {iteration}; re-run to resume")
            }
            SpcaError::CorruptCheckpoint { reason } => {
                write!(f, "checkpoint is corrupt: {reason}")
            }
            SpcaError::InvalidServing { what } => {
                write!(f, "invalid serving spec: {what}")
            }
            SpcaError::InvalidConfig { what } => {
                write!(f, "invalid fit config: {what}")
            }
        }
    }
}

impl std::error::Error for SpcaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpcaError::Numeric(e) => Some(e),
            SpcaError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SpcaError {
    fn from(e: LinalgError) -> Self {
        SpcaError::Numeric(e)
    }
}

impl From<ClusterError> for SpcaError {
    fn from(e: ClusterError) -> Self {
        SpcaError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SpcaError::TooManyComponents { requested: 60, available: 50 };
        assert!(e.to_string().contains("60"));

        let e: SpcaError = LinalgError::Singular { routine: "lu", pivot: 0.0 }.into();
        assert!(std::error::Error::source(&e).is_some());

        let e: SpcaError =
            ClusterError::DriverOom { requested: 1, in_use: 0, limit: 0 }.into();
        assert!(e.to_string().contains("driver"));

        let e = SpcaError::InvalidServing { what: "tenant 0 has no model".into() };
        assert!(e.to_string().contains("tenant 0"));

        let e = SpcaError::InvalidConfig { what: "rpca_oversample = 0".into() };
        assert!(e.to_string().contains("invalid fit config"));
        assert!(e.to_string().contains("rpca_oversample"));
    }
}
