//! Iteration-boundary EM checkpoints.
//!
//! The EM driver's whole state between iterations is tiny — `C` (D×d),
//! `ss`, and the previous sampled error — so checkpointing it to the DFS
//! costs one small write per interval and turns a driver crash from a
//! restart into a resume. The encoding stores every `f64` as its raw IEEE
//! bits (little-endian), so a resumed run continues from *exactly* the
//! state the uninterrupted run had — the bitwise-identical-model
//! invariant extends across crashes.

use std::sync::Arc;

use linalg::Mat;

use crate::error::SpcaError;

/// DFS name the EM driver checkpoints under (one in-flight run per
/// cluster, like a Hadoop job's staging directory).
pub const CHECKPOINT_FILE: &str = "_checkpoints/em-state";

const MAGIC: &[u8; 8] = b"SPCACKPT";
const VERSION: u32 = 1;

/// EM state at the end of iteration `iteration`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmCheckpoint {
    /// The completed iteration this state belongs to.
    pub iteration: usize,
    /// Principal-subspace matrix `C` after that iteration.
    pub c: Mat,
    /// Noise variance `ss` after that iteration.
    pub ss: f64,
    /// Sampled reconstruction error of that iteration (the next
    /// iteration's stop-condition baseline).
    pub prev_error: f64,
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SpcaError> {
        if self.pos + n > self.buf.len() {
            return Err(SpcaError::CorruptCheckpoint {
                reason: format!("truncated at byte {} (wanted {n} more)", self.pos),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, SpcaError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, SpcaError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl EmCheckpoint {
    /// Serializes to the binary blob stored in the DFS.
    pub fn encode(&self) -> Vec<u8> {
        let (rows, cols) = (self.c.rows(), self.c.cols());
        let mut out = Vec::with_capacity(8 + 4 + 8 * 4 + rows * cols * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        push_u64(&mut out, self.iteration as u64);
        push_u64(&mut out, rows as u64);
        push_u64(&mut out, cols as u64);
        push_f64(&mut out, self.ss);
        push_f64(&mut out, self.prev_error);
        for &v in self.c.data() {
            push_f64(&mut out, v);
        }
        out
    }

    /// Parses a blob produced by [`EmCheckpoint::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, SpcaError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(SpcaError::CorruptCheckpoint { reason: "bad magic".into() });
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SpcaError::CorruptCheckpoint {
                reason: format!("unsupported version {version}"),
            });
        }
        let iteration = r.u64()? as usize;
        let rows = r.u64()? as usize;
        let cols = r.u64()? as usize;
        let ss = r.f64()?;
        let prev_error = r.f64()?;
        if rows.checked_mul(cols).is_none() || buf.len() != r.pos + rows * cols * 8 {
            return Err(SpcaError::CorruptCheckpoint {
                reason: format!("payload size does not match {rows}x{cols} matrix"),
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(r.f64()?);
        }
        Ok(EmCheckpoint { iteration, c: Mat::from_vec(rows, cols, data), ss, prev_error })
    }

    /// Decodes a shared DFS blob (convenience for the common call shape).
    pub fn decode_arc(blob: &Arc<Vec<u8>>) -> Result<Self, SpcaError> {
        EmCheckpoint::decode(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmCheckpoint {
        let data: Vec<f64> =
            (0..12).map(|i| (i as f64 + 0.25) * if i % 2 == 0 { 1.0 } else { -1e-9 }).collect();
        EmCheckpoint {
            iteration: 7,
            c: Mat::from_vec(4, 3, data),
            ss: 3.25e-4,
            prev_error: 0.421875,
        }
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let ck = sample();
        let decoded = EmCheckpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded.iteration, ck.iteration);
        assert_eq!(decoded.ss.to_bits(), ck.ss.to_bits());
        assert_eq!(decoded.prev_error.to_bits(), ck.prev_error.to_bits());
        let same = decoded
            .c
            .data()
            .iter()
            .zip(ck.c.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "C must round-trip bit-for-bit");
    }

    #[test]
    fn roundtrip_preserves_non_finite_error() {
        // A checkpoint written before any stop check has prev_error = +inf.
        let mut ck = sample();
        ck.prev_error = f64::INFINITY;
        let decoded = EmCheckpoint::decode(&ck.encode()).unwrap();
        assert!(decoded.prev_error.is_infinite());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            EmCheckpoint::decode(b"not a checkpoint"),
            Err(SpcaError::CorruptCheckpoint { .. })
        ));
        let mut truncated = sample().encode();
        truncated.truncate(truncated.len() - 1);
        assert!(matches!(
            EmCheckpoint::decode(&truncated),
            Err(SpcaError::CorruptCheckpoint { .. })
        ));
        let mut wrong_magic = sample().encode();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            EmCheckpoint::decode(&wrong_magic),
            Err(SpcaError::CorruptCheckpoint { .. })
        ));
    }
}
