//! Iteration-boundary EM checkpoints.
//!
//! The EM driver's whole state between iterations is tiny — `C` (D×d),
//! `ss`, and the previous sampled error — so checkpointing it to the DFS
//! costs one small write per interval and turns a driver crash from a
//! restart into a resume. The encoding stores every `f64` as its raw IEEE
//! bits (little-endian), so a resumed run continues from *exactly* the
//! state the uninterrupted run had — the bitwise-identical-model
//! invariant extends across crashes.
//!
//! Format history: v1 stored the integer header fields as fixed 8-byte
//! little-endian words; v2 (current) uses the `linalg::wire` varint
//! primitives for them. [`EmCheckpoint::decode`] reads both — a resumed
//! run must be able to pick up a checkpoint written before an upgrade —
//! while [`EmCheckpoint::encode`] always writes v2. Both versions share
//! the `SPCACKPT` magic and raw-IEEE-bits f64 payload; a committed v1
//! golden fixture pins the read-compat path.

use std::sync::Arc;

use linalg::wire::{write_uvarint, WireError, WireReader};
use linalg::Mat;

use crate::error::SpcaError;

/// DFS name the EM driver checkpoints under (one in-flight run per
/// cluster, like a Hadoop job's staging directory).
pub const CHECKPOINT_FILE: &str = "_checkpoints/em-state";

/// The checkpoint's DFS name for a fit, scoped to its job id when one is
/// set. A job-less fit keeps the legacy shared [`CHECKPOINT_FILE`] name;
/// multi-tenant fits get `jobs/<job>/_checkpoints/em-state`, so tenant
/// A's `SPCACKPT` blob can never collide with tenant B's.
pub fn file_name(job: Option<&str>) -> String {
    match job {
        Some(job) => dcluster::hdfs::job_scoped(job, CHECKPOINT_FILE),
        None => CHECKPOINT_FILE.to_string(),
    }
}

/// DFS name of the randomized-arm pass checkpoint. Deliberately distinct
/// from the EM name: the blob layout is shared (`EmCheckpoint` carries the
/// D×K basis `W` in its `c` slot), but an EM resume must never pick up a
/// randomized basis or vice versa — the separate name makes the two arms'
/// crash-recovery state mutually invisible.
pub const RPCA_CHECKPOINT_FILE: &str = "_checkpoints/rpca-state";

/// Job-scoped variant of [`RPCA_CHECKPOINT_FILE`], mirroring [`file_name`].
pub fn rpca_file_name(job: Option<&str>) -> String {
    match job {
        Some(job) => dcluster::hdfs::job_scoped(job, RPCA_CHECKPOINT_FILE),
        None => RPCA_CHECKPOINT_FILE.to_string(),
    }
}

const MAGIC: &[u8; 8] = b"SPCACKPT";
const VERSION: u32 = 2;
/// Oldest version [`EmCheckpoint::decode`] still reads.
const MIN_VERSION: u32 = 1;

/// EM state at the end of iteration `iteration`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmCheckpoint {
    /// The completed iteration this state belongs to.
    pub iteration: usize,
    /// Principal-subspace matrix `C` after that iteration.
    pub c: Mat,
    /// Noise variance `ss` after that iteration.
    pub ss: f64,
    /// Sampled reconstruction error of that iteration (the next
    /// iteration's stop-condition baseline).
    pub prev_error: f64,
}

fn corrupt(err: WireError) -> SpcaError {
    SpcaError::CorruptCheckpoint { reason: err.to_string() }
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

impl EmCheckpoint {
    /// Serializes to the binary blob stored in the DFS (always the
    /// current version).
    pub fn encode(&self) -> Vec<u8> {
        let (rows, cols) = (self.c.rows(), self.c.cols());
        let mut out = Vec::with_capacity(self.encoded_size() as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        write_uvarint(&mut out, self.iteration as u64);
        write_uvarint(&mut out, rows as u64);
        write_uvarint(&mut out, cols as u64);
        push_f64(&mut out, self.ss);
        push_f64(&mut out, self.prev_error);
        for &v in self.c.data() {
            push_f64(&mut out, v);
        }
        out
    }

    /// Exact length of [`EmCheckpoint::encode`]'s output.
    pub fn encoded_size(&self) -> u64 {
        use linalg::wire::uvarint_len;
        let (rows, cols) = (self.c.rows() as u64, self.c.cols() as u64);
        8 + 4
            + uvarint_len(self.iteration as u64)
            + uvarint_len(rows)
            + uvarint_len(cols)
            + 8 * (2 + rows * cols)
    }

    /// Parses a blob produced by [`EmCheckpoint::encode`], of any version
    /// back to [`MIN_VERSION`].
    pub fn decode(buf: &[u8]) -> Result<Self, SpcaError> {
        let mut r = WireReader::new(buf);
        if r.take(8).map_err(corrupt)? != MAGIC {
            return Err(SpcaError::CorruptCheckpoint { reason: "bad magic".into() });
        }
        let version =
            u32::from_le_bytes(r.take(4).map_err(corrupt)?.try_into().expect("4 bytes"));
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(SpcaError::CorruptCheckpoint {
                reason: format!("unsupported version {version}"),
            });
        }
        let header_u64 = |r: &mut WireReader<'_>| -> Result<u64, SpcaError> {
            if version == 1 {
                // v1 stored header integers as fixed 8-byte LE words.
                Ok(u64::from_le_bytes(r.take(8).map_err(corrupt)?.try_into().expect("8 bytes")))
            } else {
                r.uvarint().map_err(corrupt)
            }
        };
        let iteration = header_u64(&mut r)? as usize;
        let rows = header_u64(&mut r)? as usize;
        let cols = header_u64(&mut r)? as usize;
        let ss = r.f64_bits().map_err(corrupt)?;
        let prev_error = r.f64_bits().map_err(corrupt)?;
        let n = rows.checked_mul(cols).filter(|n| r.remaining() == n * 8).ok_or_else(|| {
            SpcaError::CorruptCheckpoint {
                reason: format!("payload size does not match {rows}x{cols} matrix"),
            }
        })?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f64_bits().map_err(corrupt)?);
        }
        Ok(EmCheckpoint { iteration, c: Mat::from_vec(rows, cols, data), ss, prev_error })
    }

    /// Decodes a shared DFS blob (convenience for the common call shape).
    pub fn decode_arc(blob: &Arc<Vec<u8>>) -> Result<Self, SpcaError> {
        EmCheckpoint::decode(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmCheckpoint {
        let data: Vec<f64> =
            (0..12).map(|i| (i as f64 + 0.25) * if i % 2 == 0 { 1.0 } else { -1e-9 }).collect();
        EmCheckpoint {
            iteration: 7,
            c: Mat::from_vec(4, 3, data),
            ss: 3.25e-4,
            prev_error: 0.421875,
        }
    }

    /// `sample()` as serialized by the v1 encoder (fixed 8-byte LE header
    /// integers), captured before the v2 varint header landed. Pins the
    /// read-compat path: a checkpoint written by an old build must keep
    /// decoding bit-for-bit.
    const SAMPLE_V1_HEX: &str = "53504341434b50540100000007000000000000000400000000000000030000000000000094f6065f984c353f000000000000db3f000000000000d03f3a8c30e28e7915be0000000000000240b21c3f59d3ea2bbe0000000000001140a4f9b2a06f8c36be0000000000001940ee64c69475233fbe00000000008020401ce86cc43ddd43be0000000000802440c29d76bec02848be";

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
            .collect()
    }

    #[test]
    fn v1_golden_blob_still_decodes() {
        let blob = unhex(SAMPLE_V1_HEX);
        let decoded = EmCheckpoint::decode(&blob).expect("v1 read-compat");
        let want = sample();
        assert_eq!(decoded.iteration, want.iteration);
        assert_eq!(decoded.ss.to_bits(), want.ss.to_bits());
        assert_eq!(decoded.prev_error.to_bits(), want.prev_error.to_bits());
        assert_eq!(
            decoded.c.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.c.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // The v2 re-encoding is smaller (varint header) but decodes to the
        // same state.
        let reencoded = decoded.encode();
        assert!(reencoded.len() < blob.len(), "v2 header should shrink the blob");
        assert_eq!(EmCheckpoint::decode(&reencoded).unwrap(), decoded);
    }

    #[test]
    fn encoded_size_matches_encode_len() {
        for ck in [
            sample(),
            EmCheckpoint { iteration: 0, c: Mat::zeros(0, 0), ss: 0.0, prev_error: 0.0 },
            EmCheckpoint {
                iteration: 300,
                c: Mat::zeros(200, 1),
                ss: f64::NAN,
                prev_error: f64::INFINITY,
            },
        ] {
            assert_eq!(ck.encode().len() as u64, ck.encoded_size());
        }
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let ck = sample();
        let decoded = EmCheckpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded.iteration, ck.iteration);
        assert_eq!(decoded.ss.to_bits(), ck.ss.to_bits());
        assert_eq!(decoded.prev_error.to_bits(), ck.prev_error.to_bits());
        let same = decoded
            .c
            .data()
            .iter()
            .zip(ck.c.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "C must round-trip bit-for-bit");
    }

    #[test]
    fn roundtrip_preserves_non_finite_error() {
        // A checkpoint written before any stop check has prev_error = +inf.
        let mut ck = sample();
        ck.prev_error = f64::INFINITY;
        let decoded = EmCheckpoint::decode(&ck.encode()).unwrap();
        assert!(decoded.prev_error.is_infinite());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            EmCheckpoint::decode(b"not a checkpoint"),
            Err(SpcaError::CorruptCheckpoint { .. })
        ));
        let mut truncated = sample().encode();
        truncated.truncate(truncated.len() - 1);
        assert!(matches!(
            EmCheckpoint::decode(&truncated),
            Err(SpcaError::CorruptCheckpoint { .. })
        ));
        let mut wrong_magic = sample().encode();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            EmCheckpoint::decode(&wrong_magic),
            Err(SpcaError::CorruptCheckpoint { .. })
        ));
    }
}
