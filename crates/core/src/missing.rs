//! PPCA with missing values.
//!
//! Section 2.4 lists this as the first advantage of the probabilistic
//! formulation: "since PPCA uses expectation maximization, the projections
//! of principal components can be obtained even when some data values are
//! missing". This module implements that EM variant for dense matrices
//! with `NaN` marking missing entries, plus imputation through the fitted
//! model.
//!
//! Per-row E-step over the *observed* coordinates only:
//! `M_i = C_O'C_O + ss·I`, `x_i = M_i⁻¹ C_O'(y_O − μ_O)`,
//! `Σ E[x xᵀ] = ss·M_i⁻¹ + x_i x_iᵀ`; the M-step solves one small system
//! per output dimension over the rows that observe it.

use linalg::decomp::lu::Lu;
use linalg::{Mat, Prng};

use crate::error::SpcaError;
use crate::model::PcaModel;
use crate::Result;

/// Fits PPCA by EM on a dense matrix where `NaN` entries are missing.
pub fn fit_missing(y: &Mat, d: usize, iterations: usize, seed: u64) -> Result<PcaModel> {
    let n = y.rows();
    let d_in = y.cols();
    if n == 0 || d_in == 0 {
        return Err(SpcaError::EmptyInput);
    }
    if d > d_in.min(n) {
        return Err(SpcaError::TooManyComponents { requested: d, available: d_in.min(n) });
    }

    // Observed mask and per-column means over observed entries.
    let observed: Vec<Vec<usize>> = (0..n)
        .map(|r| y.row(r).iter().enumerate().filter(|(_, v)| !v.is_nan()).map(|(j, _)| j).collect())
        .collect();
    if observed.iter().any(|o| o.is_empty()) {
        // A fully-missing row carries no information; reject loudly rather
        // than silently skewing the fit.
        return Err(SpcaError::EmptyInput);
    }
    let mut mean = vec![0.0; d_in];
    let mut counts = vec![0usize; d_in];
    for r in 0..n {
        for &j in &observed[r] {
            mean[j] += y[(r, j)];
            counts[j] += 1;
        }
    }
    for (m, &c) in mean.iter_mut().zip(&counts) {
        if c > 0 {
            *m /= c as f64;
        }
    }

    let mut rng = Prng::seed_from_u64(seed);
    let mut c = rng.normal_mat(d_in, d);
    c.scale(0.1);
    let mut ss = 1.0;

    for _ in 0..iterations {
        // E-step: per-row posterior over observed coordinates.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut sxx: Vec<Mat> = Vec::with_capacity(n); // E[x xᵀ] per row
        for r in 0..n {
            let obs = &observed[r];
            // M_i = C_O' C_O + ss·I (d × d).
            let mut m = Mat::zeros(d, d);
            for &j in obs {
                let cj = c.row(j);
                for a in 0..d {
                    let ca = cj[a];
                    if ca != 0.0 {
                        linalg::vector::axpy(ca, cj, m.row_mut(a));
                    }
                }
            }
            m.add_diag(ss);
            let m_inv = Lu::new(&m)?.inverse();
            // b = C_O'(y_O − μ_O).
            let mut b = vec![0.0; d];
            for &j in obs {
                let resid = y[(r, j)] - mean[j];
                linalg::vector::axpy(resid, c.row(j), &mut b);
            }
            let x = m_inv.matvec(&b);
            let mut exx = m_inv.clone();
            exx.scale(ss);
            exx.add_outer(1.0, &x, &x);
            xs.push(x);
            sxx.push(exx);
        }

        // M-step: per output dimension j, solve
        // C_j · (Σ_{i∋j} E[x xᵀ]) = Σ_{i∋j} (y_ij − μ_j)·x_i.
        let mut rows_by_dim: Vec<Vec<usize>> = vec![Vec::new(); d_in];
        for (r, obs) in observed.iter().enumerate() {
            for &j in obs {
                rows_by_dim[j].push(r);
            }
        }
        let mut c_new = Mat::zeros(d_in, d);
        for j in 0..d_in {
            if rows_by_dim[j].is_empty() {
                continue; // never observed: keep zero loading
            }
            let mut a = Mat::zeros(d, d);
            let mut rhs = vec![0.0; d];
            for &r in &rows_by_dim[j] {
                a.add_assign(&sxx[r]);
                linalg::vector::axpy(y[(r, j)] - mean[j], &xs[r], &mut rhs);
            }
            // Tiny ridge keeps the solve well-posed for rarely-observed dims.
            a.add_diag(1e-9);
            let sol = Lu::new(&a)?.solve(&rhs);
            c_new.row_mut(j).copy_from_slice(&sol);
        }

        // Noise update over observed entries.
        let mut num = 0.0;
        let mut total_obs = 0usize;
        for r in 0..n {
            for &j in &observed[r] {
                let pred = linalg::vector::dot(c_new.row(j), &xs[r]);
                let resid = y[(r, j)] - mean[j] - pred;
                // E[(y − μ − C x)²] = resid² + C_j Cov(x) C_j'.
                let cov_term = {
                    let mut s = 0.0;
                    let cj = c_new.row(j);
                    for a in 0..d {
                        s += cj[a]
                            * (linalg::vector::dot(sxx[r].row(a), cj)
                                - xs[r][a] * linalg::vector::dot(&xs[r], cj));
                    }
                    s
                };
                num += resid * resid + cov_term;
                total_obs += 1;
            }
        }
        c = c_new;
        ss = (num / total_obs as f64).max(1e-12);
    }

    Ok(PcaModel::new(c, mean, ss))
}

/// Fills the missing (`NaN`) entries of `y` with the model's
/// reconstruction, leaving observed entries untouched.
pub fn impute(y: &Mat, model: &PcaModel) -> Result<Mat> {
    assert_eq!(y.cols(), model.input_dim(), "impute: dimension mismatch");
    let d = model.output_dim();
    let c = model.components();
    let mean = model.mean();
    let mut out = y.clone();
    for r in 0..y.rows() {
        let obs: Vec<usize> =
            (0..y.cols()).filter(|&j| !y[(r, j)].is_nan()).collect();
        // Posterior mean latent from observed coordinates.
        let mut m = Mat::zeros(d, d);
        for &j in &obs {
            let cj = c.row(j);
            for a in 0..d {
                if cj[a] != 0.0 {
                    linalg::vector::axpy(cj[a], cj, m.row_mut(a));
                }
            }
        }
        m.add_diag(model.noise_variance().max(1e-12));
        let m_inv = Lu::new(&m).map_err(SpcaError::from)?.inverse();
        let mut b = vec![0.0; d];
        for &j in &obs {
            linalg::vector::axpy(y[(r, j)] - mean[j], c.row(j), &mut b);
        }
        let x = m_inv.matvec(&b);
        for j in 0..y.cols() {
            if y[(r, j)].is_nan() {
                out[(r, j)] = linalg::vector::dot(c.row(j), &x) + mean[j];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::decomp::qr_thin;

    /// Planted low-rank data with a fraction of entries knocked out.
    fn masked_data(
        n: usize,
        d_in: usize,
        rank: usize,
        missing_frac: f64,
        seed: u64,
    ) -> (Mat, Mat) {
        let mut rng = Prng::seed_from_u64(seed);
        let basis = qr_thin(&rng.normal_mat(d_in, rank)).q;
        let latent = rng.normal_mat(n, rank);
        let mut full = latent.matmul(&basis.transpose());
        full.scale(3.0);
        let noise = rng.normal_mat(n, d_in);
        full.add_scaled(0.05, &noise);
        let mut masked = full.clone();
        for r in 0..n {
            // Keep one random coordinate always observed so no row becomes
            // fully missing (a fully-missing row is rejected by the fit).
            let keep = rng.index(d_in);
            for j in 0..d_in {
                if j != keep && rng.uniform() < missing_frac {
                    masked[(r, j)] = f64::NAN;
                }
            }
        }
        (full, masked)
    }

    #[test]
    fn fits_with_no_missing_values_like_plain_ppca() {
        let (full, _) = masked_data(150, 8, 2, 0.0, 1);
        let model = fit_missing(&full, 2, 25, 7).unwrap();
        // Reconstruction through the model should be good.
        let x = model.transform_dense(&full).unwrap();
        let rec = model.reconstruct(&x);
        let rel = linalg::norms::diff_norm1(&full, &rec) / full.norm1();
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn imputation_recovers_held_out_entries() {
        let (full, masked) = masked_data(200, 10, 2, 0.2, 2);
        let model = fit_missing(&masked, 2, 30, 3).unwrap();
        let imputed = impute(&masked, &model).unwrap();
        // Measure error only on the held-out entries.
        let mut err = 0.0;
        let mut base = 0.0;
        let mut count = 0;
        for r in 0..full.rows() {
            for j in 0..full.cols() {
                if masked[(r, j)].is_nan() {
                    err += (imputed[(r, j)] - full[(r, j)]).abs();
                    base += full[(r, j)].abs();
                    count += 1;
                }
            }
        }
        assert!(count > 0);
        let rel = err / base;
        assert!(rel < 0.30, "imputation relative error {rel}");
        // Observed entries must be untouched.
        assert_eq!(imputed[(0, 0)].is_nan(), false);
        for r in 0..full.rows() {
            for j in 0..full.cols() {
                if !masked[(r, j)].is_nan() {
                    assert_eq!(imputed[(r, j)], masked[(r, j)]);
                }
            }
        }
    }

    #[test]
    fn rejects_fully_missing_row() {
        let mut y = Mat::zeros(3, 4);
        for j in 0..4 {
            y[(1, j)] = f64::NAN;
        }
        assert!(matches!(fit_missing(&y, 1, 5, 0), Err(SpcaError::EmptyInput)));
    }

    #[test]
    fn more_missingness_degrades_gracefully() {
        let (full, light) = masked_data(150, 8, 2, 0.1, 4);
        let (_, heavy) = masked_data(150, 8, 2, 0.5, 4);
        let err = |masked: &Mat| {
            let model = fit_missing(masked, 2, 20, 5).unwrap();
            let imp = impute(masked, &model).unwrap();
            let mut e = 0.0;
            for r in 0..full.rows() {
                for j in 0..full.cols() {
                    if masked[(r, j)].is_nan() {
                        e += (imp[(r, j)] - full[(r, j)]).abs();
                    }
                }
            }
            e / full.norm1()
        };
        assert!(err(&light) < err(&heavy), "lighter masking should impute better");
    }
}
