//! sPCA on the Spark-like engine (Section 4.2, Algorithm 5).
//!
//! The input matrix is turned into an RDD of sparse rows, persisted in the
//! cluster's aggregate memory, and each EM iteration runs exactly two
//! accumulator stages against it:
//!
//! * `YtXSparkJob` — one `aggregate_partitions` whose per-task accumulator
//!   is a [`YtxPartial`]: each task hands its whole partition slice to the
//!   batched `add_block` kernels (latent block recomputed on the fly from
//!   the broadcast `CM`/`Xm`, blocked `XtX`/`YtX` folds), and only the
//!   partials cross the network (the paper's `XtXSum`/`YtXSum`
//!   accumulators, "eliminating the need for reduce operations"). The
//!   `YtX` partial stores touched rows only — the O(z·d) sparsity trick of
//!   Section 4.2.
//! * `ss3SparkJob` — one `aggregate_partitions` folding the scalar
//!   `Σ xᵢ·(C'yᵢ')` via the blocked `ss3_block`.

use dcluster::SimCluster;
use linalg::bytes::ByteSized;
use linalg::sparse::SparseRow;
use linalg::wire::{self, Wire, WireError, WireReader};
use linalg::{Mat, SparseMat};
use sparkle::{Lineage, Rdd, SparkleContext};

use crate::config::SpcaConfig;
use crate::em::{run_em, EmJobs};
use crate::init;
use crate::mean_prop::{ss3_block_prec, ytx_counter_snapshot, YtxPartial};
use crate::model::SpcaRun;
use crate::Result;

/// One sparse matrix row as an RDD element.
#[derive(Debug, Clone, PartialEq)]
pub struct SpRow {
    /// Column indices of non-zeros, ascending.
    pub indices: Vec<u32>,
    /// Values parallel to `indices`.
    pub values: Vec<f64>,
}

impl SpRow {
    /// Borrowed view compatible with the linalg kernels.
    pub fn view(&self) -> SparseRow<'_> {
        SparseRow { indices: &self.indices, values: &self.values }
    }
}

impl ByteSized for SpRow {
    fn size_bytes(&self) -> u64 {
        (self.indices.len() * 12 + 8) as u64
    }
}

/// Wire layout: `varint nnz`, delta-encoded ascending indices, raw f64
/// values — the per-row record a Spark shuffle file would hold.
impl Wire for SpRow {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::write_uvarint(out, self.indices.len() as u64);
        wire::write_ascending_u32(out, &self.indices);
        for &v in &self.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fn encoded_size(&self) -> u64 {
        wire::uvarint_len(self.indices.len() as u64)
            + wire::ascending_u32_len(&self.indices)
            + 8 * self.values.len() as u64
    }
    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let n = r.ulen()?;
        let indices = wire::read_ascending_u32(r, n, u64::from(u32::MAX) + 1)?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.f64_bits()?);
        }
        Ok(SpRow { indices, values })
    }
    // v3 fast path: bitpacked index deltas + mode-tagged value payload —
    // the sparse shuffle record the codec's ≥2x reduction target is about
    // (on the binary text datasets the values collapse to one byte each).
    fn encode_v3_into(&self, out: &mut Vec<u8>, quantize: bool) {
        wire::write_uvarint(out, self.indices.len() as u64);
        wire::write_bitpacked_u32(out, &self.indices);
        wire::write_f64_slice_v3(out, &self.values, quantize);
    }
    fn encoded_size_v3(&self, quantize: bool) -> u64 {
        wire::uvarint_len(self.indices.len() as u64)
            + wire::bitpacked_u32_len(&self.indices)
            + wire::f64_slice_v3_len(&self.values, quantize)
    }
    fn decode_v3_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let n = r.ulen()?;
        let indices = wire::read_bitpacked_u32(r, n, u64::from(u32::MAX) + 1)?;
        let values = wire::read_f64_slice_v3(r, n)?;
        Ok(SpRow { indices, values })
    }
}

/// Row range `(start, len)` of partition `p` when `n` rows are split into
/// `parts` — the exact layout of [`SparseMat::split_rows`], so lineage
/// recomputation rebuilds precisely the rows the lost partition held.
pub(crate) fn partition_range(n: usize, parts: usize, p: usize) -> (usize, usize) {
    let base = n / parts;
    let extra = n % parts;
    let start = p * base + p.min(extra);
    (start, base + usize::from(p < extra))
}

/// Converts a sparse matrix into row elements (helper for RDD creation).
pub fn to_rows(y: &SparseMat) -> Vec<SpRow> {
    (0..y.rows())
        .map(|r| {
            let row = y.row(r);
            SpRow { indices: row.indices.to_vec(), values: row.values.to_vec() }
        })
        .collect()
}

/// Accumulator wrapper so `f64` partials get a wire size.
#[derive(Debug, Clone, Copy, Default)]
struct Scalar(f64);

impl ByteSized for Scalar {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl Wire for Scalar {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_size(&self) -> u64 {
        8
    }
    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(Scalar(f64::decode_from(r)?))
    }
}

/// Dense vector accumulator (column sums of the mean job).
struct DenseAcc(Vec<f64>);

impl ByteSized for DenseAcc {
    fn size_bytes(&self) -> u64 {
        8 + 8 * self.0.len() as u64
    }
}

impl Wire for DenseAcc {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_size(&self) -> u64 {
        self.0.encoded_size()
    }
    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(DenseAcc(Vec::<f64>::decode_from(r)?))
    }
}

struct SparkJobs<'a> {
    rdd: Rdd<'a, SpRow>,
    n: usize,
    d_in: usize,
    d: usize,
    precision: linalg::Precision,
}

impl EmJobs for SparkJobs<'_> {
    fn num_rows(&self) -> usize {
        self.n
    }

    fn num_cols(&self) -> usize {
        self.d_in
    }

    fn mean_job(&mut self) -> Vec<f64> {
        let d_in = self.d_in;
        let (sums, _) = self.rdd.aggregate(
            "meanJob",
            || DenseAcc(vec![0.0; d_in]),
            |acc, row| {
                for (c, v) in row.view().iter() {
                    acc.0[c] += v;
                }
            },
            |acc, other| linalg::vector::axpy(1.0, &other.0, &mut acc.0),
        );
        let mut mean = sums.0;
        linalg::vector::scale(1.0 / self.n as f64, &mut mean);
        mean
    }

    fn fnorm_job(&mut self, mean: &[f64]) -> f64 {
        let msum = linalg::vector::norm2_sq(mean);
        let (total, _) = self.rdd.aggregate_partitions(
            "FnormJob",
            || Scalar(0.0),
            |acc, part| {
                // Algorithm 3 over the whole partition slice — the same
                // association as the MapReduce engine's per-block pass.
                let mut s = part.len() as f64 * msum;
                for row in part {
                    for (c, v) in row.view().iter() {
                        let m = mean[c];
                        s += (v - m) * (v - m) - m * m;
                    }
                }
                acc.0 += s;
            },
            |acc, other| acc.0 += other.0,
        );
        total.0
    }

    fn ytx_job(&mut self, cm: &Mat, xm: &[f64]) -> YtxPartial {
        // Broadcast the iteration's in-memory matrices (Section 3.3) to
        // every node: CM (D×d) and Xm (d), priced under the cluster's
        // sizing policy like every other metered value.
        let cluster = self.rdd.cluster();
        cluster.charge_broadcast(cluster.wire_size(cm) + cluster.sizing().f64_payload(xm.len()));
        let d = self.d;
        let d_in = self.d_in;
        let precision = self.precision;
        let before = ytx_counter_snapshot();
        // Batched path: each task reassembles its partition slice into a
        // CSR block (O(z) copy, no sorting) and runs the blocked kernels
        // over it — one add_block per partition, so reassociation happens
        // only at partition boundaries, same as the merge tree.
        let (partial, _bytes) = self.rdd.aggregate_partitions(
            "YtXJob",
            || YtxPartial::new(d),
            |acc, part| {
                let views: Vec<SparseRow> = part.iter().map(SpRow::view).collect();
                let block = SparseMat::from_row_views(d_in, &views);
                acc.add_block_prec(&block, cm, xm, precision);
            },
            |acc, other| acc.merge(other),
        );
        if obs::enabled() {
            let after = ytx_counter_snapshot();
            let cluster = self.rdd.cluster();
            cluster.trace_counter("em.ytx.flops", (after.0 - before.0) as f64);
            cluster.trace_counter("em.ytx.batch_rows", (after.1 - before.1) as f64);
        }
        partial
    }

    fn ss3_job(&mut self, cm: &Mat, xm: &[f64], c_new: &Mat) -> f64 {
        // The updated C must reach every node for the ss3 pass; CM/Xm are
        // already resident from the YtX job's broadcast.
        let cluster = self.rdd.cluster();
        cluster.charge_broadcast(cluster.wire_size(c_new));
        let d_in = self.d_in;
        let precision = self.precision;
        let (part, _) = self.rdd.aggregate_partitions(
            "ss3Job",
            || Scalar(0.0),
            |acc, part| {
                let views: Vec<SparseRow> = part.iter().map(SpRow::view).collect();
                let block = SparseMat::from_row_views(d_in, &views);
                acc.0 += ss3_block_prec(&block, cm, xm, c_new, precision);
            },
            |acc, other| acc.0 += other.0,
        );
        part.0
    }
}

/// Distributed projection: computes the reduced matrix `X = (Y − 1⊗μ)·CM`
/// (the paper's §2.1 dimensionality-reduction output, `X = Y*C`) as one
/// narrow stage over the cluster, returning the N×d latent matrix.
///
/// This is what feeds "other machine learning algorithms such as k-means
/// clustering" downstream; the N×d result is small enough to collect.
pub fn transform(
    cluster: &SimCluster,
    y: &SparseMat,
    model: &crate::model::PcaModel,
    partitions: usize,
) -> Result<Mat> {
    assert_eq!(y.cols(), model.input_dim(), "transform: dimension mismatch");
    let ctx = SparkleContext::new(cluster);
    let parts = partitions.min(y.rows().max(1)).max(1);
    let blocks: Vec<Vec<SpRow>> = y.split_rows(parts).iter().map(to_rows).collect();
    let rdd = ctx.from_partitions(blocks);

    let cm = model.latent_projection()?;
    let xm = cm.vecmat(model.mean());
    cluster.charge_broadcast(cluster.wire_size(&cm) + cluster.sizing().f64_payload(xm.len()));

    let latent = rdd.map_partitions("transform", |part| {
        part.iter()
            .map(|row| crate::mean_prop::latent_row(row.view(), &cm, &xm))
            .collect::<Vec<Vec<f64>>>()
    });
    let rows = latent.collect();
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    Ok(Mat::from_rows(&refs))
}

/// Fits sPCA on the Spark-like engine. With a `job_id` set the input
/// file and stage labels are scoped to `jobs/<id>/` so concurrent
/// tenants on one cluster never collide (checkpoints scope through
/// `checkpoint::file_name` inside `run_em`).
pub fn fit(cluster: &SimCluster, y: &SparseMat, config: &SpcaConfig) -> Result<SpcaRun> {
    // Algorithm dispatch happens here (not in `Spca`) so every caller —
    // the serving subsystem included — gets the randomized arm through
    // the same entry point.
    if config.algorithm == crate::config::Algorithm::Randomized {
        return crate::rpca::fit_spark(cluster, y, config);
    }
    let input = crate::scoped_input(config, "input/Y");
    let run = fit_with_input(cluster, y, config, &input);
    cluster.set_job_scope(None);
    run
}

/// [`fit`] with an explicit DFS name for the materialized input — the
/// smart-guess warm-up fits its row sample under a different name so it
/// does not clobber the full run's input file.
pub(crate) fn fit_with_input(
    cluster: &SimCluster,
    y: &SparseMat,
    config: &SpcaConfig,
    input_file: &str,
) -> Result<SpcaRun> {
    if obs::enabled() {
        cluster.set_trace_label("sPCA-Spark");
    }
    cluster.set_job_scope(config.job_id.as_deref());
    let ctx = SparkleContext::new(cluster);
    let partitions = config
        .partitions
        .unwrap_or_else(|| cluster.config().total_cores())
        .min(y.rows().max(1));

    // The input pre-exists the run on the DFS (seeded, not charged). It is
    // both what lineage recomputation re-reads after a cache loss and what
    // node crashes re-replicate — sized at its encoded CSR length so
    // re-reads and re-replication charge the same bytes a real file holds.
    cluster.dfs().seed(cluster, input_file, cluster.wire_size(y));

    // Build and persist the input RDD (cached across all EM iterations),
    // with the lineage that rebuilds any partition a node crash evicts:
    // re-read the partition's slice of the input file and re-parse it.
    let blocks: Vec<Vec<SpRow>> = y.split_rows(partitions).iter().map(to_rows).collect();
    let mut rdd = ctx.from_partitions(blocks);
    let n_rows = y.rows();
    rdd.persist_with_lineage(
        Lineage::new(
            vec![format!("textFile({input_file})"), "parse".into()],
            Box::new(move |p| {
                let (start, len) = partition_range(n_rows, partitions, p);
                to_rows(&y.row_block(start, start + len))
            }),
        )
        .with_source(input_file),
    );

    // Initialization: random, or smart-guess warm start (sPCA-SG). The
    // warm-up's time and intermediate data are charged to this run — the
    // paper reports the (527 s) initialization delay as part of sPCA-SG's
    // timeline.
    let warm_time = cluster.metrics().virtual_time_secs;
    let warm_bytes = cluster.metrics().intermediate_bytes;
    if obs::enabled() {
        cluster.trace_begin("init", "init", Vec::new());
    }
    let init_state = match &config.smart_guess {
        Some(sg) => init::smart_guess_init(cluster, y, config, sg)?,
        None => init::random_init(y.cols(), config.components, config.seed),
    };
    if obs::enabled() {
        let kind = if config.smart_guess.is_some() { "smart-guess" } else { "random" };
        cluster.trace_end("init", "init", vec![("kind", kind.into())]);
    }
    let warm_elapsed = cluster.metrics().virtual_time_secs - warm_time;
    let warm_intermediate = cluster.metrics().intermediate_bytes - warm_bytes;

    let error_sample = crate::accuracy::sample_rows(y, config.error_sample_rows, config.seed);
    let mut jobs = SparkJobs {
        rdd,
        n: y.rows(),
        d_in: y.cols(),
        d: config.components,
        precision: config.precision,
    };
    let mut run = run_em(cluster, &mut jobs, &error_sample, config, init_state)?;
    for it in &mut run.iterations {
        it.virtual_time_secs += warm_elapsed;
    }
    run.virtual_time_secs += warm_elapsed;
    run.intermediate_bytes += warm_intermediate;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;

    #[test]
    fn sp_row_roundtrip_and_size() {
        let y = SparseMat::from_triplets(2, 5, &[(0, 1, 2.0), (0, 4, 1.0), (1, 0, 3.0)]);
        let rows = to_rows(&y);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].indices, vec![1, 4]);
        assert_eq!(rows[0].size_bytes(), 32);
        // Encoded: varint nnz (1) + indices 1,Δ2 (2) + two raw f64 (16).
        assert_eq!(rows[0].encoded_size(), 19);
        assert_eq!(rows[0].encode().len(), 19);
        assert_eq!(SpRow::decode(&rows[0].encode()).unwrap(), rows[0]);
        assert_eq!(rows[1].view().dot_dense(&[1.0, 0.0, 0.0, 0.0, 0.0]), 3.0);
    }

    #[test]
    fn partition_range_mirrors_split_rows() {
        for &(n, parts) in &[(1usize, 1usize), (7, 3), (8, 3), (100, 7), (5, 5), (3, 8)] {
            let parts = parts.min(n); // fit clamps the same way
            let y = SparseMat::from_triplets(n, 2, &[]);
            let blocks = y.split_rows(parts);
            let mut start_seen = 0;
            for (p, block) in blocks.iter().enumerate() {
                let (start, len) = partition_range(n, parts, p);
                assert_eq!(start, start_seen, "partition {p} start for n={n} parts={parts}");
                assert_eq!(len, block.rows(), "partition {p} len for n={n} parts={parts}");
                start_seen += len;
            }
            assert_eq!(start_seen, n);
        }
    }

    #[test]
    fn distributed_transform_matches_local() {
        let mut rng = linalg::Prng::seed_from_u64(8);
        let spec = datasets::LowRankSpec::small_test();
        let y = datasets::sparse_lowrank(&spec, &mut rng);
        let cluster = SimCluster::new(dcluster::ClusterConfig::paper_cluster());
        let run = fit(&cluster, &y, &SpcaConfig::new(3).with_max_iters(3)).unwrap();
        let distributed = transform(&cluster, &y, &run.model, 8).unwrap();
        let local = run.model.transform_sparse(&y).unwrap();
        assert!(distributed.approx_eq(&local, 1e-12));
        assert_eq!(distributed.rows(), y.rows());
    }

    #[test]
    fn fit_runs_and_converges_on_tiny_data() {
        let mut rng = linalg::Prng::seed_from_u64(3);
        let spec = datasets::LowRankSpec::small_test();
        let y = datasets::sparse_lowrank(&spec, &mut rng);
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let run = fit(&cluster, &y, &SpcaConfig::new(4).with_max_iters(6)).unwrap();
        assert_eq!(run.model.output_dim(), 4);
        assert!(!run.iterations.is_empty());
        // Error must improve from the first iteration to the last.
        let first = run.iterations.first().unwrap().error;
        let last = run.final_error();
        assert!(last <= first, "error should not increase: {first} → {last}");
        assert!(run.intermediate_bytes > 0);
        assert!(run.virtual_time_secs > 0.0);
    }
}
