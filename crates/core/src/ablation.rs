//! Optimization ablations — the library form of the paper's Section 5.4.
//!
//! Each of sPCA's three distributed optimizations can be exercised *with*
//! and *without*, on the operation it accelerates, returning the virtual
//! seconds and intermediate bytes of each arm. The `table3_optimizations`
//! experiment binary prints these; having them as API makes the ablation
//! reusable (and testable) outside the bench harness.

use dcluster::{SimCluster, StageOptions};
use linalg::bytes::ByteSized;
use linalg::wire::{Wire, WireError, WireReader};
use linalg::{Mat, SparseMat};
use sparkle::SparkleContext;

use crate::frobenius;
use crate::init;
use crate::mean_prop;
use crate::spark::{to_rows, SpRow};
use crate::Result;

/// Outcome of one optimization ablation: the optimized and unoptimized
/// arms' virtual costs on the same input and cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Virtual seconds with the optimization.
    pub with_secs: f64,
    /// Virtual seconds without it.
    pub without_secs: f64,
    /// Intermediate bytes with the optimization.
    pub with_bytes: u64,
    /// Intermediate bytes without it.
    pub without_bytes: u64,
}

impl AblationResult {
    /// `without / with` time ratio.
    pub fn speedup(&self) -> f64 {
        self.without_secs / self.with_secs.max(1e-12)
    }
}

struct Scalar(f64);

impl ByteSized for Scalar {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl Wire for Scalar {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn encoded_size(&self) -> u64 {
        8
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(Scalar(f64::decode_from(r)?))
    }
}

struct SmallMat(Mat);

impl ByteSized for SmallMat {
    fn size_bytes(&self) -> u64 {
        ByteSized::size_bytes(&self.0)
    }
}

impl Wire for SmallMat {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn encoded_size(&self) -> u64 {
        self.0.encoded_size()
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(SmallMat(Mat::decode_from(r)?))
    }
}

fn broadcast_state(y: &SparseMat, d: usize, seed: u64) -> Result<(Vec<f64>, Mat, Vec<f64>)> {
    let mean = y.col_means();
    let (c, ss) = init::random_init(y.cols(), d, seed);
    let mut m = c.matmul_tn(&c);
    m.add_diag(ss);
    let m_inv = linalg::decomp::lu::Lu::new(&m)?.inverse();
    let cm = c.matmul(&m_inv);
    let xm = cm.vecmat(&mean);
    Ok((mean, cm, xm))
}

fn measure<R>(
    make_cluster: impl Fn() -> SimCluster,
    f: impl FnOnce(&SimCluster) -> R,
) -> (f64, u64) {
    let cluster = make_cluster();
    let _ = f(&cluster);
    let m = cluster.metrics();
    (m.virtual_time_secs, m.intermediate_bytes)
}

/// Ablation 1 — **mean propagation** (Section 3.1): one full latent-row
/// pass with the sparse O(z·d) kernel vs the densifying O(D·d) kernel.
pub fn mean_propagation(
    make_cluster: impl Fn() -> SimCluster,
    y: &SparseMat,
    d: usize,
    partitions: usize,
    seed: u64,
) -> Result<AblationResult> {
    let (mean, cm, xm) = broadcast_state(y, d, seed)?;
    let parts: Vec<Vec<SpRow>> = y.split_rows(partitions).iter().map(to_rows).collect();

    let run = |dense: bool| {
        measure(&make_cluster, |cluster| {
            let ctx = SparkleContext::new(cluster);
            let rdd = ctx.from_partitions(parts.clone());
            rdd.aggregate(
                if dense { "X/dense" } else { "X/mean-prop" },
                || Scalar(0.0),
                |acc, row: &SpRow| {
                    let x = if dense {
                        mean_prop::latent_row_dense(row.view(), &mean, &cm)
                    } else {
                        mean_prop::latent_row(row.view(), &cm, &xm)
                    };
                    acc.0 += x.iter().sum::<f64>();
                },
                |acc, o| acc.0 += o.0,
            )
        })
    };
    let (with_secs, with_bytes) = run(false);
    let (without_secs, without_bytes) = run(true);
    Ok(AblationResult { with_secs, without_secs, with_bytes, without_bytes })
}

/// Ablation 2 — **intermediate-data minimization** (Section 3.2): compute
/// `XtX` by recomputing `X` on demand in one consolidated pass vs
/// materializing `X`, shipping it through the DFS, and reading it back in
/// each of its three consumer jobs.
pub fn intermediate_data(
    make_cluster: impl Fn() -> SimCluster,
    y: &SparseMat,
    d: usize,
    partitions: usize,
    seed: u64,
) -> Result<AblationResult> {
    let (_, cm, xm) = broadcast_state(y, d, seed)?;
    let parts: Vec<Vec<SpRow>> = y.split_rows(partitions).iter().map(to_rows).collect();

    let (with_secs, with_bytes) = measure(&make_cluster, |cluster| {
        let ctx = SparkleContext::new(cluster);
        let rdd = ctx.from_partitions(parts.clone());
        rdd.aggregate(
            "XtX/on-demand",
            || SmallMat(Mat::zeros(d, d)),
            |acc, row: &SpRow| {
                let x = mean_prop::latent_row(row.view(), &cm, &xm);
                acc.0.add_outer(1.0, &x, &x);
            },
            |acc, o| acc.0.add_assign(&o.0),
        )
    });

    let (without_secs, without_bytes) = measure(&make_cluster, |cluster| {
        let ctx = SparkleContext::new(cluster);
        let rdd = ctx.from_partitions(parts.clone());
        let x_rdd = rdd.map_partitions("X/materialize", |part| {
            part.iter()
                .map(|row| mean_prop::latent_row(row.view(), &cm, &xm))
                .collect::<Vec<Vec<f64>>>()
        });
        // The unconsolidated pipeline writes X once and re-reads it in the
        // XtX, YtX and ss3 jobs.
        let x_bytes = (y.rows() * d * 8) as u64;
        cluster.charge_dfs_write(x_bytes);
        for _ in 0..3 {
            cluster.charge_dfs_read(x_bytes);
        }
        x_rdd.aggregate(
            "XtX/from-stored-X",
            || SmallMat(Mat::zeros(d, d)),
            |acc, x: &Vec<f64>| acc.0.add_outer(1.0, x, x),
            |acc, o| acc.0.add_assign(&o.0),
        )
    });
    Ok(AblationResult { with_secs, without_secs, with_bytes, without_bytes })
}

/// Ablation 3 — **sparse Frobenius norm** (Section 3.4): Algorithm 3 vs
/// Algorithm 2 as distributed stages over the same blocks.
pub fn frobenius_norm(
    make_cluster: impl Fn() -> SimCluster,
    y: &SparseMat,
    partitions: usize,
) -> Result<AblationResult> {
    let mean = y.col_means();
    let msum = linalg::vector::norm2_sq(&mean);
    let blocks = y.split_rows(partitions);

    let run = |simple: bool| {
        measure(&make_cluster, |cluster| {
            let tasks: Vec<_> = blocks
                .iter()
                .map(|b| {
                    let mean = &mean;
                    move || {
                        if simple {
                            frobenius::centered_sq_simple_block(b, mean)
                        } else {
                            frobenius::centered_sq_block(b, mean, msum)
                        }
                    }
                })
                .collect();
            let parts = cluster
                .run_stage(StageOptions::new(if simple { "Fnorm/alg2" } else { "Fnorm/alg3" }), tasks);
            parts.iter().sum::<f64>()
        })
    };
    let (with_secs, with_bytes) = run(false);
    let (without_secs, without_bytes) = run(true);
    Ok(AblationResult { with_secs, without_secs, with_bytes, without_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;
    use linalg::Prng;

    fn data() -> SparseMat {
        // Large enough that the optimized arms are well clear of timer
        // noise: the dense arm does ~250x the flops of the sparse arm.
        let mut rng = Prng::seed_from_u64(60);
        let spec = datasets::LowRankSpec {
            rows: 20_000,
            cols: 1_500,
            ..datasets::LowRankSpec::small_test()
        };
        datasets::sparse_lowrank(&spec, &mut rng)
    }

    fn cluster() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    #[test]
    fn mean_propagation_wins_on_sparse_data() {
        let y = data();
        let r = mean_propagation(cluster, &y, 10, 8, 1).unwrap();
        // Sparse rows have ~6 of 1500 entries: the dense arm does ~250x
        // the flops. Host timing is noisy, so just require a clear win.
        assert!(
            r.speedup() > 2.0,
            "dense centering should be much slower: {:?}",
            r
        );
    }

    #[test]
    fn consolidation_wins_on_bytes_and_time() {
        let y = data();
        // A small cluster keeps aggregate disk bandwidth low, so the
        // deterministic DFS charge for the materialized X dominates host
        // timing noise in the virtual-time comparison.
        let small = || SimCluster::new(ClusterConfig::paper_cluster().with_nodes(2));
        let r = intermediate_data(small, &y, 10, 8, 1).unwrap();
        assert!(
            r.without_bytes > 2 * r.with_bytes,
            "materialized X must ship more bytes: {:?}",
            r
        );
        assert!(r.without_secs > r.with_secs, "{r:?}");
    }

    #[test]
    fn frobenius_algorithm3_wins() {
        let y = data();
        let r = frobenius_norm(cluster, &y, 8).unwrap();
        assert!(r.speedup() > 2.0, "Algorithm 3 should be much faster: {:?}", r);
    }
}
