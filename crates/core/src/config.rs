//! Configuration of a PCA fit.

use linalg::Precision;

/// Smart-guess initialization (the paper's sPCA-SG, Section 5.2): run the
/// algorithm on a small random row sample first and seed the full run with
/// the resulting `C` and `ss`.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartGuess {
    /// Fraction of rows to sample for the warm-up run (0 < f ≤ 1).
    pub sample_fraction: f64,
    /// EM iterations to spend on the sample.
    pub iterations: usize,
}

impl Default for SmartGuess {
    fn default() -> Self {
        SmartGuess { sample_fraction: 0.05, iterations: 5 }
    }
}

/// Configuration for [`crate::Spca`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpcaConfig {
    /// Number of principal components `d` (the paper uses 50 everywhere).
    pub components: usize,
    /// Hard cap on EM iterations (the paper caps at 10 in Table 2).
    pub max_iters: usize,
    /// Stop when the relative change of the reconstruction error between
    /// iterations falls below this (`None` disables the check).
    pub rel_tolerance: Option<f64>,
    /// Stop as soon as the sampled reconstruction error reaches this value
    /// (`None` disables). Used for "time to 95% of ideal accuracy" runs.
    pub target_error: Option<f64>,
    /// RNG seed: initialization of `C`/`ss` and the error-estimation row
    /// sample derive from it.
    pub seed: u64,
    /// Rows sampled for the reconstruction-error estimate (the paper also
    /// measures error on a random row subset to keep it affordable).
    pub error_sample_rows: usize,
    /// Number of input partitions (defaults to the cluster's core count at
    /// fit time when `None`).
    pub partitions: Option<usize>,
    /// Optional smart-guess initialization (sPCA-SG).
    pub smart_guess: Option<SmartGuess>,
    /// Checkpoint the EM state (`C`, `ss`, error) to the cluster's DFS
    /// every this many iterations (`None` disables). With a checkpoint
    /// present on the cluster, `fit` resumes from it instead of
    /// restarting — bitwise identically to the uninterrupted run.
    pub checkpoint_every: Option<usize>,
    /// Fault injection: kill the driver right after this iteration
    /// completes (and after any due checkpoint is written). The fit
    /// returns `SpcaError::DriverCrashed`; `None` disables.
    pub crash_at_iteration: Option<usize>,
    /// Which arithmetic the EM inner loop runs in. The default `F64` arm
    /// is bit-identical to every previous release; the reduced-precision
    /// arms trade accuracy (tracked by the `em.precision.divergence`
    /// meter) for kernel speed, and each arm is itself bitwise
    /// reproducible across worker counts and engines.
    pub precision: Precision,
    /// Job id scoping this fit's DFS namespace (input files, checkpoint
    /// blobs). `None` keeps the legacy shared names; multi-tenant runs
    /// must set distinct ids so concurrent checkpoints never collide
    /// (see `dcluster::hdfs::job_scoped`). Never changes the fitted
    /// model — only where its transient state lives.
    pub job_id: Option<String>,
}

impl SpcaConfig {
    /// Defaults for `d` components: 10 iterations max, relative tolerance
    /// 1e-3, 256-row error sample.
    pub fn new(components: usize) -> Self {
        assert!(components > 0, "need at least one component");
        SpcaConfig {
            components,
            max_iters: 10,
            rel_tolerance: Some(1e-3),
            target_error: None,
            seed: 0x5bca,
            error_sample_rows: 256,
            partitions: None,
            smart_guess: None,
            checkpoint_every: None,
            crash_at_iteration: None,
            precision: Precision::F64,
            job_id: None,
        }
    }

    /// Scopes this fit's DFS namespace (checkpoints, inputs) to a job id.
    pub fn with_job_id(mut self, job: impl Into<String>) -> Self {
        self.job_id = Some(job.into());
        self
    }

    /// Selects the EM arithmetic arm (`f64`, `f32`, or `bf16`).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets (or disables) the relative-change stop condition.
    pub fn with_rel_tolerance(mut self, tol: Option<f64>) -> Self {
        self.rel_tolerance = tol;
        self
    }

    /// Sets the target-error stop condition.
    pub fn with_target_error(mut self, err: f64) -> Self {
        self.target_error = Some(err);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the error-estimation sample size.
    pub fn with_error_sample_rows(mut self, rows: usize) -> Self {
        self.error_sample_rows = rows;
        self
    }

    /// Fixes the number of input partitions.
    pub fn with_partitions(mut self, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        self.partitions = Some(parts);
        self
    }

    /// Enables smart-guess initialization.
    pub fn with_smart_guess(mut self, sg: SmartGuess) -> Self {
        self.smart_guess = Some(sg);
        self
    }

    /// Enables DFS checkpointing of the EM state every `iters` iterations.
    pub fn with_checkpoint_every(mut self, iters: usize) -> Self {
        assert!(iters > 0, "checkpoint interval must be at least one iteration");
        self.checkpoint_every = Some(iters);
        self
    }

    /// Injects a driver crash after the given iteration completes.
    pub fn with_crash_at_iteration(mut self, iter: usize) -> Self {
        assert!(iter > 0, "iterations are 1-based");
        self.crash_at_iteration = Some(iter);
        self
    }

    /// Stable key/value description of the config for run ledgers. Every
    /// knob that can change the fitted model or the run's shape appears;
    /// optional knobs render as "none" when disabled so two fingerprints
    /// always have the same keys.
    pub fn fingerprint(&self) -> Vec<(String, String)> {
        let opt_usize = |v: Option<usize>| v.map_or("none".to_string(), |x| x.to_string());
        let opt_f64 = |v: Option<f64>| v.map_or("none".to_string(), |x| format!("{x}"));
        vec![
            ("spca.checkpoint_every".into(), opt_usize(self.checkpoint_every)),
            ("spca.components".into(), self.components.to_string()),
            ("spca.error_sample_rows".into(), self.error_sample_rows.to_string()),
            (
                "spca.job_id".into(),
                self.job_id.clone().unwrap_or_else(|| "none".to_string()),
            ),
            ("spca.max_iters".into(), self.max_iters.to_string()),
            ("spca.partitions".into(), opt_usize(self.partitions)),
            ("spca.precision".into(), self.precision.label().to_string()),
            ("spca.rel_tolerance".into(), opt_f64(self.rel_tolerance)),
            ("spca.seed".into(), self.seed.to_string()),
            (
                "spca.smart_guess".into(),
                self.smart_guess.as_ref().map_or("none".to_string(), |sg| {
                    format!("{}x{}", sg.sample_fraction, sg.iterations)
                }),
            ),
            ("spca.target_error".into(), opt_f64(self.target_error)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SpcaConfig::new(50);
        assert_eq!(c.components, 50);
        assert_eq!(c.max_iters, 10);
        assert!(c.smart_guess.is_none());
    }

    #[test]
    fn builders_chain() {
        let c = SpcaConfig::new(3)
            .with_max_iters(7)
            .with_seed(9)
            .with_target_error(0.25)
            .with_rel_tolerance(None)
            .with_partitions(4)
            .with_error_sample_rows(64)
            .with_smart_guess(SmartGuess::default());
        assert_eq!(c.max_iters, 7);
        assert_eq!(c.seed, 9);
        assert_eq!(c.target_error, Some(0.25));
        assert_eq!(c.rel_tolerance, None);
        assert_eq!(c.partitions, Some(4));
        assert_eq!(c.error_sample_rows, 64);
        assert!(c.smart_guess.is_some());
        let c = c.with_checkpoint_every(2).with_crash_at_iteration(3);
        assert_eq!(c.checkpoint_every, Some(2));
        assert_eq!(c.crash_at_iteration, Some(3));
        assert_eq!(c.precision, Precision::F64);
        let c = c.with_precision(Precision::F32);
        assert_eq!(c.precision, Precision::F32);
        assert_eq!(c.job_id, None);
        let c = c.with_job_id("tenantA-fit0");
        assert_eq!(c.job_id.as_deref(), Some("tenantA-fit0"));
    }

    #[test]
    fn fingerprint_carries_job_id() {
        let fp = SpcaConfig::new(2).fingerprint();
        assert!(fp.contains(&("spca.job_id".into(), "none".into())));
        let fp = SpcaConfig::new(2).with_job_id("j7").fingerprint();
        assert!(fp.contains(&("spca.job_id".into(), "j7".into())));
        let keys: Vec<&String> = fp.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "fingerprint keys must stay sorted");
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_rejected() {
        let _ = SpcaConfig::new(2).with_checkpoint_every(0);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_rejected() {
        let _ = SpcaConfig::new(0);
    }
}
