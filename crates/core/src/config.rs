//! Configuration of a PCA fit.

use crate::error::SpcaError;
use linalg::Precision;

/// Which algorithm family a fit runs. Both produce a [`crate::PcaModel`],
/// share the input pipeline, byte meters, fault plans and checkpoint
/// machinery, and are each bitwise deterministic across worker counts,
/// engines and timing models — but their communication patterns differ
/// fundamentally (DESIGN.md §15): EM runs many thin iterations, randomized
/// subspace iteration runs few fat passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's probabilistic-PCA EM (default).
    #[default]
    PpcaEm,
    /// Randomized subspace iteration (Halko et al., arXiv:1007.5510):
    /// seeded Gaussian range sketch, q power passes with per-pass
    /// orthonormalization, final small SVD of the covariance sketch.
    Randomized,
}

impl Algorithm {
    /// Stable label used in fingerprints, trace names and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::PpcaEm => "ppca-em",
            Algorithm::Randomized => "randomized",
        }
    }

    /// Parses a CLI/user spelling. Accepts the fingerprint labels plus the
    /// common shorthands (`em`, `rpca`).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "em" | "ppca" | "ppca-em" => Some(Algorithm::PpcaEm),
            "randomized" | "rpca" | "rand" => Some(Algorithm::Randomized),
            _ => None,
        }
    }
}

/// Smart-guess initialization (the paper's sPCA-SG, Section 5.2): run the
/// algorithm on a small random row sample first and seed the full run with
/// the resulting `C` and `ss`.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartGuess {
    /// Fraction of rows to sample for the warm-up run (0 < f ≤ 1).
    pub sample_fraction: f64,
    /// EM iterations to spend on the sample.
    pub iterations: usize,
}

impl Default for SmartGuess {
    fn default() -> Self {
        SmartGuess { sample_fraction: 0.05, iterations: 5 }
    }
}

/// Configuration for [`crate::Spca`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpcaConfig {
    /// Number of principal components `d` (the paper uses 50 everywhere).
    pub components: usize,
    /// Hard cap on EM iterations (the paper caps at 10 in Table 2).
    pub max_iters: usize,
    /// Stop when the relative change of the reconstruction error between
    /// iterations falls below this (`None` disables the check).
    pub rel_tolerance: Option<f64>,
    /// Stop as soon as the sampled reconstruction error reaches this value
    /// (`None` disables). Used for "time to 95% of ideal accuracy" runs.
    pub target_error: Option<f64>,
    /// RNG seed: initialization of `C`/`ss` and the error-estimation row
    /// sample derive from it.
    pub seed: u64,
    /// Rows sampled for the reconstruction-error estimate (the paper also
    /// measures error on a random row subset to keep it affordable).
    pub error_sample_rows: usize,
    /// Number of input partitions (defaults to the cluster's core count at
    /// fit time when `None`).
    pub partitions: Option<usize>,
    /// Optional smart-guess initialization (sPCA-SG).
    pub smart_guess: Option<SmartGuess>,
    /// Checkpoint the EM state (`C`, `ss`, error) to the cluster's DFS
    /// every this many iterations (`None` disables). With a checkpoint
    /// present on the cluster, `fit` resumes from it instead of
    /// restarting — bitwise identically to the uninterrupted run.
    pub checkpoint_every: Option<usize>,
    /// Fault injection: kill the driver right after this iteration
    /// completes (and after any due checkpoint is written). The fit
    /// returns `SpcaError::DriverCrashed`; `None` disables.
    pub crash_at_iteration: Option<usize>,
    /// Which arithmetic the EM inner loop runs in. The default `F64` arm
    /// is bit-identical to every previous release; the reduced-precision
    /// arms trade accuracy (tracked by the `em.precision.divergence`
    /// meter) for kernel speed, and each arm is itself bitwise
    /// reproducible across worker counts and engines.
    pub precision: Precision,
    /// Job id scoping this fit's DFS namespace (input files, checkpoint
    /// blobs). `None` keeps the legacy shared names; multi-tenant runs
    /// must set distinct ids so concurrent checkpoints never collide
    /// (see `dcluster::hdfs::job_scoped`). Never changes the fitted
    /// model — only where its transient state lives.
    pub job_id: Option<String>,
    /// Algorithm family: the paper's PPCA-EM (default) or randomized
    /// subspace iteration. See [`Algorithm`].
    pub algorithm: Algorithm,
    /// Randomized arm only: oversampling columns `p` added to the sketch
    /// width (`K = d + p`). Halko et al. recommend 5–10; zero oversampling
    /// makes the sketch exactly square and is rejected by [`Self::validate`].
    pub rpca_oversample: usize,
    /// Randomized arm only: number of power-iteration passes `q` after the
    /// initial range sketch (total distributed passes = `q + 1`).
    pub rpca_power_iters: usize,
    /// Randomized arm only: caller's declaration that the input spectrum
    /// decays slowly (noisy). Purely a validation hint: with it set,
    /// `rpca_power_iters == 0` is rejected, because a plain one-pass sketch
    /// on a flat spectrum gives a subspace dominated by noise.
    pub rpca_noisy_spectrum: bool,
}

impl SpcaConfig {
    /// Defaults for `d` components: 10 iterations max, relative tolerance
    /// 1e-3, 256-row error sample.
    pub fn new(components: usize) -> Self {
        assert!(components > 0, "need at least one component");
        SpcaConfig {
            components,
            max_iters: 10,
            rel_tolerance: Some(1e-3),
            target_error: None,
            seed: 0x5bca,
            error_sample_rows: 256,
            partitions: None,
            smart_guess: None,
            checkpoint_every: None,
            crash_at_iteration: None,
            precision: Precision::F64,
            job_id: None,
            algorithm: Algorithm::PpcaEm,
            rpca_oversample: 10,
            rpca_power_iters: 2,
            rpca_noisy_spectrum: false,
        }
    }

    /// Selects the algorithm family (PPCA-EM or randomized).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the randomized sketch oversampling `p` (sketch width `d + p`).
    pub fn with_rpca_oversample(mut self, p: usize) -> Self {
        self.rpca_oversample = p;
        self
    }

    /// Sets the number of randomized power-iteration passes `q`.
    pub fn with_rpca_power_iters(mut self, q: usize) -> Self {
        self.rpca_power_iters = q;
        self
    }

    /// Declares the input spectrum noisy (flat tail). Validation then
    /// insists on at least one power pass.
    pub fn with_rpca_noisy_spectrum(mut self, noisy: bool) -> Self {
        self.rpca_noisy_spectrum = noisy;
        self
    }

    /// Rejects nonsensical knob combinations before any cluster work runs.
    /// `n_cols` is the input width `D` (the sketch `d + p` must fit in it).
    /// The EM arm currently has no rejectable combinations; the randomized
    /// arm has three, each pinned by a test in `crates/core/tests/rpca.rs`.
    pub fn validate(&self, n_cols: usize) -> Result<(), SpcaError> {
        if self.algorithm != Algorithm::Randomized {
            return Ok(());
        }
        if self.rpca_oversample == 0 {
            return Err(SpcaError::InvalidConfig {
                what: "randomized sketch needs oversampling >= 1 (rpca_oversample = 0 \
                       leaves no slack columns to capture the tail)"
                    .into(),
            });
        }
        if self.rpca_power_iters == 0 && self.rpca_noisy_spectrum {
            return Err(SpcaError::InvalidConfig {
                what: "spectrum flagged noisy but rpca_power_iters = 0: a one-pass \
                       sketch on a flat spectrum recovers noise, not signal"
                    .into(),
            });
        }
        let width = self.components + self.rpca_oversample;
        if width > n_cols {
            return Err(SpcaError::InvalidConfig {
                what: format!(
                    "sketch width d + p = {width} exceeds the input's {n_cols} columns; \
                     lower components or rpca_oversample"
                ),
            });
        }
        Ok(())
    }

    /// Scopes this fit's DFS namespace (checkpoints, inputs) to a job id.
    pub fn with_job_id(mut self, job: impl Into<String>) -> Self {
        self.job_id = Some(job.into());
        self
    }

    /// Selects the EM arithmetic arm (`f64`, `f32`, or `bf16`).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets (or disables) the relative-change stop condition.
    pub fn with_rel_tolerance(mut self, tol: Option<f64>) -> Self {
        self.rel_tolerance = tol;
        self
    }

    /// Sets the target-error stop condition.
    pub fn with_target_error(mut self, err: f64) -> Self {
        self.target_error = Some(err);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the error-estimation sample size.
    pub fn with_error_sample_rows(mut self, rows: usize) -> Self {
        self.error_sample_rows = rows;
        self
    }

    /// Fixes the number of input partitions.
    pub fn with_partitions(mut self, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        self.partitions = Some(parts);
        self
    }

    /// Enables smart-guess initialization.
    pub fn with_smart_guess(mut self, sg: SmartGuess) -> Self {
        self.smart_guess = Some(sg);
        self
    }

    /// Enables DFS checkpointing of the EM state every `iters` iterations.
    pub fn with_checkpoint_every(mut self, iters: usize) -> Self {
        assert!(iters > 0, "checkpoint interval must be at least one iteration");
        self.checkpoint_every = Some(iters);
        self
    }

    /// Injects a driver crash after the given iteration completes.
    pub fn with_crash_at_iteration(mut self, iter: usize) -> Self {
        assert!(iter > 0, "iterations are 1-based");
        self.crash_at_iteration = Some(iter);
        self
    }

    /// Stable key/value description of the config for run ledgers. Every
    /// knob that can change the fitted model or the run's shape appears;
    /// optional knobs render as "none" when disabled so two fingerprints
    /// always have the same keys.
    pub fn fingerprint(&self) -> Vec<(String, String)> {
        let opt_usize = |v: Option<usize>| v.map_or("none".to_string(), |x| x.to_string());
        let opt_f64 = |v: Option<f64>| v.map_or("none".to_string(), |x| format!("{x}"));
        vec![
            ("spca.algorithm".into(), self.algorithm.label().to_string()),
            ("spca.checkpoint_every".into(), opt_usize(self.checkpoint_every)),
            ("spca.components".into(), self.components.to_string()),
            ("spca.error_sample_rows".into(), self.error_sample_rows.to_string()),
            (
                "spca.job_id".into(),
                self.job_id.clone().unwrap_or_else(|| "none".to_string()),
            ),
            ("spca.max_iters".into(), self.max_iters.to_string()),
            ("spca.partitions".into(), opt_usize(self.partitions)),
            ("spca.precision".into(), self.precision.label().to_string()),
            ("spca.rel_tolerance".into(), opt_f64(self.rel_tolerance)),
            ("spca.rpca_noisy_spectrum".into(), self.rpca_noisy_spectrum.to_string()),
            ("spca.rpca_oversample".into(), self.rpca_oversample.to_string()),
            ("spca.rpca_power_iters".into(), self.rpca_power_iters.to_string()),
            ("spca.seed".into(), self.seed.to_string()),
            (
                "spca.smart_guess".into(),
                self.smart_guess.as_ref().map_or("none".to_string(), |sg| {
                    format!("{}x{}", sg.sample_fraction, sg.iterations)
                }),
            ),
            ("spca.target_error".into(), opt_f64(self.target_error)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SpcaConfig::new(50);
        assert_eq!(c.components, 50);
        assert_eq!(c.max_iters, 10);
        assert!(c.smart_guess.is_none());
    }

    #[test]
    fn builders_chain() {
        let c = SpcaConfig::new(3)
            .with_max_iters(7)
            .with_seed(9)
            .with_target_error(0.25)
            .with_rel_tolerance(None)
            .with_partitions(4)
            .with_error_sample_rows(64)
            .with_smart_guess(SmartGuess::default());
        assert_eq!(c.max_iters, 7);
        assert_eq!(c.seed, 9);
        assert_eq!(c.target_error, Some(0.25));
        assert_eq!(c.rel_tolerance, None);
        assert_eq!(c.partitions, Some(4));
        assert_eq!(c.error_sample_rows, 64);
        assert!(c.smart_guess.is_some());
        let c = c.with_checkpoint_every(2).with_crash_at_iteration(3);
        assert_eq!(c.checkpoint_every, Some(2));
        assert_eq!(c.crash_at_iteration, Some(3));
        assert_eq!(c.precision, Precision::F64);
        let c = c.with_precision(Precision::F32);
        assert_eq!(c.precision, Precision::F32);
        assert_eq!(c.job_id, None);
        let c = c.with_job_id("tenantA-fit0");
        assert_eq!(c.job_id.as_deref(), Some("tenantA-fit0"));
    }

    #[test]
    fn fingerprint_carries_job_id() {
        let fp = SpcaConfig::new(2).fingerprint();
        assert!(fp.contains(&("spca.job_id".into(), "none".into())));
        let fp = SpcaConfig::new(2).with_job_id("j7").fingerprint();
        assert!(fp.contains(&("spca.job_id".into(), "j7".into())));
        let keys: Vec<&String> = fp.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "fingerprint keys must stay sorted");
    }

    #[test]
    fn algorithm_labels_round_trip_through_parse() {
        for alg in [Algorithm::PpcaEm, Algorithm::Randomized] {
            assert_eq!(Algorithm::parse(alg.label()), Some(alg));
        }
        assert_eq!(Algorithm::parse("em"), Some(Algorithm::PpcaEm));
        assert_eq!(Algorithm::parse("rpca"), Some(Algorithm::Randomized));
        assert_eq!(Algorithm::parse("qr"), None);
    }

    #[test]
    fn fingerprint_carries_algorithm_and_rpca_knobs() {
        let fp = SpcaConfig::new(2).fingerprint();
        assert!(fp.contains(&("spca.algorithm".into(), "ppca-em".into())));
        let fp = SpcaConfig::new(2)
            .with_algorithm(Algorithm::Randomized)
            .with_rpca_oversample(4)
            .with_rpca_power_iters(3)
            .with_rpca_noisy_spectrum(true)
            .fingerprint();
        assert!(fp.contains(&("spca.algorithm".into(), "randomized".into())));
        assert!(fp.contains(&("spca.rpca_oversample".into(), "4".into())));
        assert!(fp.contains(&("spca.rpca_power_iters".into(), "3".into())));
        assert!(fp.contains(&("spca.rpca_noisy_spectrum".into(), "true".into())));
        let keys: Vec<&String> = fp.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "fingerprint keys must stay sorted");
    }

    #[test]
    fn validate_ignores_rpca_knobs_on_the_em_arm() {
        // EM with absurd rpca knobs still validates: the knobs are inert.
        let c = SpcaConfig::new(50).with_rpca_oversample(0);
        assert!(c.validate(10).is_ok());
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_rejected() {
        let _ = SpcaConfig::new(2).with_checkpoint_every(0);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_rejected() {
        let _ = SpcaConfig::new(0);
    }
}
