//! The engine-agnostic EM driver (Algorithm 4).
//!
//! The paper stresses that only three computations are distributed — the
//! consolidated `YtX`/`XtX` job, the `ss3` job, and the one-time
//! mean/Frobenius jobs — while "all other operations can easily run on a
//! single machine" in the driver. That split is made literal here: the
//! [`EmJobs`] trait is the distributed surface (implemented once per
//! engine in [`crate::spark`] and [`crate::mr`]) and [`run_em`] is the
//! driver program, shared verbatim by both platforms.

use dcluster::SimCluster;
use linalg::decomp::cholesky::solve_spd_right;
use linalg::decomp::lu::Lu;
use linalg::{Mat, SparseMat};

use crate::accuracy;
use crate::checkpoint::{self, EmCheckpoint};
use crate::config::SpcaConfig;
use crate::error::SpcaError;
use crate::mean_prop::{ss3_finalize, YtxPartial};
use crate::model::{IterationStat, PcaModel, SpcaRun};
use crate::Result;

/// The distributed jobs an engine must provide.
pub trait EmJobs {
    /// Number of input rows N.
    fn num_rows(&self) -> usize;
    /// Number of input columns D.
    fn num_cols(&self) -> usize;
    /// `meanJob`: column means of `Y` (Algorithm 4, line 3).
    fn mean_job(&mut self) -> Vec<f64>;
    /// `FnormJob`: `‖Y − 1⊗mean‖²_F` via Algorithm 3 (line 4).
    fn fnorm_job(&mut self, mean: &[f64]) -> f64;
    /// Consolidated `YtXJob` (line 9): one distributed pass computing the
    /// `XtX` and `YtX` contributions and the hoisted `Σx`, recomputing `X`
    /// on demand from the broadcast `CM` and `Xm`.
    fn ytx_job(&mut self, cm: &Mat, xm: &[f64]) -> YtxPartial;
    /// `ss3Job` (line 13): distributed part of ss3 (`Σ xᵢ·(C'yᵢ')`).
    fn ss3_job(&mut self, cm: &Mat, xm: &[f64], c_new: &Mat) -> f64;
}

/// Relative max-abs divergence between the reduced-precision arm's
/// `YtXJob` partial and the `f64` reference, both computed on the same
/// small row sample. Driver-local instrumentation: never shipped, never
/// charged.
pub(crate) fn precision_divergence(
    sample: &SparseMat,
    cm: &Mat,
    xm: &[f64],
    d: usize,
    precision: linalg::Precision,
) -> f64 {
    let mut arm = YtxPartial::new(d);
    arm.add_block_prec(sample, cm, xm, precision);
    let mut reference = YtxPartial::new(d);
    reference.add_block(sample, cm, xm);
    let abs = arm.xtx.max_abs_diff(&reference.xtx);
    let scale = reference.xtx.data().iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-300);
    abs / scale
}

/// Runs the EM driver loop over the given engine jobs.
///
/// `error_sample` is the pre-drawn row sample the per-iteration accuracy
/// estimate uses; it is instrumentation and charged to neither engine.
pub fn run_em(
    cluster: &SimCluster,
    jobs: &mut dyn EmJobs,
    error_sample: &SparseMat,
    config: &SpcaConfig,
    init: (Mat, f64),
) -> Result<SpcaRun> {
    let n = jobs.num_rows();
    let d_in = jobs.num_cols();
    let d = config.components;
    if n == 0 || d_in == 0 {
        return Err(SpcaError::EmptyInput);
    }
    if d > d_in.min(n) {
        return Err(SpcaError::TooManyComponents { requested: d, available: d_in.min(n) });
    }

    let start_metrics = cluster.metrics();
    let start_time = start_metrics.virtual_time_secs;
    let start_intermediate = start_metrics.intermediate_bytes;
    // Run-ledger capture: skipped entirely (no record construction) when
    // no sink is installed.
    let ledger_on = obs::ledger::sink_enabled();
    let mut ledger_rows: Vec<obs::ledger::IterationRow> = Vec::new();

    let _run_host_span = obs::span_lazy("run", || format!("run_em N={n} D={d_in} d={d}"));
    if obs::enabled() {
        cluster.trace_begin(
            "run",
            "run_em",
            vec![
                ("N", (n as u64).into()),
                ("D", (d_in as u64).into()),
                ("d", (d as u64).into()),
                ("precision", config.precision.label().into()),
                ("codec", cluster.wire_codec().label().into()),
            ],
        );
    }

    // The driver holds C, CM, YtX and scratch — all O(D·d). This is the
    // whole point of Figure 8: sPCA's driver memory does not grow with D².
    let driver_bytes = 4 * (d_in * d * 8) as u64 + (d_in * 8) as u64;
    let _driver_guard = cluster.alloc_driver(driver_bytes)?;

    let (mut c, mut ss) = init;
    assert_eq!((c.rows(), c.cols()), (d_in, d), "init C has wrong shape");

    // Lines 3–4: one-time jobs. Also re-run on a resume: they are
    // deterministic, so recomputing them reproduces the original values.
    let mean = jobs.mean_job();
    let ss1 = jobs.fnorm_job(&mean);

    let mut iterations: Vec<IterationStat> = Vec::new();
    let mut prev_error = f64::INFINITY;

    // Resume: with checkpointing enabled and a readable checkpoint of the
    // right shape on the DFS, continue from it instead of restarting. A
    // missing/lost/corrupt/mismatched blob is a fresh start — recovery
    // code must tolerate anything a crash can leave behind.
    let mut start_iter = 1;
    let checkpoint_file = checkpoint::file_name(config.job_id.as_deref());
    if config.checkpoint_every.is_some() {
        let restored = cluster
            .dfs()
            .get_blob(cluster, &checkpoint_file)
            .ok()
            .and_then(|blob| EmCheckpoint::decode(&blob).ok())
            .filter(|ck| (ck.c.rows(), ck.c.cols()) == (d_in, d));
        if let Some(ck) = restored {
            cluster.note_checkpoint_restored(ck.iteration as u64);
            start_iter = ck.iteration + 1;
            prev_error = ck.prev_error;
            c = ck.c;
            ss = ck.ss;
        }
    }

    for iter in start_iter..=config.max_iters {
        let iter_cat_start = cluster.category_time_us();
        if obs::enabled() {
            cluster.trace_begin("iteration", &format!("iteration {iter}"), Vec::new());
        }
        let _iter_host_span = obs::span_lazy("iteration", || format!("em iteration {iter}"));

        // Lines 6–8 (driver): M, CM = C·M⁻¹, Xm = Ym·CM.
        let (m_inv, cm, xm) = {
            let _s = obs::span("driver", "em driver update");
            let mut m = c.matmul_tn(&c);
            m.add_diag(ss);
            let m_inv = Lu::new(&m)?.inverse();
            let cm = c.matmul(&m_inv);
            let xm = cm.vecmat(&mean);
            (m_inv, cm, xm)
        };

        // Line 9 (distributed): consolidated XtX/YtX pass.
        let partial = jobs.ytx_job(&cm, &xm);
        debug_assert_eq!(partial.rows_seen as usize, n, "YtXJob must see every row");

        // Line 10 (driver): XtX += N·ss·M⁻¹.
        let (c_new, ss2) = {
            let _s = obs::span("driver", "em driver assemble");
            let mut xtx = partial.xtx.clone();
            xtx.add_scaled(n as f64 * ss, &m_inv);
            // Driver-side assembly of the dense YtX.
            let ytx = partial.finalize_ytx(&mean);

            // Line 11: C = YtX / XtX.
            let c_new = solve_spd_right(&xtx, &ytx)?;

            // Line 12: ss2 = tr(XtX·C'C).
            let ctc = c_new.matmul_tn(&c_new);
            let ss2 = xtx.matmul(&ctc).trace();
            (c_new, ss2)
        };

        // Line 13 (distributed): ss3.
        let part = jobs.ss3_job(&cm, &xm, &c_new);
        let ss3 = ss3_finalize(part, &partial.sum_x, &c_new, &mean);

        // Line 14: variance update.
        c = c_new;
        ss = ((ss1 + ss2 - 2.0 * ss3) / (n as f64) / (d_in as f64)).max(1e-12);

        // Instrumentation: sampled reconstruction error (not charged).
        let model = PcaModel::new(c.clone(), mean.clone(), ss);
        let error = accuracy::reconstruction_error(error_sample, &model)?;
        iterations.push(IterationStat {
            iteration: iter,
            error,
            ss,
            virtual_time_secs: cluster.metrics().virtual_time_secs - start_time,
        });

        // Convergence telemetry: the paper's 1 − ss·N·D/‖Y−mean‖²_F
        // objective plus the sampled error, plotted against virtual time.
        let objective = 1.0 - ss * (n as f64) * (d_in as f64) / ss1;
        // Reduced-precision arms: track how far this iteration's arm
        // drifts from the f64 reference on the (uncharged) error sample —
        // the divergence meter the precision ladder is judged by. One
        // small local block, never shipped.
        let divergence = if config.precision != linalg::Precision::F64
            && (obs::enabled() || ledger_on)
        {
            precision_divergence(error_sample, &cm, &xm, d, config.precision)
        } else {
            f64::NAN
        };
        // Per-category time this iteration spent, by diffing the cluster's
        // category meters across the iteration.
        let iter_cat_end = cluster.category_time_us();
        let mut cat_us = [0u64; 5];
        for (i, slot) in cat_us.iter_mut().enumerate() {
            *slot = iter_cat_end[i].saturating_sub(iter_cat_start[i]);
        }
        if obs::enabled() {
            cluster.trace_counter("em.error", error);
            cluster.trace_counter("em.ss", ss);
            cluster.trace_counter("em.objective", objective);
            if config.precision != linalg::Precision::F64 {
                cluster.trace_counter("em.precision.divergence", divergence);
            }
            for (i, name) in obs::critpath::CATEGORIES.iter().enumerate() {
                cluster.trace_counter(&format!("em.iter.{name}_secs"), cat_us[i] as f64 / 1e6);
            }
            cluster.trace_end(
                "iteration",
                &format!("iteration {iter}"),
                vec![("error", error.into()), ("objective", objective.into())],
            );
        }
        if ledger_on {
            ledger_rows.push(obs::ledger::IterationRow {
                iteration: iter as u64,
                error,
                objective,
                divergence,
                virtual_secs: cluster.metrics().virtual_time_secs - start_time,
                cat_us,
            });
        }

        // Iteration-boundary checkpoint: the complete driver state after
        // this iteration, written before the stop checks so a crash at any
        // point resumes to exactly this state.
        if let Some(every) = config.checkpoint_every {
            if iter % every == 0 {
                let blob =
                    EmCheckpoint { iteration: iter, c: c.clone(), ss, prev_error: error }.encode();
                let bytes = blob.len() as u64;
                cluster.dfs().put_blob(cluster, checkpoint_file.clone(), blob);
                cluster.note_checkpoint_written(iter as u64, bytes);
            }
        }
        // Injected driver crash (fault testing): state is on the DFS (if
        // checkpointing is on); the next fit on this cluster resumes.
        if config.crash_at_iteration == Some(iter) {
            return Err(SpcaError::DriverCrashed { iteration: iter });
        }

        // STOP_CONDITION.
        if let Some(target) = config.target_error {
            if error <= target {
                break;
            }
        }
        if let Some(tol) = config.rel_tolerance {
            if prev_error.is_finite() && (prev_error - error).abs() <= tol * prev_error.abs() {
                break;
            }
        }
        prev_error = error;
    }

    // The run completed: its checkpoint (if any) is spent. Removing it
    // keeps a later, unrelated fit on this cluster from resuming into the
    // wrong run.
    if config.checkpoint_every.is_some() {
        let _ = cluster.dfs().delete(&checkpoint_file);
    }

    if obs::enabled() {
        cluster.trace_end("run", "run_em", vec![("iterations", (iterations.len() as u64).into())]);
    }
    let end = cluster.metrics();
    let model = PcaModel::new(c, mean, ss);
    if ledger_on {
        let mut fingerprint = config.fingerprint();
        fingerprint.extend(cluster.config().fingerprint());
        fingerprint.push(("engine".to_string(), cluster.trace_label()));
        fingerprint.sort();
        let mut attribution_us = [0u64; 5];
        for (i, slot) in attribution_us.iter_mut().enumerate() {
            *slot = end.time_us[i].saturating_sub(start_metrics.time_us[i]);
        }
        obs::ledger::record_run(obs::ledger::RunRecord {
            label: cluster.trace_label(),
            config: fingerprint,
            model_hash: format!("{:016x}", model.content_hash()),
            iterations_run: iterations.len() as u64,
            final_error: iterations.last().map_or(f64::INFINITY, |s| s.error),
            virtual_time_secs: end.virtual_time_secs - start_time,
            bytes: vec![
                ("network_bytes".into(), end.network_bytes - start_metrics.network_bytes),
                (
                    "dfs_bytes_written".into(),
                    end.dfs_bytes_written - start_metrics.dfs_bytes_written,
                ),
                ("dfs_bytes_read".into(), end.dfs_bytes_read - start_metrics.dfs_bytes_read),
                ("intermediate_bytes".into(), end.intermediate_bytes - start_intermediate),
            ],
            attribution_us,
            clock_violations: end.clock_violations - start_metrics.clock_violations,
            registry: cluster.registry().snapshot(),
            iterations: ledger_rows,
        });
    }
    Ok(SpcaRun {
        model,
        iterations,
        virtual_time_secs: end.virtual_time_secs - start_time,
        intermediate_bytes: end.intermediate_bytes - start_intermediate,
    })
}
