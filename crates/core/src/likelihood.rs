//! The PPCA data log-likelihood (Section 2.4 of the paper).
//!
//! `L({y_r}) = −N/2 · (D·ln 2π + ln|Σ| + tr(Σ⁻¹·S))` with
//! `Σ = ss·I + C·Cᵀ` and `S` the sample covariance of the centered data.
//! EM maximizes exactly this quantity, and its monotone increase is *the*
//! invariant that distinguishes a correct EM implementation from a
//! subtly broken one — the tests assert it on every iterate.
//!
//! Everything is computed through d×d quantities only (Woodbury):
//!
//! * `ln|Σ| = (D−d)·ln ss + ln|M|`, `M = CᵀC + ss·I`;
//! * `tr(Σ⁻¹S) = (tr S − tr(M⁻¹·CᵀSC))/ss`, with `tr S = ‖Yc‖²_F/N` from
//!   the Frobenius job and `CᵀSC = (Yc·C)ᵀ(Yc·C)/N` from one sparse pass —
//!   both fully mean-propagated, so the evaluation never densifies `Y`.

use linalg::decomp::lu::Lu;
use linalg::{Mat, SparseMat};

use crate::frobenius;
use crate::model::PcaModel;
use crate::Result;

/// Log-likelihood of the data under the model (natural log).
pub fn log_likelihood(y: &SparseMat, model: &PcaModel) -> Result<f64> {
    assert_eq!(y.cols(), model.input_dim(), "dimension mismatch");
    let n = y.rows();
    let d_in = y.cols();
    let d = model.output_dim();
    assert!(n > 0, "need at least one row");
    let ss = model.noise_variance().max(1e-300);
    let c = model.components();
    let mean = model.mean();

    // M = CᵀC + ss·I and its determinant/inverse (d×d only).
    let mut m = c.matmul_tn(c);
    m.add_diag(ss);
    let lu = Lu::new(&m)?;
    let ln_det_m = lu.det().abs().max(f64::MIN_POSITIVE).ln();
    let m_inv = lu.inverse();

    // tr S = ‖Yc‖²_F / N via Algorithm 3 (no densification).
    let tr_s = frobenius::centered_sq(y, mean) / n as f64;

    // A = Yc·C computed with mean propagation: A_i = y_i·C − Ym·C.
    let shift = c.vecmat(mean); // d
    let mut g = Mat::zeros(d, d); // AᵀA
    for r in 0..y.rows() {
        let mut a = y.row(r).mul_mat(c);
        linalg::vector::axpy(-1.0, &shift, &mut a);
        g.add_outer(1.0, &a, &a);
    }
    g.scale(1.0 / n as f64); // CᵀSC

    let tr_sigma_inv_s = (tr_s - m_inv.matmul(&g).trace()) / ss;
    let ln_det_sigma = (d_in - d) as f64 * ss.ln() + ln_det_m;

    let two_pi = 2.0 * std::f64::consts::PI;
    Ok(-0.5 * n as f64 * (d_in as f64 * two_pi.ln() + ln_det_sigma + tr_sigma_inv_s))
}

/// Per-row average log-likelihood — scale-independent convenience.
pub fn avg_log_likelihood(y: &SparseMat, model: &PcaModel) -> Result<f64> {
    Ok(log_likelihood(y, model)? / y.rows().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppca;
    use linalg::Prng;

    fn dense_oracle(y: &SparseMat, model: &PcaModel) -> f64 {
        // Direct evaluation with explicit D×D matrices.
        let n = y.rows();
        let d_in = y.cols();
        let mut yc = y.to_dense();
        yc.sub_row_vector(model.mean());
        let mut s = yc.matmul_tn(&yc);
        s.scale(1.0 / n as f64);
        // Σ = ss·I + CCᵀ.
        let mut sigma = model.components().matmul_nt(model.components());
        sigma.add_diag(model.noise_variance());
        let lu = Lu::new(&sigma).unwrap();
        let ln_det = lu.det().abs().ln();
        let sigma_inv = lu.inverse();
        let tr = sigma_inv.matmul(&s).trace();
        let two_pi = 2.0 * std::f64::consts::PI;
        -0.5 * n as f64 * (d_in as f64 * two_pi.ln() + ln_det + tr)
    }

    fn test_data(seed: u64) -> SparseMat {
        let mut rng = Prng::seed_from_u64(seed);
        let spec = datasets::LowRankSpec {
            rows: 120,
            cols: 25,
            topics: 3,
            words_per_row: 6.0,
            topic_affinity: 0.85,
            zipf_exponent: 1.0,
        };
        datasets::sparse_lowrank(&spec, &mut rng)
    }

    #[test]
    fn woodbury_matches_dense_oracle() {
        let y = test_data(1);
        let (model, _) = ppca::fit_dense(&y.to_dense(), 3, 5, 7).unwrap();
        let fast = log_likelihood(&y, &model).unwrap();
        let slow = dense_oracle(&y, &model);
        assert!(
            (fast - slow).abs() < 1e-6 * (1.0 + slow.abs()),
            "{fast} vs {slow}"
        );
    }

    #[test]
    fn em_increases_likelihood_monotonically() {
        // The EM guarantee, asserted on every iterate of Algorithm 1.
        let y = test_data(2);
        let dense = y.to_dense();
        let (_, trace) = ppca::fit_dense(&dense, 3, 12, 11).unwrap();
        let mean = dense.col_means();
        let mut prev = f64::NEG_INFINITY;
        for (c_iter, ss_iter) in trace.c_history.iter().zip(&trace.ss_history) {
            let model = PcaModel::new(c_iter.clone(), mean.clone(), *ss_iter);
            let ll = log_likelihood(&y, &model).unwrap();
            assert!(
                ll >= prev - 1e-6 * prev.abs().max(1.0),
                "likelihood decreased: {prev} → {ll}"
            );
            prev = ll;
        }
    }

    #[test]
    fn distributed_fit_increases_likelihood_too() {
        let y = test_data(3);
        let cluster = dcluster::SimCluster::new(dcluster::ClusterConfig::paper_cluster());
        let run = crate::Spca::new(
            crate::SpcaConfig::new(3).with_max_iters(6).with_rel_tolerance(None),
        )
        .fit_spark(&cluster, &y)
        .unwrap();
        // Final model beats the random-init model decisively.
        let (c0, ss0) = crate::init::random_init(y.cols(), 3, run.model.components().cols() as u64);
        let init_model = PcaModel::new(c0, run.model.mean().to_vec(), ss0);
        let ll_init = log_likelihood(&y, &init_model).unwrap();
        let ll_fit = log_likelihood(&y, &run.model).unwrap();
        assert!(ll_fit > ll_init, "fit {ll_fit} must beat init {ll_init}");
    }

    #[test]
    fn better_model_scores_higher() {
        let y = test_data(4);
        let dense = y.to_dense();
        let (short, _) = ppca::fit_dense(&dense, 3, 1, 5).unwrap();
        let (long, _) = ppca::fit_dense(&dense, 3, 15, 5).unwrap();
        let ll_short = log_likelihood(&y, &short).unwrap();
        let ll_long = log_likelihood(&y, &long).unwrap();
        assert!(ll_long >= ll_short);
    }

    #[test]
    fn avg_is_total_over_n() {
        let y = test_data(5);
        let (model, _) = ppca::fit_dense(&y.to_dense(), 2, 4, 3).unwrap();
        let total = log_likelihood(&y, &model).unwrap();
        let avg = avg_log_likelihood(&y, &model).unwrap();
        assert!((avg * y.rows() as f64 - total).abs() < 1e-9 * total.abs());
    }
}
