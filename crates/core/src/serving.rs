//! Multi-tenant projection serving on the simulated cluster.
//!
//! The paper fits one model per cluster run; the production system the
//! roadmap points at runs many tenants on one cluster — each submitting
//! fit jobs through a job-level scheduler ([`dcluster::jobs`]) while its
//! already-fitted models answer batched Y→X transform requests. This
//! module is that serving path:
//!
//! * **Fit jobs** are admitted by the configured [`SchedulerPolicy`]
//!   (FIFO / fair-share / backfill) onto the shared core pool; each
//!   dispatched job then *really* fits (the engines' bitwise-determinism
//!   contract carries over verbatim) under a job-scoped DFS namespace.
//! * **Serve batches** are modeled requests: each batch of rows drawn
//!   from the tenant's request pool is routed to a virtual node, really
//!   transformed through the fitted model's `CM` projection
//!   ([`crate::mean_prop::latent_row`] — the same O(z·d) kernel the EM
//!   jobs use), priced on the wire codec for request/response bytes, and
//!   completed on the discrete-event queue.
//! * **Model caching** is per node: a model is pushed to a node on first
//!   use (a metered broadcast) and held in an LRU-by-bytes cache bounded
//!   by `ClusterConfig::model_cache_bytes`.
//! * **Admission control** bounds each node's waiting queue at
//!   `ClusterConfig::admission_queue_capacity`; overflowing arrivals are
//!   deterministically rejected and counted.
//!
//! # Determinism
//!
//! Every virtual time here is a pure function of shapes, non-zero
//! counts, config knobs and the spec's seed — *never* measured host
//! time — and all of them order through the integer-nanosecond
//! [`EventQueue`]. The full request/completion trace folds into
//! [`ServingOutcome::trace_hash`], which also eats each response's
//! checksum (and therefore each fitted model's exact bits): one u64
//! certifies that the schedule *and* the models are bitwise identical
//! across host worker counts, scheduler policies' seeds, and chaos
//! plans.

use std::collections::VecDeque;
use std::sync::Arc;

use dcluster::events::{ns_to_secs, secs_to_ns, EventQueue, SimNanos};
use dcluster::jobs::{percentile, schedule_jobs, JobSpec, ScheduleOutcome};
use dcluster::SimCluster;
use linalg::SparseMat;

use crate::config::SpcaConfig;
use crate::error::SpcaError;
use crate::mean_prop::latent_row;
use crate::model::PcaModel;
use crate::Result;

/// One fit job a tenant submits to the scheduler.
#[derive(Debug, Clone)]
pub struct FitJob {
    /// Cluster-unique job id (claims the `jobs/<id>/` DFS namespace).
    pub id: String,
    /// Virtual submission time.
    pub submit_secs: f64,
    /// Cores the job reserves while fitting.
    pub cores: usize,
    /// Input matrix.
    pub y: Arc<SparseMat>,
    /// Fit configuration (its `job_id` is overwritten with `id`).
    pub config: SpcaConfig,
}

/// A tenant's transform-request stream.
#[derive(Debug, Clone)]
pub struct ServeLoad {
    /// Rows requests are drawn from (rotating row windows).
    pub pool: Arc<SparseMat>,
    /// Number of batches in the stream.
    pub batches: usize,
    /// Rows per batch (each row is one transform request).
    pub batch_rows: usize,
    /// Mean batch arrival rate, batches per virtual second.
    pub rate_per_sec: f64,
    /// Virtual time the stream opens.
    pub start_secs: f64,
}

/// One tenant: its fit queue, its serve stream, and optionally a model
/// fitted in an earlier run (serving can start at t=0 with it).
#[derive(Debug, Clone, Default)]
pub struct TenantWorkload {
    /// Display name (reports).
    pub name: String,
    /// Fit jobs this tenant submits.
    pub fit_jobs: Vec<FitJob>,
    /// Transform traffic, if the tenant serves.
    pub serve: Option<ServeLoad>,
    /// Pre-fitted model (ready at t=0). When fit jobs also complete,
    /// the latest-finishing fit's model replaces it.
    pub model: Option<PcaModel>,
}

/// Chaos injection for the serving path: crash a node after the N-th
/// batch arrival. In-flight and queued batches on the node are
/// re-dispatched to survivors after the retry delay, and survivors
/// re-broadcast the models the crashed cache held.
#[derive(Debug, Clone, Copy)]
pub struct ServeChaos {
    /// Node to crash.
    pub crash_node: usize,
    /// Global batch-arrival count that triggers the crash.
    pub at_batch: u64,
}

/// A full mixed fit+serve workload.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Seed for arrival jitter and request routing.
    pub seed: u64,
    /// Modeled per-core compute rate for fit runtimes and batch service
    /// times, in flops/sec.
    pub flops_per_sec_per_core: f64,
    /// The tenants, indexed by position (keys `fair_share_weights`).
    pub tenants: Vec<TenantWorkload>,
    /// Optional mid-serve node crash.
    pub chaos: Option<ServeChaos>,
}

impl ServeSpec {
    /// A spec with no tenants and a 1 Gflop/s/core compute model.
    pub fn new(seed: u64) -> Self {
        ServeSpec { seed, flops_per_sec_per_core: 1e9, tenants: Vec::new(), chaos: None }
    }

    /// Rejects mis-specified workloads before any virtual time is
    /// charged. The headline rule: a tenant that serves must bring a
    /// model — fitted earlier or fitted by one of its own jobs.
    pub fn validate(&self, cluster: &SimCluster) -> Result<()> {
        let bad = |what: String| Err(SpcaError::InvalidServing { what });
        if self.tenants.is_empty() {
            return bad("spec has no tenants".into());
        }
        if !self.flops_per_sec_per_core.is_finite() || self.flops_per_sec_per_core <= 0.0 {
            return bad(format!(
                "flops_per_sec_per_core must be > 0, got {}",
                self.flops_per_sec_per_core
            ));
        }
        for (t, tenant) in self.tenants.iter().enumerate() {
            let Some(serve) = &tenant.serve else { continue };
            if tenant.fit_jobs.is_empty() && tenant.model.is_none() {
                return bad(format!(
                    "tenant {t} ({:?}) serves without a fitted model: give it a model or at \
                     least one fit job",
                    tenant.name
                ));
            }
            if serve.batches == 0 || serve.batch_rows == 0 {
                return bad(format!("tenant {t}: serve stream must have batches and rows"));
            }
            if serve.pool.rows() == 0 {
                return bad(format!("tenant {t}: request pool is empty"));
            }
            if !serve.rate_per_sec.is_finite() || serve.rate_per_sec <= 0.0 {
                return bad(format!(
                    "tenant {t}: rate_per_sec must be > 0, got {}",
                    serve.rate_per_sec
                ));
            }
        }
        if let Some(chaos) = &self.chaos {
            let nodes = cluster.config().nodes;
            if chaos.crash_node >= nodes {
                return bad(format!(
                    "chaos.crash_node {} out of range for {nodes} nodes",
                    chaos.crash_node
                ));
            }
            if nodes < 2 {
                return bad("chaos crash needs at least one survivor node".into());
            }
        }
        Ok(())
    }
}

/// Per-tenant serving statistics (one row of `trace_report`'s table).
#[derive(Debug, Clone)]
pub struct TenantServeStats {
    /// Tenant name.
    pub name: String,
    /// Fit jobs that ran to completion.
    pub jobs_completed: usize,
    /// Fit jobs bounced by scheduler admission control.
    pub jobs_rejected: usize,
    /// Total virtual queueing delay across completed fit jobs.
    pub wait_secs_total: f64,
    /// Total virtual service time across completed fit jobs.
    pub run_secs_total: f64,
    /// Transform requests (rows) served to completion.
    pub requests: u64,
    /// Batches served to completion.
    pub batches: u64,
    /// Batches rejected by node admission control (or model-less).
    pub batches_rejected: u64,
    /// Model-cache hits across this tenant's batches.
    pub cache_hits: u64,
    /// Model-cache misses (each one a metered model push).
    pub cache_misses: u64,
    /// p50 batch latency, virtual seconds.
    pub latency_p50_secs: f64,
    /// p99 batch latency, virtual seconds.
    pub latency_p99_secs: f64,
    /// Served requests per virtual second over the tenant's window.
    pub qps: f64,
    /// Content hash of the model that served (None if never fitted).
    pub model_hash: Option<u64>,
}

impl TenantServeStats {
    /// Cache hit rate in [0, 1] (0 with no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Everything one mixed fit+serve run produced.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// Per-tenant statistics, in tenant order.
    pub tenants: Vec<TenantServeStats>,
    /// The fit-job schedule.
    pub schedule: ScheduleOutcome,
    /// The model each tenant ended up serving with, in tenant order.
    pub models: Vec<Option<PcaModel>>,
    /// FNV-1a over every batch's terminal record *and* response
    /// checksum, in event order — the one-number determinism certificate.
    pub trace_hash: u64,
    /// Transform requests (rows) served to completion.
    pub requests_total: u64,
    /// Batches served to completion.
    pub batches_total: u64,
    /// Batches rejected.
    pub rejected_total: u64,
    /// Model pushes to nodes (cache misses).
    pub broadcasts: u64,
    /// Broadcasts re-issued to survivors after the chaos crash.
    pub rebroadcasts: u64,
    /// p50 batch latency across all tenants, virtual seconds.
    pub latency_p50_secs: f64,
    /// p99 batch latency across all tenants, virtual seconds.
    pub latency_p99_secs: f64,
    /// Virtual completion time of the whole workload.
    pub makespan_secs: f64,
    /// Event-queue heap operations (scheduler + serving loops).
    pub events_processed: u64,
}

/// 64-bit finalizer (splitmix64's) for jitter and routing decisions.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

fn fnv(h: u64, x: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = h;
    for &b in &x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Modeled fit runtime for the scheduler: EM's per-iteration flop count
/// over the job's core reservation, plus a fixed submit overhead. A pure
/// function of shapes and config — never measured host time — so the
/// schedule is identical on every machine.
fn fit_runtime_secs(job: &FitJob, flops_per_sec_per_core: f64) -> f64 {
    let d = job.config.components as f64;
    let nnz = job.y.nnz() as f64;
    let n = job.y.rows() as f64;
    let cols = job.y.cols() as f64;
    let iter_flops = 4.0 * nnz * d + 2.0 * n * d * d + 2.0 * cols * d * d;
    let iters = job.config.max_iters.max(1) as f64;
    1.0 + iters * iter_flops / (job.cores.max(1) as f64 * flops_per_sec_per_core)
}

/// Encoded size of a model on the wire: `C` (D×d), `μ` (D), `ss`.
fn model_wire_bytes(cluster: &SimCluster, model: &PcaModel) -> u64 {
    let d_in = model.input_dim() as u64;
    let d = model.output_dim() as u64;
    cluster.sizing().f64_payload((d_in * d + d_in + 1) as usize)
}

/// One precomputed serve batch: arrival, routing salt, modeled service
/// time, wire bytes, and the *real* response checksum.
struct Batch {
    tenant: usize,
    index: u64,
    arrival_ns: SimNanos,
    service_ns: SimNanos,
    req_bytes: u64,
    resp_bytes: u64,
    checksum: u64,
}

/// Per-node serving state.
struct Node {
    alive: bool,
    reserved: usize,
    active: Vec<(usize, u64)>, // (batch idx, completion event seq)
    waiting: VecDeque<usize>,
    cache: Vec<CacheEntry>,
    cache_bytes: u64,
}

struct CacheEntry {
    tenant: usize,
    bytes: u64,
    last_use: (SimNanos, u64), // (virtual time, use seq) — the LRU key
}

enum SEv {
    FitStart(usize),
    FitEnd(usize),
    Arrive { batch: usize, redispatch: bool },
    Complete { node: usize, batch: usize },
}

/// Runs the full mixed workload: schedule the fit queue, really fit each
/// dispatched job (bitwise-deterministic models, job-scoped DFS
/// namespaces), then serve every tenant's batch stream through the
/// event queue with per-node caches and admission control.
pub fn run_serving(cluster: &SimCluster, spec: &ServeSpec) -> Result<ServingOutcome> {
    spec.validate(cluster)?;
    let cfg = cluster.config().clone();
    let registry = cluster.registry();

    // ---- Phase 1: schedule the fit queue. -------------------------------
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut job_refs: Vec<(usize, usize)> = Vec::new(); // (tenant, job idx)
    for (t, tenant) in spec.tenants.iter().enumerate() {
        for (j, job) in tenant.fit_jobs.iter().enumerate() {
            jobs.push(JobSpec {
                id: job.id.clone(),
                tenant: t,
                submit_secs: job.submit_secs,
                cores: job.cores.max(1),
                runtime_secs: fit_runtime_secs(job, spec.flops_per_sec_per_core),
            });
            job_refs.push((t, j));
        }
    }
    let schedule = schedule_jobs(
        &jobs,
        &cfg.fair_share_weights,
        cfg.total_cores(),
        cfg.scheduler,
        cfg.admission_queue_capacity,
    );

    // ---- Phase 2: really fit each dispatched job, in dispatch order. ----
    // Claim every admitted job's DFS namespace first: a duplicate id must
    // fail the whole run before any fit writes a byte.
    for rec in &schedule.records {
        cluster.dfs().register_job(&rec.id).map_err(SpcaError::from)?;
    }
    let mut models: Vec<Option<PcaModel>> = spec.tenants.iter().map(|t| t.model.clone()).collect();
    let mut model_ready_ns: Vec<SimNanos> = spec
        .tenants
        .iter()
        .map(|t| if t.model.is_some() { 0 } else { SimNanos::MAX })
        .collect();
    let mut model_finish: Vec<f64> = vec![-1.0; spec.tenants.len()];
    for id in &schedule.start_order {
        let pos = jobs.iter().position(|j| &j.id == id).expect("started job exists");
        let rec = schedule.records.iter().find(|r| &r.id == id).expect("record exists");
        let (t, j) = job_refs[pos];
        let fit_job = &spec.tenants[t].fit_jobs[j];
        let config = fit_job.config.clone().with_job_id(fit_job.id.clone());
        let run = crate::spark::fit(cluster, &fit_job.y, &config)?;
        // The latest-finishing fit's model is the one the tenant serves
        // with (ties resolve by dispatch order — deterministic).
        if rec.finish_secs >= model_finish[t] {
            model_finish[t] = rec.finish_secs;
            model_ready_ns[t] = secs_to_ns(rec.finish_secs);
            models[t] = Some(run.model);
        }
    }

    // ---- Phase 3: precompute every batch (real transforms). -------------
    let model_bytes: Vec<u64> = models
        .iter()
        .map(|m| m.as_ref().map_or(0, |m| model_wire_bytes(cluster, m)))
        .collect();
    let mut batches: Vec<Batch> = Vec::new();
    let mut per_tenant_rows: Vec<u64> = vec![0; spec.tenants.len()];
    for (t, tenant) in spec.tenants.iter().enumerate() {
        let Some(serve) = &tenant.serve else { continue };
        let projection = match &models[t] {
            Some(model) => {
                if serve.pool.cols() != model.input_dim() {
                    return Err(SpcaError::InvalidServing {
                        what: format!(
                            "tenant {t}: request pool has {} columns but the model expects {}",
                            serve.pool.cols(),
                            model.input_dim()
                        ),
                    });
                }
                let cm = model.latent_projection()?;
                let xm = cm.vecmat(model.mean());
                Some((cm, xm))
            }
            None => None, // every batch will be rejected below
        };
        let d = models[t].as_ref().map_or(0, |m| m.output_dim());
        let pool_rows = serve.pool.rows();
        for k in 0..serve.batches {
            // Arrival: open time + k/rate + sub-millisecond seeded jitter,
            // clamped to the tenant's model-ready instant.
            let jitter =
                (mix(spec.seed ^ ((t as u64) << 32) ^ k as u64) % 1_000) as f64 * 1e-6;
            let raw = serve.start_secs + k as f64 / serve.rate_per_sec + jitter;
            let arrival_ns = secs_to_ns(raw).max(if model_ready_ns[t] == SimNanos::MAX {
                0
            } else {
                model_ready_ns[t]
            });
            // The batch's rows: a rotating window over the pool.
            let start = (k * serve.batch_rows) % pool_rows;
            let rows: Vec<usize> =
                (0..serve.batch_rows).map(|i| (start + i) % pool_rows).collect();
            // Real transforms: the same latent-row kernel the EM jobs
            // broadcast CM for, folded into a checksum that pins the
            // response bits (and thus the model bits) into the trace.
            let mut checksum = FNV_OFFSET;
            let mut flops = 0.0_f64;
            if let Some((cm, xm)) = &projection {
                for &r in &rows {
                    let row = serve.pool.row(r);
                    flops += (2 * row.nnz() * d + 2 * d) as f64;
                    for v in latent_row(row, cm, xm) {
                        checksum = fnv(checksum, v.to_bits());
                    }
                }
            }
            // Wire pricing: the request is the encoded sparse batch, the
            // response a dense rows×d payload.
            let views: Vec<_> = rows.iter().map(|&r| serve.pool.row(r)).collect();
            let req = SparseMat::from_row_views(serve.pool.cols(), &views);
            let req_bytes = cluster.wire_size(&req);
            let resp_bytes = cluster.sizing().f64_payload(serve.batch_rows * d);
            let wire_secs = (req_bytes + resp_bytes) as f64 / cfg.network_bytes_per_sec;
            let service_ns = secs_to_ns(flops / spec.flops_per_sec_per_core + wire_secs);
            batches.push(Batch {
                tenant: t,
                index: k as u64,
                arrival_ns,
                service_ns,
                req_bytes,
                resp_bytes,
                checksum,
            });
            per_tenant_rows[t] += serve.batch_rows as u64;
        }
    }

    // ---- Phase 4: the serving event loop. -------------------------------
    let nodes_n = cfg.nodes;
    let mut nodes: Vec<Node> = (0..nodes_n)
        .map(|_| Node {
            alive: true,
            reserved: 0,
            active: Vec::new(),
            waiting: VecDeque::new(),
            cache: Vec::new(),
            cache_bytes: 0,
        })
        .collect();
    let mut queue: EventQueue<SEv> = EventQueue::with_capacity(batches.len() * 2 + 16);
    // Fit reservations shadow the schedule: while a fit job runs, its
    // cores are unavailable to serving on the nodes that host it (cores
    // spread round-robin from a job-index offset).
    for (pos, rec) in schedule.records.iter().enumerate() {
        queue.push(secs_to_ns(rec.start_secs), SEv::FitStart(pos));
        queue.push(secs_to_ns(rec.finish_secs), SEv::FitEnd(pos));
    }
    for (b, batch) in batches.iter().enumerate() {
        queue.push(batch.arrival_ns, SEv::Arrive { batch: b, redispatch: false });
    }

    let job_node_share = |pos: usize, node: usize| -> usize {
        let cores = schedule.records[pos].cores;
        let offset = pos % nodes_n;
        // cores dealt one at a time round-robin starting at `offset`.
        let idx = (node + nodes_n - offset) % nodes_n;
        cores / nodes_n + usize::from(idx < cores % nodes_n)
    };

    let mut attempts: Vec<u64> = vec![0; batches.len()];
    let mut use_seq: u64 = 0;
    let mut trace_hash = FNV_OFFSET;
    let mut crash_done = spec.chaos.is_none();
    let mut arrivals_seen: u64 = 0;
    let mut any_broadcast = false;
    let mut broadcasts: u64 = 0;
    let mut rebroadcasts: u64 = 0;
    let mut completed: Vec<Vec<f64>> = vec![Vec::new(); spec.tenants.len()];
    let mut rejected: Vec<u64> = vec![0; spec.tenants.len()];
    let mut hits: Vec<u64> = vec![0; spec.tenants.len()];
    let mut misses: Vec<u64> = vec![0; spec.tenants.len()];
    let mut served_rows: Vec<u64> = vec![0; spec.tenants.len()];
    let mut first_arrival: Vec<SimNanos> = vec![SimNanos::MAX; spec.tenants.len()];
    let mut last_finish: Vec<SimNanos> = vec![0; spec.tenants.len()];
    let mut makespan_ns = secs_to_ns(schedule.makespan_secs);
    let latency_hist = registry.histogram("serve.batch_latency_virtual_secs");
    let retry_ns = secs_to_ns(cfg.task_retry_delay_secs);

    // Starts `batch` on `node` at `now`: cache lookup (miss → metered
    // model push + LRU eviction), wire charges, completion event.
    macro_rules! start_batch {
        ($node:expr, $b:expr, $now:expr) => {{
            let node: usize = $node;
            let b: usize = $b;
            let batch = &batches[b];
            let t = batch.tenant;
            use_seq += 1;
            let mut extra_ns: SimNanos = 0;
            if let Some(entry) = nodes[node].cache.iter_mut().find(|e| e.tenant == t) {
                entry.last_use = ($now, use_seq);
                hits[t] += 1;
            } else {
                misses[t] += 1;
                broadcasts += 1;
                if crash_done && any_broadcast && spec.chaos.is_some() {
                    rebroadcasts += 1;
                }
                any_broadcast = true;
                let bytes = model_bytes[t];
                // Evict least-recently-used entries until the model fits.
                while nodes[node].cache_bytes + bytes > cfg.model_cache_bytes
                    && !nodes[node].cache.is_empty()
                {
                    let lru = nodes[node]
                        .cache
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_use)
                        .map(|(i, _)| i)
                        .expect("cache not empty");
                    let evicted = nodes[node].cache.remove(lru);
                    nodes[node].cache_bytes -= evicted.bytes;
                    registry.counter("serve.cache_evictions").add(1);
                }
                nodes[node].cache.push(CacheEntry {
                    tenant: t,
                    bytes,
                    last_use: ($now, use_seq),
                });
                nodes[node].cache_bytes += bytes;
                cluster.charge_network_labeled(bytes, "serve.model");
                extra_ns = secs_to_ns(bytes as f64 / cfg.network_bytes_per_sec);
            }
            cluster.charge_network_labeled(batch.req_bytes + batch.resp_bytes, "serve");
            let finish = $now.saturating_add(batch.service_ns).saturating_add(extra_ns);
            let seq = queue.push(finish, SEv::Complete { node, batch: b });
            nodes[node].active.push((b, seq));
        }};
    }

    macro_rules! free_slots {
        ($node:expr) => {
            cfg.cores_per_node
                .saturating_sub(nodes[$node].reserved)
                .saturating_sub(nodes[$node].active.len())
        };
    }

    while let Some(ev) = queue.pop() {
        let now = ev.time_ns;
        match ev.payload {
            SEv::FitStart(pos) => {
                for node in 0..nodes_n {
                    nodes[node].reserved += job_node_share(pos, node);
                }
            }
            SEv::FitEnd(pos) => {
                for node in 0..nodes_n {
                    let share = job_node_share(pos, node);
                    nodes[node].reserved = nodes[node].reserved.saturating_sub(share);
                    // Freed cores may unblock queued batches.
                    while free_slots!(node) > 0 && nodes[node].alive {
                        let Some(b) = nodes[node].waiting.pop_front() else { break };
                        start_batch!(node, b, now);
                    }
                }
            }
            SEv::Arrive { batch: b, redispatch } => {
                if !redispatch {
                    arrivals_seen += 1;
                    if !crash_done {
                        let chaos = spec.chaos.expect("chaos present while !crash_done");
                        if arrivals_seen > chaos.at_batch {
                            crash_done = true;
                            let victim = chaos.crash_node;
                            nodes[victim].alive = false;
                            nodes[victim].cache.clear();
                            nodes[victim].cache_bytes = 0;
                            cluster.trace_instant(
                                "serve",
                                &format!("serve.crash node={victim}"),
                            );
                            registry.counter("serve.node_crashes").add(1);
                            // In-flight completions die with the node;
                            // both they and the queued batches re-arrive
                            // at the survivors after the retry delay.
                            let active = std::mem::take(&mut nodes[victim].active);
                            for (ab, seq) in active {
                                queue.cancel(seq);
                                queue.push(
                                    now.saturating_add(retry_ns),
                                    SEv::Arrive { batch: ab, redispatch: true },
                                );
                            }
                            let waiting = std::mem::take(&mut nodes[victim].waiting);
                            for wb in waiting {
                                queue.push(
                                    now.saturating_add(retry_ns),
                                    SEv::Arrive { batch: wb, redispatch: true },
                                );
                            }
                        }
                    }
                }
                let t = batches[b].tenant;
                first_arrival[t] = first_arrival[t].min(batches[b].arrival_ns);
                if models[t].is_none() {
                    rejected[t] += 1;
                    registry.counter("serve.rejected").add(1);
                    trace_hash = fnv(trace_hash, t as u64);
                    trace_hash = fnv(trace_hash, batches[b].index);
                    trace_hash = fnv(trace_hash, now);
                    trace_hash = fnv(trace_hash, 2); // status: rejected
                    makespan_ns = makespan_ns.max(now);
                    continue;
                }
                // Route over the currently-alive nodes, salted by the
                // attempt count so a re-dispatch re-rolls the node.
                let alive: Vec<usize> =
                    (0..nodes_n).filter(|&n| nodes[n].alive).collect();
                let h = mix(spec.seed
                    ^ mix((t as u64) << 17 ^ batches[b].index)
                    ^ (attempts[b] << 48));
                attempts[b] += 1;
                let node = alive[(h % alive.len() as u64) as usize];
                if free_slots!(node) > 0 {
                    start_batch!(node, b, now);
                } else if nodes[node].waiting.len() < cfg.admission_queue_capacity {
                    nodes[node].waiting.push_back(b);
                } else {
                    rejected[t] += 1;
                    registry.counter("serve.rejected").add(1);
                    trace_hash = fnv(trace_hash, t as u64);
                    trace_hash = fnv(trace_hash, batches[b].index);
                    trace_hash = fnv(trace_hash, now);
                    trace_hash = fnv(trace_hash, 2);
                    makespan_ns = makespan_ns.max(now);
                }
            }
            SEv::Complete { node, batch: b } => {
                let Some(pos) = nodes[node].active.iter().position(|&(ab, _)| ab == b)
                else {
                    continue; // stale completion of a cancelled attempt
                };
                nodes[node].active.remove(pos);
                let t = batches[b].tenant;
                let latency = ns_to_secs(now.saturating_sub(batches[b].arrival_ns));
                completed[t].push(latency);
                served_rows[t] += spec.tenants[t]
                    .serve
                    .as_ref()
                    .map_or(0, |s| s.batch_rows as u64);
                latency_hist.record(latency);
                registry.counter("serve.batches").add(1);
                last_finish[t] = last_finish[t].max(now);
                makespan_ns = makespan_ns.max(now);
                trace_hash = fnv(trace_hash, t as u64);
                trace_hash = fnv(trace_hash, batches[b].index);
                trace_hash = fnv(trace_hash, batches[b].arrival_ns);
                trace_hash = fnv(trace_hash, now);
                trace_hash = fnv(trace_hash, node as u64);
                trace_hash = fnv(trace_hash, 1); // status: completed
                trace_hash = fnv(trace_hash, batches[b].checksum);
                // A freed slot serves the queue head next.
                while free_slots!(node) > 0 {
                    let Some(nb) = nodes[node].waiting.pop_front() else { break };
                    start_batch!(node, nb, now);
                }
            }
        }
    }

    // ---- Phase 5: fold the statistics. ----------------------------------
    for t in 0..spec.tenants.len() {
        registry.counter("serve.requests").add(served_rows[t]);
        registry.counter("serve.cache_hits").add(hits[t]);
        registry.counter("serve.cache_misses").add(misses[t]);
    }
    registry.counter("serve.model_broadcasts").add(broadcasts);
    registry.counter("serve.model_rebroadcasts").add(rebroadcasts);

    let mut tenants = Vec::new();
    let mut all_latencies: Vec<f64> = Vec::new();
    for (t, tenant) in spec.tenants.iter().enumerate() {
        let recs: Vec<_> = schedule.records.iter().filter(|r| r.tenant == t).collect();
        let my_job_ids: Vec<&String> =
            jobs.iter().filter(|j| j.tenant == t).map(|j| &j.id).collect();
        let jobs_rejected =
            schedule.rejected.iter().filter(|id| my_job_ids.contains(id)).count();
        let mut lat = completed[t].clone();
        lat.sort_by(f64::total_cmp);
        all_latencies.extend_from_slice(&lat);
        let window =
            ns_to_secs(last_finish[t].saturating_sub(first_arrival[t].min(last_finish[t])));
        tenants.push(TenantServeStats {
            name: tenant.name.clone(),
            jobs_completed: recs.len(),
            jobs_rejected,
            // fold, not sum: `Sum<&f64>` yields -0.0 on an empty iterator.
            wait_secs_total: recs.iter().fold(0.0, |a, r| a + r.wait_secs()),
            run_secs_total: recs.iter().fold(0.0, |a, r| a + r.run_secs()),
            requests: served_rows[t],
            batches: completed[t].len() as u64,
            batches_rejected: rejected[t],
            cache_hits: hits[t],
            cache_misses: misses[t],
            latency_p50_secs: percentile(&lat, 50.0),
            latency_p99_secs: percentile(&lat, 99.0),
            qps: if window > 0.0 { served_rows[t] as f64 / window } else { 0.0 },
            model_hash: models[t].as_ref().map(PcaModel::content_hash),
        });
    }
    all_latencies.sort_by(f64::total_cmp);

    for rec in &schedule.records {
        cluster.dfs().release_job(&rec.id);
    }

    let events_processed = schedule.events_processed + queue.processed();
    Ok(ServingOutcome {
        requests_total: served_rows.iter().sum(),
        batches_total: completed.iter().map(|c| c.len() as u64).sum(),
        rejected_total: rejected.iter().sum(),
        broadcasts,
        rebroadcasts,
        latency_p50_secs: percentile(&all_latencies, 50.0),
        latency_p99_secs: percentile(&all_latencies, 99.0),
        makespan_secs: ns_to_secs(makespan_ns),
        events_processed,
        tenants,
        schedule,
        models,
        trace_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;
    use linalg::Prng;

    fn small_pool(seed: u64) -> Arc<SparseMat> {
        let mut rng = Prng::seed_from_u64(seed);
        let spec = datasets::LowRankSpec { rows: 60, cols: 24, ..datasets::LowRankSpec::small_test() };
        Arc::new(datasets::sparse_lowrank(&spec, &mut rng))
    }

    fn fit_job(id: &str, pool: &Arc<SparseMat>, submit: f64) -> FitJob {
        FitJob {
            id: id.into(),
            submit_secs: submit,
            cores: 8,
            y: Arc::clone(pool),
            config: SpcaConfig::new(3).with_max_iters(3).with_seed(7),
        }
    }

    fn serve_load(pool: &Arc<SparseMat>) -> ServeLoad {
        ServeLoad {
            pool: Arc::clone(pool),
            batches: 40,
            batch_rows: 5,
            rate_per_sec: 50.0,
            start_secs: 0.0,
        }
    }

    #[test]
    fn serving_without_a_model_is_rejected() {
        let cluster = SimCluster::new(ClusterConfig::scaled_cluster());
        let pool = small_pool(1);
        let mut spec = ServeSpec::new(9);
        spec.tenants.push(TenantWorkload {
            name: "modelless".into(),
            fit_jobs: vec![],
            serve: Some(serve_load(&pool)),
            model: None,
        });
        let err = run_serving(&cluster, &spec).unwrap_err();
        assert!(matches!(err, SpcaError::InvalidServing { .. }), "got {err:?}");
        assert!(err.to_string().contains("without a fitted model"));
    }

    #[test]
    fn empty_spec_is_rejected() {
        let cluster = SimCluster::new(ClusterConfig::scaled_cluster());
        let err = run_serving(&cluster, &ServeSpec::new(1)).unwrap_err();
        assert!(matches!(err, SpcaError::InvalidServing { .. }));
    }

    #[test]
    fn duplicate_job_ids_fail_the_run() {
        let cluster = SimCluster::new(ClusterConfig::scaled_cluster());
        let pool = small_pool(2);
        let mut spec = ServeSpec::new(3);
        spec.tenants.push(TenantWorkload {
            name: "a".into(),
            fit_jobs: vec![fit_job("same-id", &pool, 0.0)],
            serve: None,
            model: None,
        });
        spec.tenants.push(TenantWorkload {
            name: "b".into(),
            fit_jobs: vec![fit_job("same-id", &pool, 1.0)],
            serve: None,
            model: None,
        });
        let err = run_serving(&cluster, &spec).unwrap_err();
        assert!(
            matches!(
                err,
                SpcaError::Cluster(dcluster::ClusterError::DuplicateJob { .. })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn mixed_fit_and_serve_completes_every_batch() {
        let cluster = SimCluster::new(ClusterConfig::scaled_cluster());
        let pool = small_pool(4);
        let mut spec = ServeSpec::new(11);
        spec.tenants.push(TenantWorkload {
            name: "t0".into(),
            fit_jobs: vec![fit_job("t0-fit", &pool, 0.0)],
            serve: Some(serve_load(&pool)),
            model: None,
        });
        let out = run_serving(&cluster, &spec).unwrap();
        assert_eq!(out.batches_total, 40);
        assert_eq!(out.requests_total, 200);
        assert_eq!(out.rejected_total, 0);
        assert!(out.broadcasts >= 1, "first use on each node is a push");
        assert!(out.latency_p99_secs >= out.latency_p50_secs);
        assert!(out.models[0].is_some());
        assert_eq!(out.tenants[0].jobs_completed, 1);
        assert!(out.tenants[0].qps > 0.0);
        // The DFS namespace was released at the end of the run.
        assert!(cluster.dfs().registered_jobs().is_empty());
    }

    #[test]
    fn serving_is_deterministic_across_runs() {
        let run = || {
            let cluster = SimCluster::new(ClusterConfig::scaled_cluster());
            let pool = small_pool(5);
            let mut spec = ServeSpec::new(21);
            spec.tenants.push(TenantWorkload {
                name: "t0".into(),
                fit_jobs: vec![fit_job("fit-a", &pool, 0.0)],
                serve: Some(serve_load(&pool)),
                model: None,
            });
            run_serving(&cluster, &spec).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(
            a.models[0].as_ref().unwrap().content_hash(),
            b.models[0].as_ref().unwrap().content_hash()
        );
    }
}
