//! The fitted model and per-run diagnostics.

use linalg::decomp::lu::Lu;
use linalg::decomp::qr::qr_thin;
use linalg::{Mat, SparseMat};

use crate::error::SpcaError;
use crate::Result;

/// A fitted probabilistic PCA model: `y ≈ C·x + μ + ε`, `ε ~ N(0, ss·I)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaModel {
    /// Transformation matrix `C` (D × d); its columns span the principal
    /// subspace (equal to the principal components up to rotation, as
    /// Tipping & Bishop prove).
    components: Mat,
    /// Column means `Ym` (length D).
    mean: Vec<f64>,
    /// Isotropic noise variance `ss`.
    ss: f64,
}

impl PcaModel {
    /// Builds a model; panics on inconsistent dimensions (programmer error).
    pub fn new(components: Mat, mean: Vec<f64>, ss: f64) -> Self {
        assert_eq!(components.rows(), mean.len(), "C rows must equal mean length");
        assert!(ss >= 0.0, "noise variance must be non-negative");
        PcaModel { components, mean, ss }
    }

    /// The transformation matrix `C` (D × d).
    pub fn components(&self) -> &Mat {
        &self.components
    }

    /// The column means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The noise variance `ss`.
    pub fn noise_variance(&self) -> f64 {
        self.ss
    }

    /// Input dimensionality D.
    pub fn input_dim(&self) -> usize {
        self.components.rows()
    }

    /// Number of components d.
    pub fn output_dim(&self) -> usize {
        self.components.cols()
    }

    /// The posterior-mean projection matrix `CM = C·(C'C + ss·I)⁻¹`
    /// (D × d): the latent coordinates of a row `y` are
    /// `x = (y − μ)·CM`.
    pub fn latent_projection(&self) -> Result<Mat> {
        let mut m = self.components.matmul_tn(&self.components);
        m.add_diag(self.ss);
        let m_inv = Lu::new(&m).map_err(SpcaError::from)?.inverse();
        Ok(self.components.matmul(&m_inv))
    }

    /// Projects sparse rows into latent space: `X = (Y − 1⊗μ)·CM`,
    /// computed with mean propagation (never densifying `Y`).
    pub fn transform_sparse(&self, y: &SparseMat) -> Result<Mat> {
        assert_eq!(y.cols(), self.input_dim(), "transform: dimension mismatch");
        let cm = self.latent_projection()?;
        let xm = cm.vecmat(&self.mean);
        let mut x = y.mul_dense(&cm);
        for r in 0..x.rows() {
            linalg::vector::axpy(-1.0, &xm, x.row_mut(r));
        }
        Ok(x)
    }

    /// Projects dense rows into latent space.
    pub fn transform_dense(&self, y: &Mat) -> Result<Mat> {
        assert_eq!(y.cols(), self.input_dim(), "transform: dimension mismatch");
        let cm = self.latent_projection()?;
        let xm = cm.vecmat(&self.mean);
        let mut x = y.matmul(&cm);
        for r in 0..x.rows() {
            linalg::vector::axpy(-1.0, &xm, x.row_mut(r));
        }
        Ok(x)
    }

    /// Reconstructs rows from latent coordinates: `Ŷ = X·C' + 1⊗μ`.
    pub fn reconstruct(&self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.output_dim(), "reconstruct: dimension mismatch");
        let mut y = x.matmul_nt(&self.components);
        for r in 0..y.rows() {
            linalg::vector::axpy(1.0, &self.mean, y.row_mut(r));
        }
        y
    }

    /// Orthonormal basis of the principal subspace (thin QR of `C`).
    pub fn orthonormal_basis(&self) -> Mat {
        qr_thin(&self.components).q
    }

    /// Per-component variances along the principal directions, descending.
    ///
    /// Under PPCA the data covariance along component `i` is `σᵢ² + ss`
    /// where `σᵢ²` are the eigenvalues of `CᵀC`; these are the scree
    /// values used to decide how many components to keep.
    pub fn component_variances(&self) -> Result<Vec<f64>> {
        let ctc = self.components.matmul_tn(&self.components);
        let eig = linalg::decomp::sym_eigen(&ctc).map_err(SpcaError::from)?;
        Ok(eig.values.iter().map(|&l| l.max(0.0) + self.ss).collect())
    }

    /// Fraction of total modelled variance explained by the first `k`
    /// components (`k` capped at d).
    pub fn explained_variance_ratio(&self, k: usize) -> Result<f64> {
        let vars = self.component_variances()?;
        let modelled: f64 = vars.iter().sum::<f64>()
            + (self.input_dim() - self.output_dim()) as f64 * self.ss;
        let head: f64 = vars.iter().take(k).sum();
        Ok(head / modelled.max(f64::MIN_POSITIVE))
    }

    /// Content hash over the exact bit patterns of every parameter —
    /// dimensions, `C`, `μ`, and `ss`. Two models hash equal iff they are
    /// bitwise identical, which is the reproducibility contract the run
    /// ledger's `model_hash` field and the perf gate check: same config on
    /// any worker count must produce the same hash. FNV-1a, so the value
    /// is stable across platforms and releases.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.input_dim() as u64).to_le_bytes());
        eat(&(self.output_dim() as u64).to_le_bytes());
        eat(&self.ss.to_bits().to_le_bytes());
        for v in &self.mean {
            eat(&v.to_bits().to_le_bytes());
        }
        for v in self.components.data() {
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }

    /// Serializes to a small self-describing text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("spca-model v1\n");
        out.push_str(&format!("dims {} {}\n", self.input_dim(), self.output_dim()));
        out.push_str(&format!("ss {:e}\n", self.ss));
        out.push_str("mean");
        for v in &self.mean {
            out.push_str(&format!(" {v:e}"));
        }
        out.push('\n');
        for r in 0..self.components.rows() {
            out.push('c');
            for v in self.components.row(r) {
                out.push_str(&format!(" {v:e}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("spca-model v1") {
            return Err("missing header".into());
        }
        let dims_line = lines.next().ok_or("missing dims")?;
        let mut it = dims_line.split_whitespace();
        if it.next() != Some("dims") {
            return Err("expected dims line".into());
        }
        let d_in: usize = it.next().ok_or("missing D")?.parse().map_err(|e| format!("D: {e}"))?;
        let d_out: usize = it.next().ok_or("missing d")?.parse().map_err(|e| format!("d: {e}"))?;

        let ss_line = lines.next().ok_or("missing ss")?;
        let ss: f64 = ss_line
            .strip_prefix("ss ")
            .ok_or("expected ss line")?
            .parse()
            .map_err(|e| format!("ss: {e}"))?;

        let mean_line = lines.next().ok_or("missing mean")?;
        let mean: Vec<f64> = mean_line
            .strip_prefix("mean")
            .ok_or("expected mean line")?
            .split_whitespace()
            .map(|t| t.parse().map_err(|e| format!("mean: {e}")))
            .collect::<std::result::Result<_, _>>()?;
        if mean.len() != d_in {
            return Err(format!("mean has {} entries, expected {d_in}", mean.len()));
        }

        let mut c = Mat::zeros(d_in, d_out);
        for r in 0..d_in {
            let line = lines.next().ok_or_else(|| format!("missing C row {r}"))?;
            let vals: Vec<f64> = line
                .strip_prefix("c")
                .ok_or("expected c line")?
                .split_whitespace()
                .map(|t| t.parse().map_err(|e| format!("C[{r}]: {e}")))
                .collect::<std::result::Result<_, _>>()?;
            if vals.len() != d_out {
                return Err(format!("C row {r} has {} entries, expected {d_out}", vals.len()));
            }
            c.row_mut(r).copy_from_slice(&vals);
        }
        Ok(PcaModel::new(c, mean, ss))
    }
}

/// Per-iteration progress record — the raw series behind the paper's
/// accuracy-vs-time figures (4 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStat {
    /// 1-based EM iteration index.
    pub iteration: usize,
    /// Sampled reconstruction error after this iteration.
    pub error: f64,
    /// Noise variance after this iteration.
    pub ss: f64,
    /// Cluster virtual clock when the iteration finished (seconds).
    pub virtual_time_secs: f64,
}

/// Result of one distributed fit.
#[derive(Debug, Clone)]
pub struct SpcaRun {
    /// The fitted model.
    pub model: PcaModel,
    /// One entry per EM iteration, in order.
    pub iterations: Vec<IterationStat>,
    /// Virtual seconds the fit consumed (clock delta across the fit).
    pub virtual_time_secs: f64,
    /// Intermediate bytes the fit generated (shuffles + DFS writes).
    pub intermediate_bytes: u64,
}

impl SpcaRun {
    /// Reconstruction error after the last iteration.
    pub fn final_error(&self) -> f64 {
        self.iterations.last().map_or(f64::INFINITY, |s| s.error)
    }

    /// Virtual time at which the sampled error first reached `target`, if
    /// it ever did.
    pub fn time_to_error(&self, target: f64) -> Option<f64> {
        self.iterations.iter().find(|s| s.error <= target).map(|s| s.virtual_time_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Prng;

    fn sample_model() -> PcaModel {
        let mut rng = Prng::seed_from_u64(1);
        let c = rng.normal_mat(6, 2);
        let mean = vec![0.5; 6];
        PcaModel::new(c, mean, 0.25)
    }

    #[test]
    fn dimensions_are_exposed() {
        let m = sample_model();
        assert_eq!(m.input_dim(), 6);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.mean().len(), 6);
        assert_eq!(m.noise_variance(), 0.25);
    }

    #[test]
    fn transform_then_reconstruct_reduces_error() {
        // Rows generated from the model should reconstruct well.
        let m = sample_model();
        let mut rng = Prng::seed_from_u64(2);
        let latent = rng.normal_mat(40, 2);
        let mut y = m.reconstruct(&latent);
        // Add mild noise.
        let noise = rng.normal_mat(40, 6);
        y.add_scaled(0.05, &noise);

        let x = m.transform_dense(&y).unwrap();
        let y_hat = m.reconstruct(&x);
        let err = linalg::norms::diff_norm1(&y, &y_hat) / y.norm1();
        assert!(err < 0.25, "reconstruction error {err}");
    }

    #[test]
    fn sparse_and_dense_transforms_agree() {
        let m = sample_model();
        let dense = Mat::from_rows(&[&[1.0, 0.0, 0.0, 2.0, 0.0, 0.0], &[0.0, 3.0, 0.0, 0.0, 0.0, 1.0]]);
        let sparse = SparseMat::from_dense(&dense);
        let xd = m.transform_dense(&dense).unwrap();
        let xs = m.transform_sparse(&sparse).unwrap();
        assert!(xd.approx_eq(&xs, 1e-12));
    }

    #[test]
    fn orthonormal_basis_is_orthonormal() {
        let m = sample_model();
        let q = m.orthonormal_basis();
        let qtq = q.matmul_tn(&q);
        assert!(qtq.approx_eq(&Mat::identity(2), 1e-10));
    }

    #[test]
    fn component_variances_are_descending_and_variance_ratio_monotone() {
        let m = sample_model();
        let vars = m.component_variances().unwrap();
        assert_eq!(vars.len(), 2);
        assert!(vars[0] >= vars[1]);
        assert!(vars.iter().all(|&v| v >= m.noise_variance()));
        let r1 = m.explained_variance_ratio(1).unwrap();
        let r2 = m.explained_variance_ratio(2).unwrap();
        assert!(r1 > 0.0 && r1 <= r2 && r2 <= 1.0, "{r1} vs {r2}");
    }

    #[test]
    fn text_roundtrip_is_exact_enough() {
        let m = sample_model();
        let text = m.to_text();
        let back = PcaModel::from_text(&text).unwrap();
        assert_eq!(back.input_dim(), 6);
        assert!(back.components().approx_eq(m.components(), 1e-12));
        assert!((back.noise_variance() - m.noise_variance()).abs() < 1e-12);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(PcaModel::from_text("not a model").is_err());
        assert!(PcaModel::from_text("spca-model v1\ndims 2 1\nss abc\n").is_err());
        // Truncated C rows.
        let text = "spca-model v1\ndims 2 1\nss 0.5\nmean 0 0\nc 1\n";
        assert!(PcaModel::from_text(text).is_err());
    }

    #[test]
    fn run_helpers() {
        let run = SpcaRun {
            model: sample_model(),
            iterations: vec![
                IterationStat { iteration: 1, error: 0.8, ss: 1.0, virtual_time_secs: 10.0 },
                IterationStat { iteration: 2, error: 0.4, ss: 0.5, virtual_time_secs: 20.0 },
            ],
            virtual_time_secs: 20.0,
            intermediate_bytes: 123,
        };
        assert_eq!(run.final_error(), 0.4);
        assert_eq!(run.time_to_error(0.5), Some(20.0));
        assert_eq!(run.time_to_error(0.1), None);
    }
}
