//! sPCA on the MapReduce engine (Section 4.1).
//!
//! Four job types, mirroring the paper's implementation:
//!
//! * `meanJob`, `FnormJob` — one-time lightweight jobs before the loop.
//! * `YtXJob` — the consolidated pass. Its mapper is a *stateful
//!   combiner*: per-partition `XtX-p`/`YtX-p` partials and the hoisted
//!   `Σx` are accumulated in mapper memory and emitted once at cleanup,
//!   so mapper output stays O(d² + z·d) per mapper instead of O(rows·d).
//!   A *composite key* routes all `XtX-p` partials to one reducer (they
//!   are d×d and tiny) while `YtX` rows spread across reducers by row
//!   index — exactly the paper's key design.
//! * `ss3Job` — emits a single scalar per mapper (the paper: "the mapper
//!   output of this job is a scalar, which reduces the amount of
//!   intermediate data").

use dcluster::SimCluster;
use linalg::bytes::ByteSized;
use linalg::wire::{self, Wire, WireError, WireReader};
use linalg::{Mat, SparseMat};
use mapreduce::{Emitter, MapReduceEngine, MapReduceJob};

use crate::config::SpcaConfig;
use crate::em::{run_em, EmJobs};
use crate::frobenius;
use crate::init;
use crate::mean_prop::{ss3_block_prec, ytx_counter_snapshot, YtxPartial};
use crate::model::SpcaRun;
use crate::Result;

/// Composite shuffle key of the `YtXJob`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MrKey {
    /// All `XtX-p` partials — routed to a single reducer.
    XtX,
    /// All hoisted `Σx` partials — single reducer.
    SumX,
    /// Row-count partials (sanity bookkeeping).
    Count,
    /// One key per touched `YtX` row — spreads across reducers.
    Row(u32),
}

impl ByteSized for MrKey {
    fn size_bytes(&self) -> u64 {
        match self {
            MrKey::Row(_) => 5,
            _ => 1,
        }
    }
}

/// Wire layout: one tag byte, plus a varint row index for [`MrKey::Row`].
impl Wire for MrKey {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            MrKey::XtX => out.push(0),
            MrKey::SumX => out.push(1),
            MrKey::Count => out.push(2),
            MrKey::Row(c) => {
                out.push(3);
                wire::write_uvarint(out, u64::from(*c));
            }
        }
    }
    fn encoded_size(&self) -> u64 {
        match self {
            MrKey::Row(c) => 1 + wire::uvarint_len(u64::from(*c)),
            _ => 1,
        }
    }
    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(MrKey::XtX),
            1 => Ok(MrKey::SumX),
            2 => Ok(MrKey::Count),
            3 => Ok(MrKey::Row(u32::decode_from(r)?)),
            _ => Err(WireError::Malformed("unknown MrKey tag")),
        }
    }
}

/// `meanJob`: column sums, reduced to one vector (driver divides by N).
struct MeanJob;

impl MapReduceJob for MeanJob {
    type Input = SparseMat;
    type Key = ();
    type Value = Vec<f64>;
    type Output = Vec<f64>;

    fn map(&self, block: &SparseMat, emitter: &mut Emitter<(), Vec<f64>>) {
        emitter.emit((), block.col_sums());
    }

    fn reduce(&self, _key: (), values: Vec<Vec<f64>>) -> Vec<f64> {
        sum_vectors(values)
    }
}

/// `FnormJob`: Algorithm 3 partial per block.
struct FnormJob {
    mean: Vec<f64>,
    mean_norm_sq: f64,
}

impl MapReduceJob for FnormJob {
    type Input = SparseMat;
    type Key = ();
    type Value = f64;
    type Output = f64;

    fn map(&self, block: &SparseMat, emitter: &mut Emitter<(), f64>) {
        emitter.emit((), frobenius::centered_sq_block(block, &self.mean, self.mean_norm_sq));
    }

    fn reduce(&self, _key: (), values: Vec<f64>) -> f64 {
        values.iter().sum()
    }
}

/// The consolidated `YtXJob` with a stateful-combiner mapper.
struct YtXJob {
    cm: Mat,
    xm: Vec<f64>,
    d: usize,
    precision: linalg::Precision,
}

impl MapReduceJob for YtXJob {
    type Input = SparseMat;
    type Key = MrKey;
    type Value = Vec<f64>;
    type Output = Vec<f64>;

    fn map(&self, block: &SparseMat, emitter: &mut Emitter<MrKey, Vec<f64>>) {
        // Stateful combiner: fold the whole partition into in-memory
        // partials through the batched kernels (the block is already a
        // CSR matrix — no reassembly needed), emit once at "cleanup".
        let mut partial = YtxPartial::new(self.d);
        partial.add_block_prec(block, &self.cm, &self.xm, self.precision);
        emitter.emit(MrKey::XtX, partial.xtx.data().to_vec());
        emitter.emit(MrKey::SumX, partial.sum_x.clone());
        emitter.emit(MrKey::Count, vec![partial.rows_seen as f64]);
        for (c, row) in partial.ytx_iter() {
            emitter.emit(MrKey::Row(c), row.to_vec());
        }
    }

    fn reduce(&self, _key: MrKey, values: Vec<Vec<f64>>) -> Vec<f64> {
        sum_vectors(values)
    }
}

/// `ss3Job`: scalar mapper output.
struct Ss3Job {
    cm: Mat,
    xm: Vec<f64>,
    c_new: Mat,
    precision: linalg::Precision,
}

impl MapReduceJob for Ss3Job {
    type Input = SparseMat;
    type Key = ();
    type Value = f64;
    type Output = f64;

    fn map(&self, block: &SparseMat, emitter: &mut Emitter<(), f64>) {
        emitter.emit((), ss3_block_prec(block, &self.cm, &self.xm, &self.c_new, self.precision));
    }

    fn reduce(&self, _key: (), values: Vec<f64>) -> f64 {
        values.iter().sum()
    }
}

fn sum_vectors(mut values: Vec<Vec<f64>>) -> Vec<f64> {
    let mut acc = values.pop().expect("reducer gets at least one value");
    for v in values {
        linalg::vector::axpy(1.0, &v, &mut acc);
    }
    acc
}

struct MrJobs<'a> {
    engine: MapReduceEngine<'a>,
    blocks: Vec<SparseMat>,
    n: usize,
    d_in: usize,
    d: usize,
    reducers: usize,
    precision: linalg::Precision,
}

impl EmJobs for MrJobs<'_> {
    fn num_rows(&self) -> usize {
        self.n
    }

    fn num_cols(&self) -> usize {
        self.d_in
    }

    fn mean_job(&mut self) -> Vec<f64> {
        let (out, _) = self.engine.run_job("meanJob", &MeanJob, &self.blocks, 1);
        let mut mean = out.into_iter().next().expect("meanJob output").1;
        linalg::vector::scale(1.0 / self.n as f64, &mut mean);
        mean
    }

    fn fnorm_job(&mut self, mean: &[f64]) -> f64 {
        let job =
            FnormJob { mean: mean.to_vec(), mean_norm_sq: linalg::vector::norm2_sq(mean) };
        let (out, _) = self.engine.run_job("FnormJob", &job, &self.blocks, 1);
        out.into_iter().next().expect("FnormJob output").1
    }

    fn ytx_job(&mut self, cm: &Mat, xm: &[f64]) -> YtxPartial {
        // Distributed-cache shipment of the broadcast matrices (CM, Xm),
        // priced under the cluster's sizing policy.
        let cluster = self.engine.cluster();
        cluster.charge_broadcast(cluster.wire_size(cm) + cluster.sizing().f64_payload(xm.len()));
        let job =
            YtXJob { cm: cm.clone(), xm: xm.to_vec(), d: self.d, precision: self.precision };
        let before = ytx_counter_snapshot();
        let (out, _) = self.engine.run_job("YtXJob", &job, &self.blocks, self.reducers);
        if obs::enabled() {
            let after = ytx_counter_snapshot();
            let cluster = self.engine.cluster();
            cluster.trace_counter("em.ytx.flops", (after.0 - before.0) as f64);
            cluster.trace_counter("em.ytx.batch_rows", (after.1 - before.1) as f64);
        }
        let mut partial = YtxPartial::new(self.d);
        for (key, value) in out {
            match key {
                MrKey::XtX => partial.xtx = Mat::from_vec(self.d, self.d, value),
                MrKey::SumX => partial.sum_x = value,
                MrKey::Count => partial.rows_seen = value[0] as u64,
                // Reduced keys arrive in ascending MrKey order, so the
                // packed insert is an append each time.
                MrKey::Row(c) => partial.set_ytx_row(c, &value),
            }
        }
        partial
    }

    fn ss3_job(&mut self, cm: &Mat, xm: &[f64], c_new: &Mat) -> f64 {
        // ss3Job re-ships CM/Xm plus the updated C (each MR job re-reads
        // its distributed cache; nothing persists across jobs).
        let cluster = self.engine.cluster();
        cluster.charge_broadcast(
            cluster.wire_size(cm)
                + cluster.sizing().f64_payload(xm.len())
                + cluster.wire_size(c_new),
        );
        let job = Ss3Job {
            cm: cm.clone(),
            xm: xm.to_vec(),
            c_new: c_new.clone(),
            precision: self.precision,
        };
        let (out, _) = self.engine.run_job("ss3Job", &job, &self.blocks, 1);
        out.into_iter().next().expect("ss3Job output").1
    }
}

/// Fits sPCA on the MapReduce engine. With a `job_id` set the input
/// file and stage labels are scoped to `jobs/<id>/` like the Spark
/// engine's, so concurrent tenants on one cluster never collide.
pub fn fit(cluster: &SimCluster, y: &SparseMat, config: &SpcaConfig) -> Result<SpcaRun> {
    // Algorithm dispatch mirrors `spark::fit`: the randomized arm rides
    // the same entry point, so job scoping and callers stay unchanged.
    if config.algorithm == crate::config::Algorithm::Randomized {
        return crate::rpca::fit_mapreduce(cluster, y, config);
    }
    let input = crate::scoped_input(config, "input/Y");
    let run = fit_with_input(cluster, y, config, &input);
    cluster.set_job_scope(None);
    run
}

/// [`fit`] with an explicit DFS name for the materialized input (the
/// smart-guess warm-up uses a separate name for its row sample).
fn fit_with_input(
    cluster: &SimCluster,
    y: &SparseMat,
    config: &SpcaConfig,
    input_file: &str,
) -> Result<SpcaRun> {
    if obs::enabled() {
        cluster.set_trace_label("sPCA-MR");
    }
    cluster.set_job_scope(config.job_id.as_deref());
    let partitions = config
        .partitions
        .unwrap_or_else(|| cluster.config().total_cores())
        .min(y.rows().max(1));
    let blocks = y.split_rows(partitions);

    // HDFS-materialized input: MapReduce recovery re-reads failed tasks'
    // splits from here (sized per task by the engine), and node crashes
    // re-replicate it like any other file — sized at its encoded CSR
    // length under the default policy, so re-reads match the real file.
    cluster.dfs().seed(cluster, input_file, cluster.wire_size(y));

    // Smart guess warms up on the sample with this same engine; its cost
    // is charged to this run (the paper counts the warm-up delay).
    let warm_time = cluster.metrics().virtual_time_secs;
    let warm_bytes = cluster.metrics().intermediate_bytes;
    let tracing_init = obs::enabled() && config.smart_guess.is_some();
    if tracing_init {
        cluster.trace_begin("init", "init", Vec::new());
    }
    let init_state = match &config.smart_guess {
        Some(sg) => {
            let want = ((y.rows() as f64) * sg.sample_fraction).ceil() as usize;
            let k = want.max(2 * config.components + 2).min(y.rows());
            let mut rng = linalg::Prng::seed_from_u64(config.seed ^ 0x5650);
            let idx = rng.sample_indices(y.rows(), k);
            let sample = y.select_rows(&idx);
            // The warm-up must not inherit fault knobs: checkpointing
            // would collide with the full run's checkpoint file, and an
            // injected crash belongs to the main loop only.
            let warm = SpcaConfig {
                smart_guess: None,
                max_iters: sg.iterations,
                rel_tolerance: None,
                target_error: None,
                checkpoint_every: None,
                crash_at_iteration: None,
                ..config.clone()
            };
            let run =
                fit_with_input(cluster, &sample, &warm, &crate::scoped_input(&warm, "input/Y.sample"))?;
            (run.model.components().clone(), run.model.noise_variance())
        }
        None => init::random_init(y.cols(), config.components, config.seed),
    };
    if tracing_init {
        cluster.trace_end("init", "init", vec![("kind", "smart-guess".into())]);
    }
    let warm_elapsed = cluster.metrics().virtual_time_secs - warm_time;
    let warm_intermediate = cluster.metrics().intermediate_bytes - warm_bytes;

    let error_sample = crate::accuracy::sample_rows(y, config.error_sample_rows, config.seed);
    let reducers = cluster.config().nodes.max(1);
    let mut jobs = MrJobs {
        engine: MapReduceEngine::new(cluster),
        blocks,
        n: y.rows(),
        d_in: y.cols(),
        d: config.components,
        reducers,
        precision: config.precision,
    };
    let mut run = run_em(cluster, &mut jobs, &error_sample, config, init_state)?;
    for it in &mut run.iterations {
        it.virtual_time_secs += warm_elapsed;
    }
    run.virtual_time_secs += warm_elapsed;
    run.intermediate_bytes += warm_intermediate;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;

    #[test]
    fn mr_key_ordering_groups_small_keys_first() {
        let mut keys = vec![MrKey::Row(7), MrKey::SumX, MrKey::Row(0), MrKey::XtX, MrKey::Count];
        keys.sort();
        assert_eq!(
            keys,
            vec![MrKey::XtX, MrKey::SumX, MrKey::Count, MrKey::Row(0), MrKey::Row(7)]
        );
    }

    #[test]
    fn fit_runs_on_tiny_data() {
        let mut rng = linalg::Prng::seed_from_u64(4);
        let spec = datasets::LowRankSpec::small_test();
        let y = datasets::sparse_lowrank(&spec, &mut rng);
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let run = fit(&cluster, &y, &SpcaConfig::new(3).with_max_iters(4)).unwrap();
        assert_eq!(run.model.output_dim(), 3);
        let first = run.iterations.first().unwrap().error;
        assert!(run.final_error() <= first);
        // MapReduce pays per-job overheads: 2 + 2·iters jobs at ≥6 s each.
        assert!(run.virtual_time_secs >= 6.0 * 2.0);
    }

    #[test]
    fn mapreduce_matches_spark_exactly() {
        // Same seed, same math: the two platforms must agree to numerical
        // round-off — the paper's claim that the design is platform
        // independent.
        let mut rng = linalg::Prng::seed_from_u64(5);
        let spec = datasets::LowRankSpec::small_test();
        let y = datasets::sparse_lowrank(&spec, &mut rng);
        let config = SpcaConfig::new(3).with_max_iters(3).with_rel_tolerance(None);

        let c1 = SimCluster::new(ClusterConfig::paper_cluster());
        let mr_run = fit(&c1, &y, &config).unwrap();
        let c2 = SimCluster::new(ClusterConfig::paper_cluster());
        let spark_run = crate::spark::fit(&c2, &y, &config).unwrap();

        assert!(
            mr_run
                .model
                .components()
                .approx_eq(spark_run.model.components(), 1e-8),
            "C diverged between platforms"
        );
        assert!(
            (mr_run.model.noise_variance() - spark_run.model.noise_variance()).abs() < 1e-10
        );
    }
}
