//! Frobenius norm of the mean-centered matrix (Algorithms 2 and 3).
//!
//! `ss1 = ‖Y − 1⊗Ym‖²_F` feeds the variance update (Algorithm 4, line 14).
//! Algorithm 2 densifies one row at a time — O(N·D). Algorithm 3 is the
//! paper's optimization: start from `N·‖Ym‖²` (what the norm would be if
//! every entry were zero) and correct only at the non-zeros —
//! O(nnz + D). Per-block functions keep both distributable.

use linalg::SparseMat;

/// Algorithm 3, one block: `rows·msum + Σ_nz ((v − m)² − m²)` where
/// `msum = ‖mean‖²` is precomputed once and broadcast.
pub fn centered_sq_block(block: &SparseMat, mean: &[f64], mean_norm_sq: f64) -> f64 {
    assert_eq!(block.cols(), mean.len(), "mean length mismatch");
    let mut sum = block.rows() as f64 * mean_norm_sq;
    for r in 0..block.rows() {
        for (c, v) in block.row(r).iter() {
            let m = mean[c];
            sum += (v - m) * (v - m) - m * m;
        }
    }
    sum
}

/// Algorithm 2 ("Frobenius-simple"), one block: densify each row and sum
/// squares. The unoptimized arm of the Table 3 ablation.
pub fn centered_sq_simple_block(block: &SparseMat, mean: &[f64]) -> f64 {
    linalg::norms::centered_frobenius_sq_simple(block, mean)
}

/// Convenience: Algorithm 3 over a whole matrix.
pub fn centered_sq(y: &SparseMat, mean: &[f64]) -> f64 {
    let msum = linalg::vector::norm2_sq(mean);
    centered_sq_block(y, mean, msum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Prng;

    fn random_sparse(rows: usize, cols: usize, seed: u64) -> SparseMat {
        let mut rng = Prng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rng.uniform() < 0.15 {
                    triplets.push((r, c as u32, rng.normal()));
                }
            }
        }
        SparseMat::from_triplets(rows, cols, &triplets)
    }

    #[test]
    fn optimized_matches_simple_and_dense() {
        let y = random_sparse(30, 20, 1);
        let mean = y.col_means();
        let opt = centered_sq(&y, &mean);
        let simple = centered_sq_simple_block(&y, &mean);
        let dense = linalg::norms::centered_frobenius_sq_dense(&y.to_dense(), &mean);
        assert!((opt - simple).abs() < 1e-9, "{opt} vs {simple}");
        assert!((opt - dense).abs() < 1e-9, "{opt} vs {dense}");
    }

    #[test]
    fn blocks_sum_to_whole() {
        let y = random_sparse(40, 15, 2);
        let mean = y.col_means();
        let msum = linalg::vector::norm2_sq(&mean);
        let whole = centered_sq(&y, &mean);
        let split: f64 = y
            .split_rows(4)
            .iter()
            .map(|b| centered_sq_block(b, &mean, msum))
            .sum();
        assert!((whole - split).abs() < 1e-9);
    }

    #[test]
    fn zero_mean_reduces_to_plain_frobenius() {
        let y = random_sparse(10, 10, 3);
        let zero = vec![0.0; 10];
        assert!((centered_sq(&y, &zero) - y.frobenius_sq()).abs() < 1e-12);
    }

    #[test]
    fn empty_block_contributes_nothing() {
        let y = SparseMat::from_rows(0, 5, vec![]);
        assert_eq!(centered_sq(&y, &[1.0; 5]), 0.0);
    }

    #[test]
    fn arbitrary_mean_vector_is_supported() {
        // The identity must hold for any vector, not just the true mean.
        let y = random_sparse(12, 8, 4);
        let mut rng = Prng::seed_from_u64(5);
        let fake_mean = rng.normal_vec(8);
        let opt = centered_sq(&y, &fake_mean);
        let dense = linalg::norms::centered_frobenius_sq_dense(&y.to_dense(), &fake_mean);
        assert!((opt - dense).abs() < 1e-9);
    }
}
