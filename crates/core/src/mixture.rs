//! Mixtures of probabilistic principal component analysers.
//!
//! The second PPCA property Section 2.4 highlights: "multiple PPCA models
//! can be combined as a probabilistic mixture for better accuracy and to
//! express complex models" (the paper's reference \[32\] is precisely
//! Tipping & Bishop's mixture paper). Each mixture component is a full
//! PPCA model `N(μ_k, C_k C_k' + ss_k·I)`; responsibilities and parameters
//! are updated by EM.
//!
//! Densities use the Woodbury identity, so nothing larger than d×d is ever
//! inverted: `Σ⁻¹ = (I − C M⁻¹ C')/ss` and
//! `log|Σ| = (D−d)·log ss + log|M|` with `M = C'C + ss·I`.

use linalg::decomp::lu::Lu;
use linalg::{Mat, Prng};

use crate::error::SpcaError;
use crate::model::PcaModel;
use crate::Result;

/// A fitted mixture of PPCA models.
#[derive(Debug, Clone)]
pub struct MixtureOfPpca {
    /// Mixing weights π (sum to 1).
    pub weights: Vec<f64>,
    /// The component models.
    pub components: Vec<PcaModel>,
    /// Final per-row average log-likelihood.
    pub avg_log_likelihood: f64,
}

struct ComponentState {
    mean: Vec<f64>,
    c: Mat,
    ss: f64,
}

/// Per-component quantities needed for the log density.
struct DensityCache {
    m_inv: Mat,
    log_det_sigma: f64,
    cm_inv: Mat, // C·M⁻¹ (D×d)
}

fn density_cache(state: &ComponentState, d_in: usize) -> Result<DensityCache> {
    let d = state.c.cols();
    let mut m = state.c.matmul_tn(&state.c);
    m.add_diag(state.ss);
    let lu = Lu::new(&m)?;
    let m_inv = lu.inverse();
    let log_det_m = lu.det().abs().max(f64::MIN_POSITIVE).ln();
    let log_det_sigma = (d_in - d) as f64 * state.ss.max(f64::MIN_POSITIVE).ln() + log_det_m;
    let cm_inv = state.c.matmul(&m_inv);
    Ok(DensityCache { m_inv, log_det_sigma, cm_inv })
}

/// `log N(y; μ, CC' + ss·I)` via Woodbury.
fn log_density(y: &[f64], state: &ComponentState, cache: &DensityCache) -> f64 {
    let d_in = y.len() as f64;
    let resid: Vec<f64> = y.iter().zip(&state.mean).map(|(a, b)| a - b).collect();
    // Mahalanobis: (‖r‖² − r'C M⁻¹ C' r)/ss.
    let ctr = {
        // C' r (d)
        let mut v = vec![0.0; state.c.cols()];
        for (j, &r) in resid.iter().enumerate() {
            if r != 0.0 {
                linalg::vector::axpy(r, state.c.row(j), &mut v);
            }
        }
        v
    };
    let quad_inner = {
        let tmp = cache.m_inv.matvec(&ctr);
        linalg::vector::dot(&ctr, &tmp)
    };
    let maha = (linalg::vector::norm2_sq(&resid) - quad_inner) / state.ss;
    -0.5 * (d_in * (2.0 * std::f64::consts::PI).ln() + cache.log_det_sigma + maha)
}

impl MixtureOfPpca {
    /// Fits a K-component mixture of d-dimensional PPCA models by EM.
    pub fn fit(y: &Mat, k: usize, d: usize, iterations: usize, seed: u64) -> Result<Self> {
        let n = y.rows();
        let d_in = y.cols();
        if n == 0 || d_in == 0 {
            return Err(SpcaError::EmptyInput);
        }
        if d > d_in || k == 0 || n < k {
            return Err(SpcaError::TooManyComponents {
                requested: d.max(k),
                available: d_in.min(n),
            });
        }

        let mut rng = Prng::seed_from_u64(seed);
        // Initialize means at random data rows, loadings randomly, equal
        // weights.
        let pick = rng.sample_indices(n, k);
        let mut states: Vec<ComponentState> = pick
            .iter()
            .map(|&r| {
                let mut c = rng.normal_mat(d_in, d);
                c.scale(0.2);
                ComponentState { mean: y.row(r).to_vec(), c, ss: 1.0 }
            })
            .collect();
        let mut weights = vec![1.0 / k as f64; k];
        let mut avg_ll = f64::NEG_INFINITY;

        let mut resp = Mat::zeros(n, k);
        for _ in 0..iterations {
            // ---- E-step: responsibilities.
            let caches: Vec<DensityCache> = states
                .iter()
                .map(|s| density_cache(s, d_in))
                .collect::<Result<_>>()?;
            let mut total_ll = 0.0;
            for r in 0..n {
                let row = y.row(r);
                let logs: Vec<f64> = (0..k)
                    .map(|c| weights[c].max(1e-300).ln() + log_density(row, &states[c], &caches[c]))
                    .collect();
                let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                for (c, &l) in logs.iter().enumerate() {
                    let e = (l - max).exp();
                    resp[(r, c)] = e;
                    z += e;
                }
                for c in 0..k {
                    resp[(r, c)] /= z;
                }
                total_ll += max + z.ln();
            }
            avg_ll = total_ll / n as f64;

            // ---- M-step per component (responsibility-weighted PPCA).
            for c_idx in 0..k {
                let rk: f64 = (0..n).map(|r| resp[(r, c_idx)]).sum();
                if rk < 1e-9 {
                    continue; // dead component: keep parameters
                }
                weights[c_idx] = rk / n as f64;
                // Weighted mean.
                let mut mu = vec![0.0; d_in];
                for r in 0..n {
                    linalg::vector::axpy(resp[(r, c_idx)], y.row(r), &mut mu);
                }
                linalg::vector::scale(1.0 / rk, &mut mu);

                // Posterior latents under current parameters.
                let cache = density_cache(&states[c_idx], d_in)?;
                let state = &states[c_idx];
                let mut sum_yx = Mat::zeros(d_in, d); // Σ r (y−μ) ⊗ x
                let mut sum_xx = Mat::zeros(d, d); // Σ r E[x xᵀ]
                let mut xs = Mat::zeros(n, d);
                for r in 0..n {
                    let w = resp[(r, c_idx)];
                    if w < 1e-12 {
                        continue;
                    }
                    let resid: Vec<f64> =
                        y.row(r).iter().zip(&mu).map(|(a, b)| a - b).collect();
                    // x = M⁻¹C'(y−μ) = (C M⁻¹)'(y−μ).
                    let x = cache.cm_inv.vecmat(&resid);
                    xs.row_mut(r).copy_from_slice(&x);
                    sum_yx.add_outer(w, &resid, &x);
                    sum_xx.add_outer(w, &x, &x);
                }
                sum_xx.add_scaled(rk * state.ss, &cache.m_inv);
                sum_xx.add_diag(1e-9);
                // C_new solves C·ΣE[xx'] = Σ(y−μ)⊗x.
                let c_new = linalg::decomp::cholesky::solve_spd_right(&sum_xx, &sum_yx)?;

                // ss update.
                let mut num = 0.0;
                for r in 0..n {
                    let w = resp[(r, c_idx)];
                    if w < 1e-12 {
                        continue;
                    }
                    let resid: Vec<f64> =
                        y.row(r).iter().zip(&mu).map(|(a, b)| a - b).collect();
                    let x = xs.row(r);
                    let pred = c_new.matvec(x);
                    let e2: f64 = resid
                        .iter()
                        .zip(&pred)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    num += w * e2;
                }
                // Posterior-covariance correction term.
                let ctc = c_new.matmul_tn(&c_new);
                let trace_term = rk * state.ss * cache.m_inv.matmul(&ctc).trace();
                let ss_new = ((num + trace_term) / (rk * d_in as f64)).max(1e-12);

                states[c_idx] = ComponentState { mean: mu, c: c_new, ss: ss_new };
            }
        }

        let components = states
            .into_iter()
            .map(|s| PcaModel::new(s.c, s.mean, s.ss))
            .collect();
        Ok(MixtureOfPpca { weights, components, avg_log_likelihood: avg_ll })
    }

    /// Hard cluster assignment per row (argmax responsibility under the
    /// fitted parameters).
    pub fn assign(&self, y: &Mat) -> Result<Vec<usize>> {
        let d_in = y.cols();
        let states: Vec<ComponentState> = self
            .components
            .iter()
            .map(|m| ComponentState {
                mean: m.mean().to_vec(),
                c: m.components().clone(),
                ss: m.noise_variance(),
            })
            .collect();
        let caches: Vec<DensityCache> =
            states.iter().map(|s| density_cache(s, d_in)).collect::<Result<_>>()?;
        Ok((0..y.rows())
            .map(|r| {
                let row = y.row(r);
                (0..self.components.len())
                    .max_by(|&a, &b| {
                        let la = self.weights[a].max(1e-300).ln()
                            + log_density(row, &states[a], &caches[a]);
                        let lb = self.weights[b].max(1e-300).ln()
                            + log_density(row, &states[b], &caches[b]);
                        la.partial_cmp(&lb).expect("finite log densities")
                    })
                    .expect("at least one component")
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated low-rank clusters.
    fn two_clusters(n_per: usize, d_in: usize, seed: u64) -> (Mat, Vec<usize>) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        for cluster in 0..2 {
            let offset = if cluster == 0 { -6.0 } else { 6.0 };
            let dir = rng.normal_vec(d_in);
            for _ in 0..n_per {
                let t = rng.normal();
                let mut row: Vec<f64> =
                    (0..d_in).map(|j| offset + t * dir[j] + 0.3 * rng.normal()).collect();
                row[0] += offset; // extra separation on the first axis
                rows.push(row);
                labels.push(cluster);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (Mat::from_rows(&refs), labels)
    }

    #[test]
    fn separates_two_clusters() {
        let (y, labels) = two_clusters(60, 6, 1);
        let mix = MixtureOfPpca::fit(&y, 2, 1, 25, 3).unwrap();
        let assign = mix.assign(&y).unwrap();
        // Assignments must be consistent with the true labels up to
        // permutation.
        let agree = assign.iter().zip(&labels).filter(|(a, b)| a == b).count();
        let acc = agree.max(assign.len() - agree) as f64 / assign.len() as f64;
        assert!(acc > 0.95, "cluster accuracy {acc}");
        // Weights near 50/50.
        assert!((mix.weights[0] - 0.5).abs() < 0.1, "weights {:?}", mix.weights);
    }

    #[test]
    fn likelihood_improves_with_more_iterations() {
        let (y, _) = two_clusters(40, 5, 2);
        let short = MixtureOfPpca::fit(&y, 2, 1, 2, 7).unwrap();
        let long = MixtureOfPpca::fit(&y, 2, 1, 20, 7).unwrap();
        assert!(
            long.avg_log_likelihood >= short.avg_log_likelihood - 1e-9,
            "{} vs {}",
            long.avg_log_likelihood,
            short.avg_log_likelihood
        );
    }

    #[test]
    fn single_component_behaves_like_ppca() {
        let (y, _) = two_clusters(30, 4, 3);
        let mix = MixtureOfPpca::fit(&y, 1, 2, 15, 1).unwrap();
        assert_eq!(mix.components.len(), 1);
        assert!((mix.weights[0] - 1.0).abs() < 1e-12);
        let assigns = mix.assign(&y).unwrap();
        assert!(assigns.iter().all(|&a| a == 0));
    }

    #[test]
    fn rejects_bad_parameters() {
        let y = Mat::zeros(3, 2);
        assert!(MixtureOfPpca::fit(&y, 0, 1, 5, 0).is_err());
        assert!(MixtureOfPpca::fit(&y, 5, 1, 5, 0).is_err(), "more clusters than rows");
        let empty = Mat::zeros(0, 2);
        assert!(MixtureOfPpca::fit(&empty, 1, 1, 5, 0).is_err());
    }
}
