//! Chaos-determinism properties of the fault-domain subsystem.
//!
//! The contract under test: a fault plan changes *when* work happens and
//! *what it costs* — never *what is computed*. Concretely:
//!
//! 1. **Bitwise fault transparency** — `fit()` under node crashes,
//!    stragglers and speculation produces a model whose every `f64` is
//!    bit-identical to the fault-free run, on both engines. Lineage
//!    recomputation (Spark) and split re-execution (MapReduce) are exact,
//!    not approximate.
//! 2. **Host-pool independence** — the recovery-event log and the fitted
//!    model are identical whether the simulation runs on 1, 2 or 8 host
//!    worker threads. Fault handling keys off stage indices, never off
//!    measured wall time.
//! 3. **Checkpoint transparency** — a run killed mid-loop and resumed
//!    from its DFS checkpoint converges to the bit-identical model of the
//!    uninterrupted run, on both engines.

use std::sync::Arc;

use dcluster::{ClusterConfig, FaultPlan, FaultSpec, RecoveryEvent, SimCluster};
use linalg::{Prng, SparseMat, WorkerPool};
use spca_core::checkpoint::CHECKPOINT_FILE;
use spca_core::{Spca, SpcaConfig, SpcaError, SpcaRun};

fn test_matrix(seed: u64) -> SparseMat {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = datasets::LowRankSpec::small_test();
    datasets::sparse_lowrank(&spec, &mut rng)
}

fn cluster() -> SimCluster {
    SimCluster::new(ClusterConfig::paper_cluster())
}

/// Every f64 of the fitted model, as raw bits — equality here is the
/// paper-faithful "recovery is exact" claim, not an epsilon comparison.
fn model_bits(run: &SpcaRun) -> (Vec<u64>, Vec<u64>, u64) {
    (
        run.model.components().data().iter().map(|v| v.to_bits()).collect(),
        run.model.mean().iter().map(|v| v.to_bits()).collect(),
        run.model.noise_variance().to_bits(),
    )
}

/// A plan that kills ≥ 2 of the 8 paper-cluster nodes mid-iteration (the
/// first EM iteration's YtX/ss3 stages are stage indices 2 and 3, after
/// meanJob and FnormJob) plus stragglers on every stage.
fn chaos_spec_and_plan() -> (FaultSpec, FaultPlan) {
    let spec = FaultSpec::new(0xfau64)
        .with_straggler_rate(0.2)
        .with_straggler_slowdown(5.0)
        .with_speculation(true);
    let plan = FaultPlan::new().with_crash(1, 2).with_crash(5, 3).with_crash(3, 5);
    (spec, plan)
}

fn count_kind(log: &[RecoveryEvent], kind: &str) -> usize {
    log.iter().filter(|e| e.kind() == kind).count()
}

#[test]
fn spark_fit_under_chaos_is_bitwise_identical_to_fault_free() {
    let y = test_matrix(11);
    let config = SpcaConfig::new(3).with_max_iters(5).with_rel_tolerance(None);

    let clean = Spca::new(config.clone()).fit_spark(&cluster(), &y).unwrap();

    let faulty_cluster = cluster();
    let (spec, plan) = chaos_spec_and_plan();
    faulty_cluster.install_fault_plan(spec, plan).unwrap();
    let faulty = Spca::new(config).fit_spark(&faulty_cluster, &y).unwrap();

    assert_eq!(model_bits(&clean), model_bits(&faulty), "crashes changed the Spark model");

    let log = faulty_cluster.recovery_log();
    assert_eq!(count_kind(&log, "node_crashed"), 3);
    assert!(
        count_kind(&log, "partition_recomputed") > 0,
        "a crash must trigger lineage recomputation of cached partitions"
    );
    assert!(count_kind(&log, "task_reattempted") > 0);
    // Recovery costs time: the faulty run is slower, never faster.
    assert!(faulty.virtual_time_secs > clean.virtual_time_secs);
}

#[test]
fn mapreduce_fit_under_chaos_is_bitwise_identical_to_fault_free() {
    let y = test_matrix(12);
    let config = SpcaConfig::new(3).with_max_iters(4).with_rel_tolerance(None);

    let clean = Spca::new(config.clone()).fit_mapreduce(&cluster(), &y).unwrap();

    let faulty_cluster = cluster();
    let (spec, plan) = chaos_spec_and_plan();
    faulty_cluster.install_fault_plan(spec, plan).unwrap();
    let faulty = Spca::new(config).fit_mapreduce(&faulty_cluster, &y).unwrap();

    assert_eq!(model_bits(&clean), model_bits(&faulty), "crashes changed the MapReduce model");

    let log = faulty_cluster.recovery_log();
    assert_eq!(count_kind(&log, "node_crashed"), 3);
    assert!(count_kind(&log, "task_reattempted") > 0, "killed map/reduce tasks must re-execute");
    // MapReduce recovers by re-reading materialized splits, not lineage.
    assert_eq!(count_kind(&log, "partition_recomputed"), 0);
    assert!(faulty.virtual_time_secs > clean.virtual_time_secs);
}

#[test]
fn generated_plans_are_deterministic_and_respect_the_rate() {
    let spec = FaultSpec::new(77).with_node_crash_rate(0.25).with_crash_horizon_stages(6);
    let a = FaultPlan::generate(&spec, 8);
    let b = FaultPlan::generate(&spec, 8);
    assert_eq!(a.events(), b.events(), "same spec must generate the same plan");
    assert_eq!(a.events().len(), 2, "25% of 8 nodes");
}

#[test]
fn recovery_log_and_model_identical_across_host_pools() {
    let y = test_matrix(13);
    let config = SpcaConfig::new(2).with_max_iters(4).with_rel_tolerance(None);

    let run_with = |workers: usize| {
        let c = SimCluster::new_with_pool(
            ClusterConfig::paper_cluster(),
            Arc::new(WorkerPool::new(workers)),
        );
        let (spec, plan) = chaos_spec_and_plan();
        c.install_fault_plan(spec, plan).unwrap();
        let run = Spca::new(config.clone()).fit_spark(&c, &y).unwrap();
        // Virtual time is derived from *measured* task durations, so it is
        // not bit-stable across pools — the structural outputs must be.
        (c.recovery_log(), model_bits(&run))
    };

    let base = run_with(1);
    for workers in [2, 8] {
        let other = run_with(workers);
        assert_eq!(base.0, other.0, "recovery log diverged at {workers} workers");
        assert_eq!(base.1, other.1, "model diverged at {workers} workers");
    }
}

#[test]
fn spark_checkpoint_resume_is_bitwise_equal_to_uninterrupted_run() {
    let y = test_matrix(14);
    let config = SpcaConfig::new(3).with_max_iters(6).with_checkpoint_every(2);

    let clean = Spca::new(config.clone()).fit_spark(&cluster(), &y).unwrap();

    let c = cluster();
    let crashing = config.clone().with_crash_at_iteration(3);
    match Spca::new(crashing).fit_spark(&c, &y) {
        Err(SpcaError::DriverCrashed { iteration: 3 }) => {}
        other => panic!("expected a driver crash at iteration 3, got {other:?}"),
    }
    assert!(
        c.dfs().stat(CHECKPOINT_FILE).is_some(),
        "the crash must leave a checkpoint on the DFS"
    );

    // Same config, same cluster, no crash: resumes from iteration 3.
    let resumed = Spca::new(config).fit_spark(&c, &y).unwrap();
    assert_eq!(model_bits(&clean), model_bits(&resumed), "resume diverged from clean run");
    assert!(
        resumed.iterations.first().map(|it| it.iteration) >= Some(3),
        "the resumed run must not redo checkpointed iterations"
    );
    let log = c.recovery_log();
    assert!(count_kind(&log, "checkpoint_written") >= 2);
    assert_eq!(count_kind(&log, "checkpoint_restored"), 1);
    assert!(c.dfs().stat(CHECKPOINT_FILE).is_none(), "a completed run removes its checkpoint");
}

#[test]
fn mapreduce_checkpoint_resume_is_bitwise_equal_to_uninterrupted_run() {
    let y = test_matrix(15);
    let config =
        SpcaConfig::new(3).with_max_iters(5).with_rel_tolerance(None).with_checkpoint_every(1);

    let clean = Spca::new(config.clone()).fit_mapreduce(&cluster(), &y).unwrap();

    let c = cluster();
    let crashing = config.clone().with_crash_at_iteration(2);
    assert!(matches!(
        Spca::new(crashing).fit_mapreduce(&c, &y),
        Err(SpcaError::DriverCrashed { iteration: 2 })
    ));
    let resumed = Spca::new(config).fit_mapreduce(&c, &y).unwrap();
    assert_eq!(model_bits(&clean), model_bits(&resumed), "resume diverged from clean run");
}

#[test]
fn checkpoint_resume_survives_node_crashes_too() {
    // Crash-of-driver and crash-of-nodes composed: still bit-identical.
    let y = test_matrix(16);
    let config = SpcaConfig::new(2).with_max_iters(4).with_rel_tolerance(None);

    let clean = Spca::new(config.clone()).fit_spark(&cluster(), &y).unwrap();

    let c = cluster();
    let (spec, plan) = chaos_spec_and_plan();
    c.install_fault_plan(spec, plan).unwrap();
    let ckpt = config.clone().with_checkpoint_every(1);
    assert!(matches!(
        Spca::new(ckpt.clone().with_crash_at_iteration(2)).fit_spark(&c, &y),
        Err(SpcaError::DriverCrashed { iteration: 2 })
    ));
    let resumed = Spca::new(ckpt).fit_spark(&c, &y).unwrap();
    assert_eq!(model_bits(&clean), model_bits(&resumed));
}

#[test]
fn smart_guess_under_chaos_stays_bitwise_deterministic() {
    // The warm-up run shares the cluster (and its fault plan) with the
    // main run; faults during either phase must still be transparent.
    let y = test_matrix(17);
    let config = SpcaConfig::new(3)
        .with_max_iters(4)
        .with_rel_tolerance(None)
        .with_smart_guess(spca_core::config::SmartGuess::default());

    let clean = Spca::new(config.clone()).fit_spark(&cluster(), &y).unwrap();

    let c = cluster();
    let (spec, plan) = chaos_spec_and_plan();
    c.install_fault_plan(spec, plan).unwrap();
    let faulty = Spca::new(config).fit_spark(&c, &y).unwrap();
    assert_eq!(model_bits(&clean), model_bits(&faulty));
}
