//! Scheduler-policy and serving-path determinism properties.
//!
//! The contract under test extends the fault-domain one to the new
//! multi-tenant layer: the job schedule, every fitted model, and the
//! full request/completion trace are pure functions of the spec, the
//! cluster config and the seeds — independent of host worker counts,
//! and bitwise-stable under chaos (node crash mid-serve, fault plans
//! during fits). On top of that, the policies must *differ* in the way
//! the paper's motivation says they should: fair-share keeps a skewed
//! tenant mix's light tenants out of the heavy tenant's convoy.

use std::sync::Arc;

use dcluster::jobs::percentile;
use dcluster::{ClusterConfig, FaultPlan, FaultSpec, SchedulerPolicy, SimCluster};
use linalg::{Prng, SparseMat, WorkerPool};
use spca_core::serving::{
    run_serving, FitJob, ServeChaos, ServeLoad, ServeSpec, ServingOutcome, TenantWorkload,
};
use spca_core::{PcaModel, Spca, SpcaConfig};

fn test_matrix(seed: u64) -> Arc<SparseMat> {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = datasets::LowRankSpec::small_test();
    Arc::new(datasets::sparse_lowrank(&spec, &mut rng))
}

fn fit_config() -> SpcaConfig {
    SpcaConfig::new(3).with_max_iters(3).with_seed(17).with_rel_tolerance(None)
}

fn fit_job(id: &str, y: &Arc<SparseMat>, submit: f64, cores: usize) -> FitJob {
    FitJob {
        id: id.into(),
        submit_secs: submit,
        cores,
        y: Arc::clone(y),
        config: fit_config(),
    }
}

fn serve_load(pool: &Arc<SparseMat>, batches: usize) -> ServeLoad {
    ServeLoad {
        pool: Arc::clone(pool),
        batches,
        batch_rows: 4,
        rate_per_sec: 40.0,
        start_secs: 0.0,
    }
}

/// Two fitting+serving tenants plus one serve-only tenant with a
/// pre-fitted model — exercises scheduling, parking until model-ready,
/// and t=0 serving in one spec.
fn mixed_spec(prefit: &PcaModel) -> ServeSpec {
    let ya = test_matrix(31);
    let yb = test_matrix(32);
    let mut spec = ServeSpec::new(0xc0ffee);
    spec.tenants.push(TenantWorkload {
        name: "alpha".into(),
        fit_jobs: vec![fit_job("alpha-0", &ya, 0.0, 16), fit_job("alpha-1", &ya, 2.0, 8)],
        serve: Some(serve_load(&ya, 30)),
        model: None,
    });
    spec.tenants.push(TenantWorkload {
        name: "beta".into(),
        fit_jobs: vec![fit_job("beta-0", &yb, 0.5, 32)],
        serve: Some(serve_load(&yb, 20)),
        model: None,
    });
    spec.tenants.push(TenantWorkload {
        name: "gamma".into(),
        fit_jobs: vec![],
        serve: Some(serve_load(&ya, 25)),
        model: Some(prefit.clone()),
    });
    spec
}

fn prefit_model() -> PcaModel {
    let y = test_matrix(31);
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    Spca::new(fit_config()).fit_spark(&cluster, &y).unwrap().model
}

fn run_on(workers: usize, policy: SchedulerPolicy, spec: &ServeSpec) -> ServingOutcome {
    let cfg = ClusterConfig::paper_cluster()
        .with_scheduler(policy)
        .with_fair_share_weights(vec![1.0, 1.0, 1.0]);
    let cluster = SimCluster::new_with_pool(cfg, Arc::new(WorkerPool::new(workers)));
    run_serving(&cluster, spec).unwrap()
}

fn model_hashes(out: &ServingOutcome) -> Vec<Option<u64>> {
    out.models.iter().map(|m| m.as_ref().map(PcaModel::content_hash)).collect()
}

#[test]
fn every_policy_is_bitwise_identical_across_host_worker_counts() {
    let prefit = prefit_model();
    let spec = mixed_spec(&prefit);
    for policy in SchedulerPolicy::all() {
        let base = run_on(1, policy, &spec);
        assert!(base.batches_total > 0, "{policy}: nothing served");
        for workers in [2usize, 8] {
            let other = run_on(workers, policy, &spec);
            assert_eq!(
                base.trace_hash, other.trace_hash,
                "{policy}: trace diverged at {workers} workers"
            );
            assert_eq!(
                base.schedule.start_order, other.schedule.start_order,
                "{policy}: dispatch order diverged at {workers} workers"
            );
            assert_eq!(
                model_hashes(&base),
                model_hashes(&other),
                "{policy}: fitted models diverged at {workers} workers"
            );
            assert_eq!(base.makespan_secs, other.makespan_secs);
            assert_eq!(base.rejected_total, other.rejected_total);
        }
    }
}

#[test]
fn fair_share_beats_fifo_p99_wait_on_a_skewed_tenant_mix() {
    // Tenant 0 floods the queue with whole-cluster jobs at t≈0; tenants
    // 1 and 2 each submit a couple of small jobs just behind the flood.
    // Under FIFO the light jobs sit through the convoy; fair-share lets
    // them through as soon as their share is lowest.
    let y = test_matrix(40);
    let mut spec = ServeSpec::new(5);
    let mut heavy = TenantWorkload { name: "heavy".into(), ..Default::default() };
    for i in 0..10 {
        heavy.fit_jobs.push(fit_job(&format!("heavy-{i}"), &y, 0.01 * i as f64, 64));
    }
    spec.tenants.push(heavy);
    for (t, name) in ["light-a", "light-b"].iter().enumerate() {
        let mut tenant = TenantWorkload { name: (*name).into(), ..Default::default() };
        for i in 0..2 {
            tenant
                .fit_jobs
                .push(fit_job(&format!("{name}-{i}"), &y, 0.5 + t as f64 + i as f64, 8));
        }
        spec.tenants.push(tenant);
    }

    let p99_light_wait = |policy: SchedulerPolicy| -> f64 {
        let out = run_on(1, policy, &spec);
        let mut waits: Vec<f64> = out
            .schedule
            .records
            .iter()
            .filter(|r| r.tenant != 0)
            .map(|r| r.wait_secs())
            .collect();
        assert_eq!(waits.len(), 4, "{policy}: a light job went missing");
        waits.sort_by(f64::total_cmp);
        percentile(&waits, 99.0)
    };

    let fifo = p99_light_wait(SchedulerPolicy::Fifo);
    let fair = p99_light_wait(SchedulerPolicy::FairShare);
    assert!(
        fair < fifo,
        "fair-share p99 light-tenant wait ({fair:.3}s) should beat FIFO ({fifo:.3}s)"
    );
}

#[test]
fn crash_mid_serve_rebroadcasts_models_from_survivors() {
    let prefit = prefit_model();
    let mut spec = mixed_spec(&prefit);
    spec.chaos = Some(ServeChaos { crash_node: 2, at_batch: 10 });

    let clean = {
        let mut s = spec.clone();
        s.chaos = None;
        run_on(1, SchedulerPolicy::FairShare, &s)
    };
    let chaotic = run_on(1, SchedulerPolicy::FairShare, &spec);

    // No batch is lost: the crashed node's in-flight and queued work
    // re-dispatches to survivors (possibly re-pushing the model there).
    assert_eq!(chaotic.batches_total + chaotic.rejected_total, 75);
    assert!(chaotic.rebroadcasts >= 1, "survivors must re-receive an already-pushed model");
    // Chaos changes when and where — never what: same models, and the
    // fault-free run sees no rebroadcasts at all.
    assert_eq!(model_hashes(&clean), model_hashes(&chaotic));
    assert_eq!(clean.rebroadcasts, 0);

    // The chaotic timeline itself is deterministic across worker counts.
    let chaotic8 = run_on(8, SchedulerPolicy::FairShare, &spec);
    assert_eq!(chaotic.trace_hash, chaotic8.trace_hash);
    assert_eq!(chaotic.rebroadcasts, chaotic8.rebroadcasts);
}

#[test]
fn serve_chaos_composes_with_fit_side_fault_plans() {
    let prefit = prefit_model();
    let mut spec = mixed_spec(&prefit);
    spec.chaos = Some(ServeChaos { crash_node: 1, at_batch: 6 });

    let run = |faults: bool| -> ServingOutcome {
        let cfg = ClusterConfig::paper_cluster()
            .with_scheduler(SchedulerPolicy::Backfill)
            .with_fair_share_weights(vec![1.0, 1.0, 1.0]);
        let cluster = SimCluster::new_with_pool(cfg, Arc::new(WorkerPool::new(2)));
        if faults {
            let fault_spec = FaultSpec::new(0xfa).with_straggler_rate(0.2);
            let plan = FaultPlan::new().with_crash(1, 2).with_crash(5, 3);
            cluster.install_fault_plan(fault_spec, plan).unwrap();
        }
        run_serving(&cluster, &spec).unwrap()
    };

    let clean = run(false);
    let faulty = run(true);
    // Fit-side crashes and stragglers never reach the models or the
    // serve trace: both hash identically (virtual fit *times* may move,
    // but the scheduler timeline is modeled, not measured).
    assert_eq!(model_hashes(&clean), model_hashes(&faulty));
    assert_eq!(clean.trace_hash, faulty.trace_hash);
}

#[test]
fn admission_control_rejects_deterministically_under_overload() {
    // Two 1-core nodes, queue depth 1, slow modeled compute, and a
    // 200-batch burst: most arrivals must bounce — identically on every
    // run and worker count.
    let prefit = prefit_model();
    let pool = test_matrix(31);
    let mut spec = ServeSpec::new(77);
    spec.flops_per_sec_per_core = 1e4; // milliseconds per batch
    spec.tenants.push(TenantWorkload {
        name: "burst".into(),
        fit_jobs: vec![],
        serve: Some(ServeLoad {
            pool,
            batches: 200,
            batch_rows: 4,
            rate_per_sec: 2000.0,
            start_secs: 0.0,
        }),
        model: Some(prefit),
    });
    let run = |workers: usize| {
        let cfg = ClusterConfig::paper_cluster()
            .with_nodes(2)
            .with_cores_per_node(1)
            .with_admission_queue_capacity(1);
        let cluster = SimCluster::new_with_pool(cfg, Arc::new(WorkerPool::new(workers)));
        run_serving(&cluster, &spec).unwrap()
    };
    let a = run(1);
    assert!(a.rejected_total > 0, "overload must trip admission control");
    assert_eq!(a.batches_total + a.rejected_total, 200);
    for workers in [2usize, 8] {
        let b = run(workers);
        assert_eq!(a.rejected_total, b.rejected_total);
        assert_eq!(a.trace_hash, b.trace_hash);
    }
}

#[test]
fn model_cache_evicts_lru_when_bytes_overflow() {
    // One node whose cache holds exactly one model, two tenants with
    // alternating traffic: every switch of tenant is a miss + eviction.
    let prefit = prefit_model();
    let pool = test_matrix(31);
    let mut spec = ServeSpec::new(13);
    for name in ["ping", "pong"] {
        spec.tenants.push(TenantWorkload {
            name: name.into(),
            fit_jobs: vec![],
            serve: Some(ServeLoad {
                pool: Arc::clone(&pool),
                batches: 12,
                batch_rows: 2,
                rate_per_sec: 5.0,
                start_secs: 0.0,
            }),
            model: Some(prefit.clone()),
        });
    }
    let cfg = ClusterConfig::paper_cluster()
        .with_nodes(1)
        .with_cores_per_node(8)
        .with_fair_share_weights(vec![1.0, 1.0])
        // Fits one encoded model (~a few hundred bytes), never two.
        .with_model_cache_bytes(1200);
    let cluster = SimCluster::new_with_pool(cfg, Arc::new(WorkerPool::new(1)));
    let out = run_serving(&cluster, &spec).unwrap();
    let evictions = cluster.registry().counter("serve.cache_evictions").get();
    assert!(evictions > 0, "cache thrash must evict");
    let misses: u64 = out.tenants.iter().map(|t| t.cache_misses).sum();
    let hits: u64 = out.tenants.iter().map(|t| t.cache_hits).sum();
    assert!(misses > 2, "alternating tenants on one node must re-miss, got {misses}");
    assert_eq!(hits + misses, 24, "every batch does exactly one cache lookup");
}

#[test]
fn job_scoped_checkpoints_do_not_cross_tenants() {
    // Two checkpointing fits share one cluster through the scheduler;
    // each model must equal its solo fresh-cluster, unscoped fit bit for
    // bit, and the run must leave no job namespaces behind.
    let ya = test_matrix(51);
    let yb = test_matrix(52);
    let config = fit_config().with_checkpoint_every(1);
    let solo = |y: &Arc<SparseMat>| {
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        Spca::new(config.clone()).fit_spark(&cluster, y).unwrap().model.content_hash()
    };
    let (solo_a, solo_b) = (solo(&ya), solo(&yb));

    let mut spec = ServeSpec::new(3);
    for (name, y) in [("ckpt-a", &ya), ("ckpt-b", &yb)] {
        spec.tenants.push(TenantWorkload {
            name: name.into(),
            fit_jobs: vec![FitJob {
                id: name.into(),
                submit_secs: 0.0,
                cores: 32,
                y: Arc::clone(y),
                config: config.clone(),
            }],
            serve: None,
            model: None,
        });
    }
    let cluster = SimCluster::new(
        ClusterConfig::paper_cluster().with_fair_share_weights(vec![1.0, 1.0]),
    );
    let out = run_serving(&cluster, &spec).unwrap();
    assert_eq!(out.models[0].as_ref().unwrap().content_hash(), solo_a);
    assert_eq!(out.models[1].as_ref().unwrap().content_hash(), solo_b);
    assert!(cluster.dfs().registered_jobs().is_empty(), "namespaces must be released");
}
