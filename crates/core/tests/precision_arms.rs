//! Contracts of the precision ladder and the v3 wire codec.
//!
//! 1. **Per-arm determinism** — each reduced-precision arm is itself a
//!    pure function of (data, config): fits are bitwise identical across
//!    host worker counts (1/2/8) on both engines. The arms differ from
//!    the `f64` reference, never from themselves.
//! 2. **Bounded divergence** — the f32 arm's objective and components
//!    track the f64 reference within a documented tolerance at
//!    paper-shaped problems (sparse binary text-like data, d latent
//!    components). Tolerances: final sampled reconstruction error within
//!    `1e-3` relative, components within `1e-2` max-abs. The bf16 arm is
//!    representation-rounding only, so it gets the looser `5e-2` / `2e-1`.
//! 3. **Codec invariance** — the wire codec moves byte meters only: the
//!    fitted model is bitwise identical under v2/v3/v3q, v3 charges
//!    strictly fewer shuffle bytes than v2 on the binary datasets, and
//!    the quantized arm never charges more than lossless v3.
//! 4. **Default unchanged** — `Precision::F64` + `WireCodec::V2` is the
//!    config default, so existing callers keep byte-identical behavior.

use std::sync::Arc;

use dcluster::{ClusterConfig, SimCluster};
use linalg::{Precision, Prng, WireCodec, WorkerPool};
use spca_core::{Spca, SpcaConfig, SpcaRun};

fn paperish_data() -> linalg::SparseMat {
    // Shaped like the paper's text datasets: sparse, binary, Zipf columns.
    let mut rng = Prng::seed_from_u64(2015);
    let spec = datasets::LowRankSpec {
        rows: 400,
        cols: 160,
        topics: 6,
        words_per_row: 10.0,
        topic_affinity: 0.7,
        zipf_exponent: 1.0,
    };
    datasets::sparse_lowrank(&spec, &mut rng)
}

fn fit_both(
    y: &linalg::SparseMat,
    config: &SpcaConfig,
    codec: WireCodec,
    workers: usize,
) -> (SpcaRun, SpcaRun) {
    let pool = Arc::new(WorkerPool::new(workers));
    let cfg = || {
        ClusterConfig::paper_cluster()
            .with_nodes(2)
            .with_cores_per_node(2)
            .with_wire_codec(codec)
    };
    let spca = Spca::new(config.clone());
    let c1 = SimCluster::new_with_pool(cfg(), pool.clone());
    let spark = spca.fit_spark(&c1, y).unwrap();
    let c2 = SimCluster::new_with_pool(cfg(), pool);
    let mr = spca.fit_mapreduce(&c2, y).unwrap();
    (spark, mr)
}

fn assert_bitwise_equal(a: &SpcaRun, b: &SpcaRun, ctx: &str) {
    assert_eq!(a.iterations.len(), b.iterations.len(), "iteration count ({ctx})");
    for (x, y) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(
            x.error.to_bits(),
            y.error.to_bits(),
            "iteration {} error diverged ({ctx})",
            x.iteration
        );
    }
    assert_eq!(
        a.model.components().max_abs_diff(b.model.components()),
        0.0,
        "components diverged ({ctx})"
    );
    assert_eq!(
        a.model.noise_variance().to_bits(),
        b.model.noise_variance().to_bits(),
        "noise variance diverged ({ctx})"
    );
}

/// Contract 1: every arm is bitwise deterministic across worker counts on
/// both engines.
#[test]
fn reduced_precision_arms_are_bitwise_deterministic_across_workers() {
    let y = paperish_data();
    for precision in [Precision::F32, Precision::Bf16AccF64] {
        let config = SpcaConfig::new(4)
            .with_max_iters(3)
            .with_rel_tolerance(None)
            .with_partitions(4)
            .with_precision(precision);
        let (spark_ref, mr_ref) = fit_both(&y, &config, WireCodec::V2, 1);
        for workers in [2usize, 8] {
            let (spark, mr) = fit_both(&y, &config, WireCodec::V2, workers);
            assert_bitwise_equal(
                &spark,
                &spark_ref,
                &format!("spark {precision} workers={workers}"),
            );
            assert_bitwise_equal(&mr, &mr_ref, &format!("mr {precision} workers={workers}"));
        }
        // The two engines agree with each other to round-off within the
        // arm (platform independence holds per arm).
        for (s, m) in spark_ref.iterations.iter().zip(&mr_ref.iterations) {
            assert!(
                (s.error - m.error).abs() <= 1e-6 * s.error.abs().max(1.0),
                "{precision}: engines diverged {} vs {}",
                s.error,
                m.error
            );
        }
    }
}

/// Contract 2: reduced-precision fits track the f64 reference within the
/// documented tolerances at paper shapes.
#[test]
fn reduced_precision_divergence_is_bounded() {
    let y = paperish_data();
    let base = SpcaConfig::new(4).with_max_iters(4).with_rel_tolerance(None).with_partitions(4);
    let spca = Spca::new(base.clone());
    let reference = spca
        .fit_spark(&SimCluster::new(ClusterConfig::paper_cluster()), &y)
        .unwrap();

    for (precision, err_tol, comp_tol) in
        [(Precision::F32, 1e-3, 1e-2), (Precision::Bf16AccF64, 5e-2, 2e-1)]
    {
        let spca = Spca::new(base.clone().with_precision(precision));
        let run = spca
            .fit_spark(&SimCluster::new(ClusterConfig::paper_cluster()), &y)
            .unwrap();
        let ref_err = reference.final_error();
        let rel = (run.final_error() - ref_err).abs() / ref_err.abs().max(1e-12);
        assert!(
            rel <= err_tol,
            "{precision}: final error diverged {rel:.2e} > {err_tol:.0e} \
             ({} vs {ref_err})",
            run.final_error()
        );
        let comp_diff = run.model.components().max_abs_diff(reference.model.components());
        assert!(
            comp_diff <= comp_tol,
            "{precision}: components diverged {comp_diff:.2e} > {comp_tol:.0e}"
        );
        // The arm still converges: error never increases overall.
        let first = run.iterations.first().unwrap().error;
        assert!(run.final_error() <= first, "{precision}: error increased");
    }
}

/// Contract 3: the wire codec moves byte meters only — fitted models are
/// bitwise identical under every codec, and v3 charges strictly fewer
/// shuffle bytes on binary sparse data.
#[test]
fn wire_codec_moves_bytes_not_models() {
    let y = paperish_data();
    let config = SpcaConfig::new(4).with_max_iters(3).with_rel_tolerance(None).with_partitions(4);

    let fit_with = |codec: WireCodec| {
        let cluster =
            SimCluster::new(ClusterConfig::paper_cluster().with_wire_codec(codec));
        let run = Spca::new(config.clone()).fit_spark(&cluster, &y).unwrap();
        (run, cluster.metrics().intermediate_bytes)
    };

    let (run_v2, bytes_v2) = fit_with(WireCodec::V2);
    let (run_v3, bytes_v3) = fit_with(WireCodec::V3);
    let (run_v3q, bytes_v3q) = fit_with(WireCodec::V3Quantized);

    assert_bitwise_equal(&run_v2, &run_v3, "v2 vs v3");
    assert_bitwise_equal(&run_v2, &run_v3q, "v2 vs v3q");
    assert!(
        bytes_v3 < bytes_v2,
        "v3 should shrink shuffle-family bytes: v2={bytes_v2} v3={bytes_v3}"
    );
    assert!(
        bytes_v3q <= bytes_v3,
        "quantized v3 should never charge more than lossless v3: \
         v3={bytes_v3} v3q={bytes_v3q}"
    );
}

/// Contract 4: the defaults are the reference arm, so an explicit
/// `F64`+`V2` config fits bitwise identically to an untouched one.
#[test]
fn explicit_defaults_match_implicit_defaults() {
    let y = paperish_data();
    let implicit = SpcaConfig::new(3).with_max_iters(2).with_rel_tolerance(None);
    let explicit = implicit.clone().with_precision(Precision::F64);
    assert_eq!(implicit, explicit);

    let base = SimCluster::new(ClusterConfig::paper_cluster());
    let run_a = Spca::new(implicit).fit_spark(&base, &y).unwrap();
    let with_codec =
        SimCluster::new(ClusterConfig::paper_cluster().with_wire_codec(WireCodec::V2));
    let run_b = Spca::new(explicit).fit_spark(&with_codec, &y).unwrap();
    assert_bitwise_equal(&run_a, &run_b, "explicit defaults");
}
