//! Critical-path profiler invariants over real two-engine sPCA runs.
//!
//! 1. **Bounded path** — for every reconstructed window (each EM
//!    iteration and the whole run) the virtual time on the critical path
//!    never exceeds the window makespan.
//! 2. **Exact attribution** — the per-category attribution plus idle sums
//!    to the window makespan exactly (segments tile the virtual clock in
//!    integer microseconds).
//! 3. **Structural determinism** — the *structure* of the path (the
//!    `(label, category)` sequence; durations erased) is identical across
//!    1, 2 and 8 host workers, on both engines: segment emission is gated
//!    on configuration, never on measured durations, so the profiler's
//!    story about a run cannot depend on the machine that produced it.

use std::sync::{Arc, Mutex, MutexGuard};

use dcluster::{ClusterConfig, SimCluster};
use linalg::{Prng, WorkerPool};
use spca_core::{Spca, SpcaConfig};

/// The obs collector is process-global; tests that install one must not
/// overlap (cargo runs `#[test]`s on parallel threads).
static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

fn collector_guard() -> MutexGuard<'static, ()> {
    COLLECTOR_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn fit_config() -> SpcaConfig {
    SpcaConfig::new(4).with_max_iters(3).with_partitions(8).with_seed(11)
}

/// Runs both engines with tracing on `workers` host threads and returns
/// the per-process profiles (Spark's first, then MapReduce's).
fn profiles_with_workers(workers: usize) -> Vec<obs::critpath::ProcessProfile> {
    let collector = obs::install_new();
    let y = datasets::tweets::generate(600, 150, &mut Prng::seed_from_u64(3));
    let cfg = ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(2);

    let spark = SimCluster::new_with_pool(cfg.clone(), Arc::new(WorkerPool::new(workers)));
    Spca::new(fit_config()).fit_spark(&spark, &y).expect("spark fit");
    let mr = SimCluster::new_with_pool(cfg, Arc::new(WorkerPool::new(workers)));
    Spca::new(fit_config()).fit_mapreduce(&mr, &y).expect("mapreduce fit");

    let profiles = obs::critpath::analyze(&collector.events());
    let _ = obs::uninstall();
    assert_eq!(collector.dropped(), 0, "test trace must not overflow");
    profiles
}

#[test]
fn path_is_bounded_and_attribution_is_exact_on_both_engines() {
    let _guard = collector_guard();
    let profiles = profiles_with_workers(2);
    assert_eq!(profiles.len(), 2, "one profile per engine cluster");

    for p in &profiles {
        assert_eq!(p.iterations.len(), 3, "{}: one window per EM iteration", p.name);
        let run = p.run.as_ref().expect("run window");
        for w in p.iterations.iter().chain([run]) {
            let makespan = w.makespan_us();
            assert!(makespan > 0, "{}/{}: empty window", p.name, w.label);
            assert!(
                w.path_us() <= makespan,
                "{}/{}: path {}us exceeds makespan {}us",
                p.name,
                w.label,
                w.path_us(),
                makespan
            );
            assert_eq!(
                w.attribution.total_us(),
                makespan,
                "{}/{}: attribution must sum to the makespan exactly",
                p.name,
                w.label
            );
            assert!(!w.path.is_empty(), "{}/{}: no segments on the path", p.name, w.label);
        }
        // Iteration windows partition the run's iterations: each path node
        // of an iteration also lies inside the run window.
        let iter_path: usize = p.iterations.iter().map(|w| w.path.len()).sum();
        assert!(
            run.path.len() >= iter_path,
            "{}: run path ({} nodes) must cover the iteration paths ({} nodes)",
            p.name,
            run.path.len(),
            iter_path
        );
    }

    // The engines genuinely differ: MapReduce routes intermediate data
    // through disk, Spark does not.
    let disk = obs::critpath::category_index("disk").unwrap();
    let spark_disk: u64 = profiles[0].run.as_ref().unwrap().attribution.cat_us[disk];
    let mr_disk: u64 = profiles[1].run.as_ref().unwrap().attribution.cat_us[disk];
    assert!(mr_disk > spark_disk, "MapReduce must charge more disk than Spark");
}

#[test]
fn path_structure_is_identical_across_host_worker_counts() {
    let _guard = collector_guard();
    let reference = profiles_with_workers(1);
    for workers in [2, 8] {
        let other = profiles_with_workers(workers);
        assert_eq!(reference.len(), other.len());
        for (a, b) in reference.iter().zip(&other) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.iterations.len(), b.iterations.len());
            for (wa, wb) in a.iterations.iter().zip(&b.iterations) {
                assert_eq!(
                    wa.structure(),
                    wb.structure(),
                    "{}/{}: path structure must not depend on host workers (1 vs {workers})",
                    a.name,
                    wa.label
                );
            }
            let (ra, rb) = (a.run.as_ref().unwrap(), b.run.as_ref().unwrap());
            assert_eq!(ra.structure(), rb.structure(), "{}: run structure", a.name);
        }
    }
}
