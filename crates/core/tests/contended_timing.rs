//! Timing-model invariance of the full sPCA pipeline.
//!
//! The contended discrete-event engine replaces *when* bytes move and how
//! long they take — never *what is computed*. Pinned here:
//!
//! 1. **Model invariance across timing models** — `fit()` produces a
//!    bit-identical model under `Uncontended` and `Contended` timing, on
//!    both engines (the timing model only converts bytes to virtual
//!    seconds; the algorithm never reads the clock).
//! 2. **Host-pool independence under contention** — the contended fit is
//!    bit-identical on 1, 2, and 8 host workers; the event queue orders
//!    by `(virtual time, seq)`, never host time.
//! 3. **Fault composition** — chaos fault plans on the contended engine
//!    (crashes cancel in-flight transfer events and re-enqueue the
//!    reattempts) still produce the fault-free bitwise model.
//! 4. **Byte-meter invariance** — both timing models meter exactly the
//!    same bytes; contended timing additionally reports per-link stats
//!    with utilization ≤ 100 %.

use std::sync::Arc;

use dcluster::{ClusterConfig, FaultPlan, FaultSpec, SimCluster, TimingModel};
use linalg::{Prng, SparseMat, WorkerPool};
use spca_core::{Spca, SpcaConfig, SpcaRun};

fn test_matrix(seed: u64) -> SparseMat {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = datasets::LowRankSpec::small_test();
    datasets::sparse_lowrank(&spec, &mut rng)
}

fn cluster(timing: TimingModel) -> SimCluster {
    SimCluster::new(ClusterConfig::scaled_cluster().with_timing(timing))
}

fn config() -> SpcaConfig {
    SpcaConfig::new(3).with_max_iters(4).with_rel_tolerance(None)
}

fn model_bits(run: &SpcaRun) -> (Vec<u64>, Vec<u64>, u64) {
    (
        run.model.components().data().iter().map(|v| v.to_bits()).collect(),
        run.model.mean().iter().map(|v| v.to_bits()).collect(),
        run.model.noise_variance().to_bits(),
    )
}

#[test]
fn spark_fit_is_bitwise_identical_across_timing_models() {
    let y = test_matrix(21);
    let u = Spca::new(config()).fit_spark(&cluster(TimingModel::Uncontended), &y).unwrap();
    let c = Spca::new(config()).fit_spark(&cluster(TimingModel::Contended), &y).unwrap();
    assert_eq!(model_bits(&u), model_bits(&c), "timing model changed the Spark model");
}

#[test]
fn mapreduce_fit_is_bitwise_identical_across_timing_models() {
    let y = test_matrix(22);
    let u = Spca::new(config()).fit_mapreduce(&cluster(TimingModel::Uncontended), &y).unwrap();
    let c = Spca::new(config()).fit_mapreduce(&cluster(TimingModel::Contended), &y).unwrap();
    assert_eq!(model_bits(&u), model_bits(&c), "timing model changed the MR model");
}

#[test]
fn contended_fit_is_bitwise_identical_across_1_2_8_host_workers() {
    let y = test_matrix(23);
    let fit = |workers: usize, spark: bool| {
        let cl = SimCluster::new_with_pool(
            ClusterConfig::scaled_cluster().with_timing(TimingModel::Contended),
            Arc::new(WorkerPool::new(workers)),
        );
        let run = if spark {
            Spca::new(config()).fit_spark(&cl, &y).unwrap()
        } else {
            Spca::new(config()).fit_mapreduce(&cl, &y).unwrap()
        };
        model_bits(&run)
    };
    for &spark in &[true, false] {
        let one = fit(1, spark);
        assert_eq!(one, fit(2, spark), "spark={spark}: 1 vs 2 workers");
        assert_eq!(one, fit(8, spark), "spark={spark}: 1 vs 8 workers");
    }
}

#[test]
fn contended_byte_meters_match_uncontended_exactly() {
    let y = test_matrix(24);
    let run = |timing| {
        let cl = cluster(timing);
        let _ = Spca::new(config()).fit_spark(&cl, &y).unwrap();
        let m = cl.metrics();
        (m.network_bytes, m.dfs_bytes_written, m.dfs_bytes_read, m.intermediate_bytes)
    };
    assert_eq!(
        run(TimingModel::Uncontended),
        run(TimingModel::Contended),
        "byte meters must be timing-model-invariant"
    );
}

#[test]
fn contended_fit_reports_bounded_link_utilization() {
    let y = test_matrix(25);
    let cl = cluster(TimingModel::Contended);
    let _ = Spca::new(config()).fit_spark(&cl, &y).unwrap();
    let stats = cl.link_stats();
    assert!(!stats.is_empty());
    for l in &stats {
        assert!(l.peak_util <= 1.0 + 1e-9, "link {} at {}", l.label, l.peak_util);
    }
    assert!(stats.iter().any(|l| l.bytes > 0.0), "a fit moves bytes over links");
    let engine = cl.engine_stats().expect("engine stats under contended timing");
    assert!(engine.events > 0 && engine.resolves > 0);
}

#[test]
fn chaos_on_the_contended_engine_is_bitwise_fault_free_identical() {
    let y = test_matrix(26);
    let spec = FaultSpec::new(0xeeu64)
        .with_straggler_rate(0.2)
        .with_straggler_slowdown(5.0)
        .with_speculation(true);
    let plan = FaultPlan::new().with_crash(1, 2).with_crash(5, 3).with_crash(3, 5);

    for &spark in &[true, false] {
        let fit = |timing, faulty: bool| {
            let cl = cluster(timing);
            if faulty {
                cl.install_fault_plan(spec.clone(), plan.clone()).unwrap();
            }
            let run = if spark {
                Spca::new(config()).fit_spark(&cl, &y).unwrap()
            } else {
                Spca::new(config()).fit_mapreduce(&cl, &y).unwrap()
            };
            (model_bits(&run), cl.recovery_log())
        };
        let (clean_c, log_clean) = fit(TimingModel::Contended, false);
        let (faulty_c, log_faulty) = fit(TimingModel::Contended, true);
        let (faulty_u, log_faulty_u) = fit(TimingModel::Uncontended, true);
        assert!(log_clean.is_empty());
        assert!(!log_faulty.is_empty(), "the chaos plan must actually fire");
        assert_eq!(clean_c, faulty_c, "spark={spark}: chaos changed the contended model");
        assert_eq!(faulty_u, faulty_c, "spark={spark}: engines disagree under chaos");
        assert_eq!(
            log_faulty, log_faulty_u,
            "spark={spark}: recovery logs are structural, not timed"
        );
    }
}
