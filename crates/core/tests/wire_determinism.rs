//! Differential determinism of the wire codec.
//!
//! The sizing policy decides *what the meters charge* — never *what is
//! computed*. These tests pin that contract from both sides:
//!
//! 1. **Codec transparency** — `fit()` with the real wire codec
//!    (`Sizing::Encoded`, the default) produces a model bitwise identical
//!    to the legacy estimated-size path, on both engines. Encoding values
//!    for metering must never perturb the arithmetic.
//! 2. **Meter divergence** — the same pair of runs must *disagree* on
//!    intermediate bytes (and the encoded run must be cheaper at these
//!    shapes), proving the codec is actually engaged rather than silently
//!    falling back to estimates.
//! 3. **Composition** — the equivalence holds across 1/2/8 host worker
//!    threads and under the chaos fault plan from `faults.rs`.
//! 4. **Durability** — the encoded checkpoint blob on the DFS survives a
//!    node crash, is re-replicated at its encoded length, and still
//!    decodes bitwise afterwards.

use std::sync::Arc;

use dcluster::{ClusterConfig, FaultPlan, FaultSpec, SimCluster};
use linalg::{Prng, SparseMat, WorkerPool};
use spca_core::checkpoint::{EmCheckpoint, CHECKPOINT_FILE};
use spca_core::{Spca, SpcaConfig, SpcaError, SpcaRun};

fn test_matrix(seed: u64) -> SparseMat {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = datasets::LowRankSpec::small_test();
    datasets::sparse_lowrank(&spec, &mut rng)
}

fn encoded_cluster() -> SimCluster {
    SimCluster::new(ClusterConfig::paper_cluster())
}

fn estimated_cluster() -> SimCluster {
    SimCluster::new(ClusterConfig::paper_cluster().with_estimated_sizes())
}

fn model_bits(run: &SpcaRun) -> (Vec<u64>, Vec<u64>, u64) {
    (
        run.model.components().data().iter().map(|v| v.to_bits()).collect(),
        run.model.mean().iter().map(|v| v.to_bits()).collect(),
        run.model.noise_variance().to_bits(),
    )
}

/// The chaos plan from `faults.rs`: two mid-iteration node crashes plus
/// stragglers and speculation on every stage.
fn chaos_spec_and_plan() -> (FaultSpec, FaultPlan) {
    let spec = FaultSpec::new(0xfau64)
        .with_straggler_rate(0.2)
        .with_straggler_slowdown(5.0)
        .with_speculation(true);
    let plan = FaultPlan::new().with_crash(1, 2).with_crash(5, 3).with_crash(3, 5);
    (spec, plan)
}

#[test]
fn spark_fit_is_bitwise_identical_across_sizing_policies() {
    let y = test_matrix(41);
    let config = SpcaConfig::new(3).with_max_iters(5).with_rel_tolerance(None);

    let encoded = Spca::new(config.clone()).fit_spark(&encoded_cluster(), &y).unwrap();
    let estimated = Spca::new(config).fit_spark(&estimated_cluster(), &y).unwrap();

    assert_eq!(
        model_bits(&encoded),
        model_bits(&estimated),
        "the sizing policy leaked into the Spark arithmetic"
    );
    assert_eq!(encoded.iterations.len(), estimated.iterations.len());
    assert_ne!(
        encoded.intermediate_bytes, estimated.intermediate_bytes,
        "identical byte totals mean the codec never engaged"
    );
    assert!(
        encoded.intermediate_bytes < estimated.intermediate_bytes,
        "varint + delta encoding must beat the flat estimate at paper shapes \
         ({} encoded vs {} estimated)",
        encoded.intermediate_bytes,
        estimated.intermediate_bytes
    );
}

#[test]
fn mapreduce_fit_is_bitwise_identical_across_sizing_policies() {
    let y = test_matrix(42);
    let config = SpcaConfig::new(3).with_max_iters(4).with_rel_tolerance(None);

    let encoded = Spca::new(config.clone()).fit_mapreduce(&encoded_cluster(), &y).unwrap();
    let estimated = Spca::new(config).fit_mapreduce(&estimated_cluster(), &y).unwrap();

    assert_eq!(
        model_bits(&encoded),
        model_bits(&estimated),
        "the sizing policy leaked into the MapReduce arithmetic"
    );
    assert_ne!(encoded.intermediate_bytes, estimated.intermediate_bytes);
    assert!(encoded.intermediate_bytes < estimated.intermediate_bytes);
}

#[test]
fn mapreduce_sizing_equivalence_survives_chaos() {
    let y = test_matrix(43);
    let config = SpcaConfig::new(2).with_max_iters(4).with_rel_tolerance(None);

    let run_with = |cfg: ClusterConfig| {
        let c = SimCluster::new(cfg);
        let (spec, plan) = chaos_spec_and_plan();
        c.install_fault_plan(spec, plan).unwrap();
        let run = Spca::new(config.clone()).fit_mapreduce(&c, &y).unwrap();
        (c.recovery_log(), model_bits(&run))
    };

    let encoded = run_with(ClusterConfig::paper_cluster());
    let estimated = run_with(ClusterConfig::paper_cluster().with_estimated_sizes());
    assert_eq!(encoded.0, estimated.0, "fault recovery diverged across sizing policies");
    assert_eq!(encoded.1, estimated.1, "MapReduce model diverged under chaos");
}

#[test]
fn sizing_equivalence_survives_worker_pools_and_chaos() {
    let y = test_matrix(44);
    let config = SpcaConfig::new(2).with_max_iters(4).with_rel_tolerance(None);

    let run_with = |workers: usize, cfg: ClusterConfig| {
        let c = SimCluster::new_with_pool(cfg, Arc::new(WorkerPool::new(workers)));
        let (spec, plan) = chaos_spec_and_plan();
        c.install_fault_plan(spec, plan).unwrap();
        let run = Spca::new(config.clone()).fit_spark(&c, &y).unwrap();
        (c.recovery_log(), model_bits(&run))
    };

    let base = run_with(1, ClusterConfig::paper_cluster());
    for workers in [1, 2, 8] {
        for estimated in [false, true] {
            let cfg = if estimated {
                ClusterConfig::paper_cluster().with_estimated_sizes()
            } else {
                ClusterConfig::paper_cluster()
            };
            let other = run_with(workers, cfg);
            assert_eq!(
                base.0, other.0,
                "recovery log diverged at {workers} workers (estimated={estimated})"
            );
            assert_eq!(
                base.1, other.1,
                "model diverged at {workers} workers (estimated={estimated})"
            );
        }
    }
}

#[test]
fn encoded_checkpoint_survives_crash_and_re_replication_then_decodes() {
    let y = test_matrix(45);
    let c = encoded_cluster();
    let config = SpcaConfig::new(3)
        .with_max_iters(6)
        .with_checkpoint_every(2)
        .with_crash_at_iteration(3);

    // Crash the driver mid-fit, leaving the encoded checkpoint on the DFS.
    assert!(matches!(
        Spca::new(config).fit_spark(&c, &y),
        Err(SpcaError::DriverCrashed { iteration: 3 })
    ));

    let blob_before = c.dfs().get_blob(&c, CHECKPOINT_FILE).expect("checkpoint blob");
    assert_eq!(&blob_before[..8], b"SPCACKPT", "checkpoint blob leads with its magic");
    let before = EmCheckpoint::decode_arc(&blob_before).expect("blob decodes before crash");
    assert_eq!(
        blob_before.len() as u64,
        before.encoded_size(),
        "stored blob length must equal the codec's stated size"
    );

    // Kill a node holding a replica: the block must be re-replicated at its
    // encoded length, and the surviving copy must still decode bitwise.
    let replicas = c.dfs().replicas(CHECKPOINT_FILE).expect("replica set");
    assert!(replicas.len() >= 2, "paper cluster replicates the checkpoint");
    let victim = replicas[0];
    let (events, replication_bytes) = c.dfs().on_node_crash(&c, victim);
    assert!(
        events.iter().any(|e| e.kind() == "block_re_replicated"),
        "losing one replica must trigger re-replication, got {events:?}"
    );
    assert!(
        replication_bytes >= blob_before.len() as u64,
        "re-replication is charged at the encoded block size"
    );
    let now = c.dfs().replicas(CHECKPOINT_FILE).expect("still present");
    assert!(!now.contains(&victim), "the crashed node no longer holds a copy");

    let blob_after = c.dfs().get_blob(&c, CHECKPOINT_FILE).expect("blob after re-replication");
    assert_eq!(*blob_after, *blob_before, "re-replication must not rewrite the bytes");
    let after = EmCheckpoint::decode_arc(&blob_after).expect("blob decodes after re-replication");
    assert_eq!(after.iteration, before.iteration);
    assert_eq!(
        after.c.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        before.c.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    assert_eq!(after.ss.to_bits(), before.ss.to_bits());
    assert_eq!(after.prev_error.to_bits(), before.prev_error.to_bits());
}
