//! Determinism properties of the batched EM path.
//!
//! Three contracts the batched kernels must honour (ISSUE 3):
//!
//! 1. **Merge algebra** — `YtxPartial::merge` is associative to round-off
//!    and the empty partial is an exact (bitwise) identity, so tree-shaped
//!    and left-fold reductions agree wherever the engines put them.
//! 2. **Batched ≡ row-at-a-time** — folding partitions through
//!    `add_block_with_pool` produces bit-for-bit the same accumulator as
//!    the row-at-a-time ablation arm, for every worker count × partition
//!    count combination. This is the guarantee that lets the ablation arm
//!    serve as the reference implementation.
//! 3. **Engine-level determinism** — `fit` on both engines produces
//!    identical iteration errors and components whatever the host worker
//!    pool size; only host wall time may change.

use std::sync::Arc;

use dcluster::{ClusterConfig, SimCluster};
use linalg::{Mat, Prng, SparseMat, WorkerPool};
use spca_core::mean_prop::{rowwise::RowwisePartial, YtxPartial};
use spca_core::{Spca, SpcaConfig};

fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> SparseMat {
    let mut rng = Prng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.uniform() < density {
                triplets.push((r, c as u32, rng.normal()));
            }
        }
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

fn fixtures(seed: u64) -> (SparseMat, Mat, Vec<f64>) {
    let mut rng = Prng::seed_from_u64(seed);
    let (n, d_in, d) = (120, 40, 5);
    let y = random_sparse(n, d_in, 0.12, seed ^ 0xb10c);
    let cm = rng.normal_mat(d_in, d);
    let xm = rng.normal_vec(d);
    (y, cm, xm)
}

fn batched_partial(pool: &WorkerPool, block: &SparseMat, cm: &Mat, xm: &[f64]) -> YtxPartial {
    let mut p = YtxPartial::new(cm.cols());
    p.add_block_with_pool(pool, block, cm, xm);
    p
}

#[test]
fn merge_is_associative_to_roundoff() {
    let (y, cm, xm) = fixtures(11);
    let pool = WorkerPool::global();
    let blocks = y.split_rows(3);
    let parts: Vec<YtxPartial> =
        blocks.iter().map(|b| batched_partial(pool, b, &cm, &xm)).collect();

    // (a ⊕ b) ⊕ c
    let mut left = parts[0].clone();
    left.merge(parts[1].clone());
    left.merge(parts[2].clone());
    // a ⊕ (b ⊕ c)
    let mut bc = parts[1].clone();
    bc.merge(parts[2].clone());
    let mut right = parts[0].clone();
    right.merge(bc);

    let mean = y.col_means();
    assert!(left.xtx.max_abs_diff(&right.xtx) < 1e-10);
    assert!(left.finalize_ytx(&mean).max_abs_diff(&right.finalize_ytx(&mean)) < 1e-10);
    for (a, b) in left.sum_x.iter().zip(&right.sum_x) {
        assert!((a - b).abs() < 1e-10);
    }
    assert_eq!(left.rows_seen, right.rows_seen);
}

#[test]
fn empty_partial_is_exact_merge_identity() {
    let (y, cm, xm) = fixtures(12);
    let p = batched_partial(WorkerPool::global(), &y, &cm, &xm);

    // empty ⊕ p and p ⊕ empty are both bitwise p.
    let mut left = YtxPartial::new(cm.cols());
    left.merge(p.clone());
    assert_eq!(left, p);
    let mut right = p.clone();
    right.merge(YtxPartial::new(cm.cols()));
    assert_eq!(right, p);
}

/// The tentpole contract: batched partition folds reduced with
/// [`sparkle::tree_merge`] are bit-for-bit equal to the row-at-a-time
/// ablation arm under the same reduction tree — across every worker
/// count × partition count combination.
#[test]
fn batched_matches_rowwise_bitwise_across_workers_and_partitions() {
    let (y, cm, xm) = fixtures(13);
    let mean = y.col_means();
    let d = cm.cols();

    // Reference: row-at-a-time fold per partition + the same tree merge.
    let reference = |parts: usize| -> RowwisePartial {
        let partials: Vec<RowwisePartial> = y
            .split_rows(parts)
            .iter()
            .map(|b| {
                let mut p = RowwisePartial::new(d);
                for r in 0..b.rows() {
                    p.add_row(b.row(r), &cm, &xm);
                }
                p
            })
            .collect();
        sparkle::tree_merge(partials, || RowwisePartial::new(d), |a, b| a.merge(b))
    };

    for &parts in &[1usize, 3, 8] {
        let rw = reference(parts);
        let rw_ytx = rw.finalize_ytx(&mean);
        for &workers in &[1usize, 2, 8] {
            let pool = Arc::new(WorkerPool::new(workers));
            let partials: Vec<YtxPartial> = y
                .split_rows(parts)
                .iter()
                .map(|b| batched_partial(&pool, b, &cm, &xm))
                .collect();
            let batched =
                sparkle::tree_merge(partials, || YtxPartial::new(d), |a, b| a.merge(b));

            let ctx = format!("workers={workers} partitions={parts}");
            assert_eq!(
                batched.xtx.max_abs_diff(&rw.xtx),
                0.0,
                "XtX diverged ({ctx})"
            );
            assert_eq!(
                batched.finalize_ytx(&mean).max_abs_diff(&rw_ytx),
                0.0,
                "YtX diverged ({ctx})"
            );
            for (a, b) in batched.sum_x.iter().zip(&rw.sum_x) {
                assert_eq!(a.to_bits(), b.to_bits(), "Σx diverged ({ctx})");
            }
            assert_eq!(batched.rows_seen, rw.rows_seen, "row count diverged ({ctx})");
        }
    }
}

/// `fit` must be a pure function of (data, config): the host pool driving
/// the simulated cluster must not leak into any result.
#[test]
fn fit_is_identical_across_worker_counts_on_both_engines() {
    let mut rng = Prng::seed_from_u64(21);
    let spec = datasets::LowRankSpec::small_test();
    let y = datasets::sparse_lowrank(&spec, &mut rng);
    let config = SpcaConfig::new(3).with_max_iters(3).with_rel_tolerance(None).with_partitions(6);
    let spca = Spca::new(config);

    let cluster_cfg = || ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(2);
    let run_both = |workers: usize| {
        let pool = Arc::new(WorkerPool::new(workers));
        let c1 = SimCluster::new_with_pool(cluster_cfg(), pool.clone());
        let spark = spca.fit_spark(&c1, &y).unwrap();
        let c2 = SimCluster::new_with_pool(cluster_cfg(), pool);
        let mr = spca.fit_mapreduce(&c2, &y).unwrap();
        (spark, mr)
    };

    let (spark_ref, mr_ref) = run_both(1);
    for &workers in &[2usize, 4] {
        let (spark, mr) = run_both(workers);
        for (run, reference, engine) in
            [(&spark, &spark_ref, "spark"), (&mr, &mr_ref, "mapreduce")]
        {
            assert_eq!(run.iterations.len(), reference.iterations.len());
            for (it, it_ref) in run.iterations.iter().zip(&reference.iterations) {
                assert_eq!(
                    it.error.to_bits(),
                    it_ref.error.to_bits(),
                    "{engine} iteration {} error diverged at workers={workers}",
                    it.iteration
                );
            }
            assert_eq!(
                run.model.components().max_abs_diff(reference.model.components()),
                0.0,
                "{engine} components diverged at workers={workers}"
            );
            assert_eq!(
                run.model.noise_variance().to_bits(),
                reference.model.noise_variance().to_bits(),
                "{engine} ss diverged at workers={workers}"
            );
        }
    }

    // And the two engines agree with each other to round-off (the paper's
    // platform-independence claim), already covered per-iteration here.
    for (s, m) in spark_ref.iterations.iter().zip(&mr_ref.iterations) {
        assert!((s.error - m.error).abs() <= 1e-8 * s.error.abs().max(1.0));
    }
}
