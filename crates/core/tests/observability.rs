//! Cross-engine observability properties.
//!
//! Three invariants of the tracing/metrics layer, checked over real
//! workloads rather than unit fixtures:
//!
//! 1. **Byte accounting** — `intermediate_bytes` always equals
//!    `network_bytes + dfs_bytes_written`, no matter how MapReduce jobs,
//!    sparkle stages, broadcasts and DFS traffic interleave on one
//!    cluster. This is the paper's "intermediate data" measure (Table 3),
//!    so an off-by-one here silently skews a headline result.
//! 2. **Span well-formedness** — after a full sPCA run on both engines
//!    every begin has a matching end, properly nested per (pid, tid), and
//!    the Chrome-trace export is valid JSON.
//! 3. **Clock monotonicity** — backwards `advance_time` is dropped and
//!    counted in `clock_violations` instead of corrupting virtual time.

use std::sync::{Mutex, MutexGuard};

use dcluster::{ClusterConfig, Dfs, SimCluster};
use linalg::Prng;
use mapreduce::{Emitter, MapReduceEngine, MapReduceJob};
use sparkle::SparkleContext;
use spca_core::{Spca, SpcaConfig};

/// The obs collector is process-global; tests that install one must not
/// overlap (cargo runs `#[test]`s on parallel threads).
static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

fn collector_guard() -> MutexGuard<'static, ()> {
    COLLECTOR_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn small_cluster() -> SimCluster {
    SimCluster::new(ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(2))
}

fn assert_byte_invariant(cluster: &SimCluster, context: &str) {
    let m = cluster.metrics();
    assert_eq!(
        m.intermediate_bytes,
        m.network_bytes + m.dfs_bytes_written,
        "{context}: intermediate {} != network {} + dfs written {}",
        m.intermediate_bytes,
        m.network_bytes,
        m.dfs_bytes_written
    );
}

/// A trivial word-count-shaped job: keys 0..buckets, one f64 per row.
struct SumJob {
    buckets: usize,
}

impl MapReduceJob for SumJob {
    type Input = Vec<f64>;
    type Key = u32;
    type Value = f64;
    type Output = f64;

    fn map(&self, partition: &Vec<f64>, emitter: &mut Emitter<'_, u32, f64>) {
        for (i, v) in partition.iter().enumerate() {
            emitter.emit((i % self.buckets) as u32, *v);
        }
    }

    fn combine(&self, _key: &u32, values: Vec<f64>) -> Vec<f64> {
        vec![values.iter().sum()]
    }

    fn reduce(&self, _key: u32, values: Vec<f64>) -> f64 {
        values.iter().sum()
    }
}

#[test]
fn intermediate_bytes_equals_network_plus_dfs_under_interleaving() {
    let cluster = small_cluster();
    let hdfs = Dfs::new();
    let mut rng = Prng::seed_from_u64(42);

    for round in 0..40 {
        match rng.index(5) {
            // MapReduce job: shuffles over the network AND spills the
            // pre-combine map output to the DFS.
            0 => {
                let engine = MapReduceEngine::new(&cluster);
                let parts: Vec<Vec<f64>> =
                    (0..4).map(|_| (0..32).map(|_| rng.normal()).collect()).collect();
                let buckets = 1 + rng.index(6);
                let (_out, stats) = engine.run_job("sumJob", &SumJob { buckets }, &parts, 2);
                assert!(stats.shuffle_bytes > 0);
            }
            // Sparkle aggregate: accumulator partials cross the network.
            1 => {
                let ctx = SparkleContext::new(&cluster);
                let n = 16 + rng.index(64);
                let rdd = ctx.parallelize((0..n).map(|i| i as f64).collect(), 4);
                let (sum, bytes) = rdd.aggregate(
                    "sumStage",
                    || 0.0f64,
                    |acc, v| *acc += v,
                    |acc, p| *acc += p,
                );
                assert!(sum >= 0.0 && bytes > 0);
            }
            // Sparkle collect: everything to the driver over the network.
            2 => {
                let ctx = SparkleContext::new(&cluster);
                let n = 8 + rng.index(32);
                let rdd = ctx.parallelize(vec![1.0f64; n], 2);
                let collected = rdd.collect();
                assert_eq!(collected.len(), n);
            }
            // Broadcast: driver value fanned out to every node.
            3 => {
                cluster.charge_broadcast(64 + rng.index(4096) as u64);
            }
            // DFS round trip.
            _ => {
                let name = format!("file-{round}");
                let bytes = 8 * (16 + rng.index(64) as u64);
                hdfs.put(&cluster, name.clone(), bytes);
                assert_eq!(hdfs.get(&cluster, &name).unwrap(), bytes);
            }
        }
        assert_byte_invariant(&cluster, &format!("after round {round}"));
    }

    let end = cluster.metrics();
    assert!(end.network_bytes > 0 && end.dfs_bytes_written > 0);
    assert_eq!(end.clock_violations, 0);
}

#[test]
fn byte_invariant_survives_reset() {
    let cluster = small_cluster();
    cluster.charge_network(1000);
    cluster.charge_dfs_write(500);
    assert_byte_invariant(&cluster, "before reset");
    cluster.reset_metrics();
    let m = cluster.metrics();
    assert_eq!((m.intermediate_bytes, m.network_bytes, m.dfs_bytes_written), (0, 0, 0));
    cluster.charge_dfs_write(77);
    assert_byte_invariant(&cluster, "after reset");
}

#[test]
fn spans_nest_well_formed_across_both_engines() {
    let _guard = collector_guard();
    let collector = obs::install_new();

    let y = datasets::tweets::generate(400, 120, &mut Prng::seed_from_u64(9));
    let config = SpcaConfig::new(4).with_max_iters(2).with_partitions(4).with_seed(9);

    let spark_cluster = small_cluster();
    Spca::new(config.clone()).fit_spark(&spark_cluster, &y).expect("spark run");
    let mr_cluster = small_cluster();
    Spca::new(config).fit_mapreduce(&mr_cluster, &y).expect("mapreduce run");

    let collector = obs::uninstall().unwrap_or(collector);
    let events = collector.events();
    assert!(!events.is_empty(), "tracing produced no events");
    assert_eq!(collector.nesting_violations(), 0);
    let violations = obs::validate_nesting(&events);
    assert!(violations.is_empty(), "nesting violations: {violations:?}");

    // Both engines appear as distinct virtual processes, and the export
    // is valid Chrome-trace JSON.
    let json = obs::export::export_collector(&collector);
    obs::json::validate(&json).expect("chrome trace export must be valid JSON");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("sPCA-Spark"), "spark cluster process label missing");
    assert!(json.contains("sPCA-MR"), "mapreduce cluster process label missing");
    assert_byte_invariant(&spark_cluster, "spark after traced run");
    assert_byte_invariant(&mr_cluster, "mapreduce after traced run");
}

#[test]
fn tracing_disabled_is_inert_and_runs_unchanged() {
    let _guard = collector_guard();
    assert!(obs::uninstall().is_none() || !obs::enabled());

    let y = datasets::tweets::generate(300, 100, &mut Prng::seed_from_u64(3));
    let config = SpcaConfig::new(3).with_max_iters(2).with_partitions(4).with_seed(3);
    let cluster = small_cluster();
    let run = Spca::new(config).fit_spark(&cluster, &y).expect("untraced run");
    assert_eq!(run.iterations.len(), 2);
    assert!(!obs::enabled(), "run must not have installed a collector");
    assert_byte_invariant(&cluster, "untraced run");
}

/// Regression for the wire-codec rollout: every metered path now charges
/// real encoded lengths, and none of them may double-charge by mixing a
/// `ByteSized` estimate with an encoded size for the same traffic. The
/// ledger invariant `intermediate == network + dfs_written` must hold for
/// full fits under *both* sizing policies, on both engines, and under
/// fault-driven re-execution (whose re-read charging derives from the
/// same sized inputs as the original attempt).
#[test]
fn byte_invariant_holds_under_both_sizing_policies_and_faults() {
    let y = datasets::tweets::generate(400, 120, &mut Prng::seed_from_u64(7));
    let config = SpcaConfig::new(3).with_max_iters(2).with_partitions(4).with_seed(7);

    let cluster_with = |estimated: bool| {
        let cfg = ClusterConfig::paper_cluster().with_nodes(4).with_cores_per_node(2);
        let cfg = if estimated { cfg.with_estimated_sizes() } else { cfg };
        SimCluster::new(cfg)
    };

    for estimated in [false, true] {
        let label = if estimated { "estimated" } else { "encoded" };

        let spark = cluster_with(estimated);
        Spca::new(config.clone()).fit_spark(&spark, &y).expect("spark fit");
        assert_byte_invariant(&spark, &format!("spark fit ({label})"));

        let mr = cluster_with(estimated);
        Spca::new(config.clone()).fit_mapreduce(&mr, &y).expect("mapreduce fit");
        assert_byte_invariant(&mr, &format!("mapreduce fit ({label})"));

        // Compose with crashes: re-executed tasks re-read their split at
        // the same sized bytes; re-replication charges network + disk in
        // lockstep, so the ledger must still balance.
        let faulty = cluster_with(estimated);
        let spec = dcluster::FaultSpec::new(0xb0u64).with_speculation(true);
        let plan = dcluster::FaultPlan::new().with_crash(1, 2).with_crash(3, 4);
        faulty.install_fault_plan(spec, plan).unwrap();
        Spca::new(config.clone()).fit_spark(&faulty, &y).expect("faulty fit");
        assert_byte_invariant(&faulty, &format!("spark fit under faults ({label})"));
        assert!(
            !faulty.recovery_log().is_empty(),
            "the fault plan must actually have fired for this regression to bite"
        );
    }

    // The two policies must disagree on totals (the codec really engaged)
    // while each keeps its own ledger balanced.
    let enc = cluster_with(false);
    let est = cluster_with(true);
    Spca::new(config.clone()).fit_spark(&enc, &y).unwrap();
    Spca::new(config).fit_spark(&est, &y).unwrap();
    assert!(
        enc.metrics().intermediate_bytes < est.metrics().intermediate_bytes,
        "encoded traffic ({}) must undercut the flat estimate ({})",
        enc.metrics().intermediate_bytes,
        est.metrics().intermediate_bytes
    );
}

#[test]
fn backwards_clock_is_dropped_and_counted() {
    let cluster = small_cluster();
    cluster.advance_time(2.0);
    cluster.advance_time(-5.0);
    cluster.advance_time(f64::NAN);
    cluster.advance_time(1.0);
    let m = cluster.metrics();
    assert_eq!(m.clock_violations, 2);
    assert!((m.virtual_time_secs - 3.0).abs() < 1e-12, "time corrupted: {}", m.virtual_time_secs);
}
