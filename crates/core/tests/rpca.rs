//! Cross-algorithm conformance battery for the randomized-PCA arm.
//!
//! The randomized family is held to a *harder* reproducibility bar than
//! EM: EM's two engines agree only to round-off (their reduction trees
//! differ), but a randomized fit must produce the **same model hash**
//! across host worker counts, engines, timing models and fault plans —
//! because every cross-partition fold happens on the driver in partition
//! order. Pinned here:
//!
//! 1. **Conformance matrix** — 1/2/8 host workers × {Spark, MapReduce} ×
//!    {Uncontended, Contended}: one model hash for all twelve runs.
//! 2. **Accuracy vs exact PCA** — on a seeded planted-spectrum input the
//!    recovered subspace overlaps the exact top-d PCA subspace to ≥ 0.999
//!    (clean spectrum, q = 2) and ≥ 0.9 (noisy spectrum, q = 3); overlap
//!    is the smallest principal-angle cosine (`subspace_overlap`).
//! 3. **Fault composition** — chaos fault plans and a mid-pass driver
//!    crash with checkpoint resume are bitwise transparent (the
//!    `faults.rs` invariant, replayed for the fat-pass loop).
//! 4. **Knob validation** — each nonsensical randomized configuration is
//!    rejected with `SpcaError::InvalidConfig` before any cluster work.

use std::sync::Arc;

use dcluster::{ClusterConfig, FaultPlan, FaultSpec, SimCluster, TimingModel};
use linalg::decomp::{subspace_overlap, svd_jacobi};
use linalg::{Mat, Prng, SparseMat, WorkerPool};
use spca_core::checkpoint::{CHECKPOINT_FILE, RPCA_CHECKPOINT_FILE};
use spca_core::{Algorithm, Spca, SpcaConfig, SpcaError, SpcaRun};

fn test_matrix(seed: u64) -> SparseMat {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = datasets::LowRankSpec::small_test();
    datasets::sparse_lowrank(&spec, &mut rng)
}

fn rpca_config() -> SpcaConfig {
    SpcaConfig::new(3)
        .with_algorithm(Algorithm::Randomized)
        .with_rpca_oversample(5)
        .with_rpca_power_iters(2)
        .with_rel_tolerance(None)
}

fn model_bits(run: &SpcaRun) -> (Vec<u64>, Vec<u64>, u64) {
    (
        run.model.components().data().iter().map(|v| v.to_bits()).collect(),
        run.model.mean().iter().map(|v| v.to_bits()).collect(),
        run.model.noise_variance().to_bits(),
    )
}

/// The chaos plan of `faults.rs`: ≥ 2 node crashes mid-run plus stragglers
/// with speculation on every stage.
fn chaos_spec_and_plan() -> (FaultSpec, FaultPlan) {
    let spec = FaultSpec::new(0xfau64)
        .with_straggler_rate(0.2)
        .with_straggler_slowdown(5.0)
        .with_speculation(true);
    let plan = FaultPlan::new().with_crash(1, 2).with_crash(5, 3).with_crash(3, 5);
    (spec, plan)
}

// ---------------------------------------------------------------------------
// 1. Conformance matrix
// ---------------------------------------------------------------------------

#[test]
fn model_hash_identical_across_workers_engines_and_timing_models() {
    let y = test_matrix(31);
    let fit = |workers: usize, spark: bool, timing: TimingModel| {
        let cl = SimCluster::new_with_pool(
            ClusterConfig::scaled_cluster().with_timing(timing),
            Arc::new(WorkerPool::new(workers)),
        );
        let spca = Spca::new(rpca_config());
        let run = if spark { spca.fit_spark(&cl, &y) } else { spca.fit_mapreduce(&cl, &y) };
        run.unwrap().model.content_hash()
    };

    let reference = fit(1, true, TimingModel::Uncontended);
    for &workers in &[1usize, 2, 8] {
        for &spark in &[true, false] {
            for &timing in &[TimingModel::Uncontended, TimingModel::Contended] {
                let hash = fit(workers, spark, timing);
                assert_eq!(
                    hash, reference,
                    "model hash diverged at workers={workers} spark={spark} timing={timing:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Accuracy vs exact PCA
// ---------------------------------------------------------------------------

/// A dense planted-spectrum matrix `U diag(s) Vᵀ + σ·noise` as a SparseMat
/// (the randomized analysis regime: controlled singular-value gaps).
fn planted(rows: usize, cols: usize, s: &[f64], sigma: f64, seed: u64) -> SparseMat {
    let mut rng = Prng::seed_from_u64(seed);
    let u = linalg::decomp::orthonormal_columns(&rng.normal_mat(rows, s.len()));
    let v = linalg::decomp::orthonormal_columns(&rng.normal_mat(cols, s.len()));
    let mut dense = Mat::zeros(rows, cols);
    for (i, &sv) in s.iter().enumerate() {
        let ui = u.col(i);
        let vi = v.col(i);
        dense.add_outer(sv, &ui, &vi);
    }
    let mut triplets = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let noise = sigma * rng.normal();
            let val = dense[(r, c)] + noise;
            if val != 0.0 {
                triplets.push((r, c as u32, val));
            }
        }
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

/// The exact top-d PCA basis: left-centered SVD of the dense input.
fn exact_pca_basis(y: &SparseMat, d: usize) -> Mat {
    let mut yc = y.to_dense();
    yc.sub_row_vector(&y.col_means());
    let svd = svd_jacobi(&yc).expect("exact SVD converges");
    // Principal directions live in column space: rows of Vᵀ, transposed.
    svd.vt.row_block(0, d).transpose()
}

#[test]
fn subspace_matches_exact_pca_on_clean_spectrum() {
    // Documented tolerance: clean spectrum (σ_noise = 0.01, gaps ≥ 1.5x),
    // q = 2 power passes → overlap ≥ 0.999 with exact PCA.
    let d = 4;
    let y = planted(150, 40, &[10.0, 7.0, 4.5, 3.0], 0.01, 41);
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = rpca_config();
    let run = Spca::new(SpcaConfig { components: d, ..config }).fit_spark(&cluster, &y).unwrap();
    let exact = exact_pca_basis(&y, d);
    let overlap = subspace_overlap(run.model.components(), &exact).unwrap();
    assert!(overlap >= 0.999, "clean-spectrum overlap {overlap} < 0.999");
}

#[test]
fn subspace_matches_exact_pca_on_noisy_spectrum_with_power_passes() {
    // Documented tolerance: noisy spectrum (σ_noise = 0.5 against top
    // singular values ~10) needs power passes; q = 3 → overlap ≥ 0.9.
    let d = 3;
    let y = planted(200, 50, &[12.0, 9.0, 6.0], 0.5, 43);
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = rpca_config()
        .with_rpca_power_iters(3)
        .with_rpca_noisy_spectrum(true);
    let run = Spca::new(SpcaConfig { components: d, ..config }).fit_spark(&cluster, &y).unwrap();
    let exact = exact_pca_basis(&y, d);
    let overlap = subspace_overlap(run.model.components(), &exact).unwrap();
    assert!(overlap >= 0.9, "noisy-spectrum overlap {overlap} < 0.9");
}

#[test]
fn power_passes_improve_sampled_error_on_noisy_input() {
    // The fat-pass tradeoff in one assertion: more passes, better error.
    let y = planted(200, 50, &[12.0, 9.0, 6.0], 0.5, 47);
    let cluster_a = SimCluster::new(ClusterConfig::paper_cluster());
    let one = Spca::new(rpca_config().with_rpca_power_iters(0))
        .fit_spark(&cluster_a, &y)
        .unwrap();
    let cluster_b = SimCluster::new(ClusterConfig::paper_cluster());
    let four = Spca::new(rpca_config().with_rpca_power_iters(3))
        .fit_spark(&cluster_b, &y)
        .unwrap();
    assert!(
        four.final_error() <= one.final_error() + 1e-12,
        "power passes must not hurt: 1-pass {} vs 4-pass {}",
        one.final_error(),
        four.final_error()
    );
}

// ---------------------------------------------------------------------------
// 3. Fault composition
// ---------------------------------------------------------------------------

#[test]
fn spark_randomized_fit_under_chaos_is_bitwise_identical_to_fault_free() {
    let y = test_matrix(32);
    let clean =
        Spca::new(rpca_config()).fit_spark(&SimCluster::new(ClusterConfig::paper_cluster()), &y);
    let clean = clean.unwrap();

    let faulty_cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let (spec, plan) = chaos_spec_and_plan();
    faulty_cluster.install_fault_plan(spec, plan).unwrap();
    let faulty = Spca::new(rpca_config()).fit_spark(&faulty_cluster, &y).unwrap();

    assert_eq!(model_bits(&clean), model_bits(&faulty), "chaos changed the randomized model");
    assert!(faulty.virtual_time_secs > clean.virtual_time_secs, "recovery must cost time");
}

#[test]
fn mapreduce_randomized_fit_under_chaos_is_bitwise_identical_to_fault_free() {
    let y = test_matrix(33);
    let clean = Spca::new(rpca_config())
        .fit_mapreduce(&SimCluster::new(ClusterConfig::paper_cluster()), &y)
        .unwrap();

    let faulty_cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let (spec, plan) = chaos_spec_and_plan();
    faulty_cluster.install_fault_plan(spec, plan).unwrap();
    let faulty = Spca::new(rpca_config()).fit_mapreduce(&faulty_cluster, &y).unwrap();

    assert_eq!(model_bits(&clean), model_bits(&faulty));
}

#[test]
fn mid_pass_crash_with_checkpoint_resume_is_bitwise_identical() {
    // Chaos + driver crash after pass 2 + resume, vs an untouched run.
    let y = test_matrix(34);
    let config = rpca_config().with_rpca_power_iters(3).with_checkpoint_every(1);

    let clean = Spca::new(config.clone())
        .fit_spark(&SimCluster::new(ClusterConfig::paper_cluster()), &y)
        .unwrap();

    let c = SimCluster::new(ClusterConfig::paper_cluster());
    let (spec, plan) = chaos_spec_and_plan();
    c.install_fault_plan(spec, plan).unwrap();
    match Spca::new(config.clone().with_crash_at_iteration(2)).fit_spark(&c, &y) {
        Err(SpcaError::DriverCrashed { iteration: 2 }) => {}
        other => panic!("expected a driver crash at pass 2, got {other:?}"),
    }
    assert!(
        c.dfs().stat(RPCA_CHECKPOINT_FILE).is_some(),
        "the crash must leave an rpca checkpoint on the DFS"
    );
    assert!(
        c.dfs().stat(CHECKPOINT_FILE).is_none(),
        "the randomized arm must never touch the EM checkpoint name"
    );

    let resumed = Spca::new(config).fit_spark(&c, &y).unwrap();
    assert_eq!(model_bits(&clean), model_bits(&resumed), "resume diverged from clean run");
    assert!(
        resumed.iterations.first().map(|it| it.iteration) >= Some(3),
        "the resumed run must not redo checkpointed passes"
    );
    assert!(
        c.dfs().stat(RPCA_CHECKPOINT_FILE).is_none(),
        "a completed run removes its checkpoint"
    );
}

#[test]
fn mapreduce_crash_resume_is_bitwise_identical_too() {
    let y = test_matrix(35);
    let config = rpca_config().with_rpca_power_iters(2).with_checkpoint_every(1);
    let clean = Spca::new(config.clone())
        .fit_mapreduce(&SimCluster::new(ClusterConfig::paper_cluster()), &y)
        .unwrap();

    let c = SimCluster::new(ClusterConfig::paper_cluster());
    assert!(matches!(
        Spca::new(config.clone().with_crash_at_iteration(1)).fit_mapreduce(&c, &y),
        Err(SpcaError::DriverCrashed { iteration: 1 })
    ));
    let resumed = Spca::new(config).fit_mapreduce(&c, &y).unwrap();
    assert_eq!(model_bits(&clean), model_bits(&resumed));
}

// ---------------------------------------------------------------------------
// 4. Knob validation
// ---------------------------------------------------------------------------

fn expect_invalid(result: spca_core::Result<SpcaRun>, needle: &str) {
    match result {
        Err(SpcaError::InvalidConfig { what }) => {
            assert!(what.contains(needle), "message {what:?} missing {needle:?}")
        }
        other => panic!("expected InvalidConfig({needle}), got {other:?}"),
    }
}

#[test]
fn zero_oversampling_is_rejected() {
    let y = test_matrix(36);
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = rpca_config().with_rpca_oversample(0);
    assert!(matches!(config.validate(y.cols()), Err(SpcaError::InvalidConfig { .. })));
    expect_invalid(Spca::new(config).fit_spark(&cluster, &y), "oversampling");
}

#[test]
fn zero_power_iterations_with_noisy_spectrum_is_rejected() {
    let y = test_matrix(37);
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = rpca_config().with_rpca_power_iters(0).with_rpca_noisy_spectrum(true);
    assert!(matches!(config.validate(y.cols()), Err(SpcaError::InvalidConfig { .. })));
    expect_invalid(Spca::new(config).fit_mapreduce(&cluster, &y), "noisy");
}

#[test]
fn sketch_wider_than_input_is_rejected() {
    let y = test_matrix(38); // 100 columns
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = rpca_config().with_rpca_oversample(98); // 3 + 98 > 100
    assert!(matches!(config.validate(y.cols()), Err(SpcaError::InvalidConfig { .. })));
    expect_invalid(Spca::new(config).fit_spark(&cluster, &y), "sketch width");
}
