//! MLlib-PCA: covariance matrix + driver-side eigendecomposition, on the
//! Spark-like engine.
//!
//! The method Section 2.1 analyzes: build the D×D Gram/covariance matrix
//! by aggregating per-partition partials to the driver, then
//! eigendecompose it *on the driver*. Deterministic — no iterations — and
//! fast when D is small (it wins on the 128-dimensional Images dataset in
//! Table 2), but:
//!
//! * every aggregation partial is a dense D×D matrix (O(D²)
//!   communication, Table 1), and
//! * the driver must hold the D×D matrix in one process's memory, which is
//!   why MLlib-PCA "fails when D exceeds 6,000" on the paper's 32 GB
//!   machines (Figures 7–8). The failure is reproduced through the
//!   simulated driver-memory cap and surfaces as
//!   [`SpcaError::Cluster`]`(`[`dcluster::ClusterError::DriverOom`]`)`.

use dcluster::SimCluster;
use linalg::bytes::ByteSized;
use linalg::decomp::eig::sym_eigen;
use linalg::wire::{Wire, WireError, WireReader};
use linalg::{Mat, SparseMat};
use sparkle::SparkleContext;
use spca_core::accuracy;
use spca_core::model::{IterationStat, PcaModel, SpcaRun};
use spca_core::SpcaError;

/// Configuration of the MLlib-PCA baseline.
#[derive(Debug, Clone)]
pub struct MllibConfig {
    /// Principal components to produce.
    pub components: usize,
    /// Rows sampled for the (instrumentation-only) error estimate.
    pub error_sample_rows: usize,
    /// Seed for the error sample.
    pub seed: u64,
    /// Number of input partitions. MLlib's tree-aggregation fan-in is
    /// modelled by a modest partial count (default 8): more partials means
    /// proportionally more O(D²) traffic.
    pub partitions: usize,
}

impl MllibConfig {
    /// Defaults: 8 aggregation partials, 256-row error sample.
    pub fn new(components: usize) -> Self {
        MllibConfig { components, error_sample_rows: 256, seed: 0x111b, partitions: 8 }
    }

    /// Sets the partition/partial count.
    pub fn with_partitions(mut self, parts: usize) -> Self {
        assert!(parts > 0);
        self.partitions = parts;
        self
    }
}

/// Gram-matrix accumulator: a dense D×D partial per task.
struct GramAcc(Mat);

impl ByteSized for GramAcc {
    fn size_bytes(&self) -> u64 {
        ByteSized::size_bytes(&self.0)
    }
}

impl Wire for GramAcc {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn encoded_size(&self) -> u64 {
        self.0.encoded_size()
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(GramAcc(Mat::decode_from(r)?))
    }
}

/// The MLlib-PCA baseline algorithm.
#[derive(Debug, Clone)]
pub struct MllibPca {
    config: MllibConfig,
}

impl MllibPca {
    /// Creates the baseline with the given configuration.
    pub fn new(config: MllibConfig) -> Self {
        MllibPca { config }
    }

    /// Runs covariance-PCA on the Spark-like engine. Fails with
    /// `DriverOom` when the D×D covariance does not fit in driver memory.
    pub fn fit(&self, cluster: &SimCluster, y: &SparseMat) -> spca_core::Result<SpcaRun> {
        let cfg = &self.config;
        let n = y.rows();
        let d_in = y.cols();
        if n == 0 || d_in == 0 {
            return Err(SpcaError::EmptyInput);
        }
        if cfg.components > n.min(d_in) {
            return Err(SpcaError::TooManyComponents {
                requested: cfg.components,
                available: n.min(d_in),
            });
        }

        let start = cluster.metrics().virtual_time_secs;
        let start_bytes = cluster.metrics().intermediate_bytes;

        // The defining resource demand: the driver holds the dense D×D
        // covariance (plus the eigenvector matrix of the same size). If
        // this does not fit, MLlib dies before doing any distributed work
        // worth charging — exactly the observed behaviour.
        let cov_bytes = (d_in as u64) * (d_in as u64) * 8;
        let _guard = cluster.alloc_driver(2 * cov_bytes)?;

        let ctx = SparkleContext::new(cluster);
        let partitions = cfg.partitions.min(n.max(1));
        let blocks: Vec<Vec<spca_core::spark::SpRow>> =
            y.split_rows(partitions).iter().map(spca_core::spark::to_rows).collect();
        let mut rdd = ctx.from_partitions(blocks);
        rdd.persist();

        // Column means (cheap aggregate).
        let (mean, _) = rdd.aggregate(
            "MLlib/colMeans",
            || vec![0.0_f64; d_in],
            |acc, row| {
                for (c, v) in row.view().iter() {
                    acc[c] += v;
                }
            },
            |acc, other| linalg::vector::axpy(1.0, &other, acc),
        );
        let mean: Vec<f64> = mean.into_iter().map(|s| s / n as f64).collect();

        // Gram matrix: per-task dense D×D partials, aggregated to the
        // driver. Sparse rows only touch O(z²) entries per row, but the
        // *partial* that ships is dense D×D — the communication pathology.
        let (gram, _bytes) = rdd.aggregate(
            "MLlib/gram",
            || GramAcc(Mat::zeros(d_in, d_in)),
            |acc, row| {
                let v = row.view();
                for (ci, vi) in v.iter() {
                    let target = acc.0.row_mut(ci);
                    for (cj, vj) in v.iter() {
                        target[cj] += vi * vj;
                    }
                }
            },
            |acc, other| acc.0.add_assign(&other.0),
        );

        // Covariance = (Gram − N·μ⊗μ)/(N−1), then eigendecomposition — all
        // on the driver, charged as driver compute.
        let c = cluster.run_driver("MLlib/eigendecomposition", || {
            let mut cov = gram.0;
            cov.add_outer(-(n as f64), &mean, &mean);
            let denom = (n.max(2) - 1) as f64;
            cov.scale(1.0 / denom);
            let eig = sym_eigen(&cov)?;
            let mut c = Mat::zeros(d_in, cfg.components);
            for j in 0..cfg.components {
                for r in 0..d_in {
                    c[(r, j)] = eig.vectors[(r, j)];
                }
            }
            Ok::<Mat, SpcaError>(c)
        })?;

        let model = PcaModel::new(c, mean, 1e-9);
        let error_sample = accuracy::sample_rows(y, cfg.error_sample_rows, cfg.seed);
        let error = accuracy::reconstruction_error(&error_sample, &model)?;

        let end = cluster.metrics();
        let elapsed = end.virtual_time_secs - start;
        Ok(SpcaRun {
            model,
            iterations: vec![IterationStat {
                iteration: 1,
                error,
                ss: 0.0,
                virtual_time_secs: elapsed,
            }],
            virtual_time_secs: elapsed,
            intermediate_bytes: end.intermediate_bytes - start_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;
    use linalg::Prng;

    fn tiny_data() -> SparseMat {
        let mut rng = Prng::seed_from_u64(9);
        datasets::sparse_lowrank(&datasets::LowRankSpec::small_test(), &mut rng)
    }

    #[test]
    fn matches_exact_eigenvectors() {
        let y = tiny_data();
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let run = MllibPca::new(MllibConfig::new(3)).fit(&cluster, &y).unwrap();

        // Oracle: eigenvectors of the explicitly centered covariance.
        let mut yc = y.to_dense();
        yc.sub_row_vector(&y.col_means());
        let cov = {
            let mut g = yc.matmul_tn(&yc);
            g.scale(1.0 / (y.rows() - 1) as f64);
            g
        };
        let eig = sym_eigen(&cov).unwrap();
        for j in 0..3 {
            let got = run.model.components().col(j);
            let want = eig.vectors.col(j);
            let cos = linalg::vector::dot(&got, &want).abs();
            assert!(cos > 0.999, "eigenvector {j} cosine {cos}");
        }
    }

    #[test]
    fn driver_oom_past_memory_cap() {
        // D = 1000 → 2·8 MB driver demand; cap the driver below that.
        let y = SparseMat::from_triplets(10, 1000, &[(0, 0, 1.0), (1, 999, 1.0)]);
        let cluster = SimCluster::new(
            ClusterConfig::paper_cluster().with_driver_memory(4 << 20),
        );
        match MllibPca::new(MllibConfig::new(2)).fit(&cluster, &y) {
            Err(SpcaError::Cluster(dcluster::ClusterError::DriverOom { .. })) => {}
            other => panic!("expected DriverOom, got {other:?}"),
        }
    }

    #[test]
    fn quadratic_intermediate_data_in_dimensionality() {
        let run_bytes = |cols: usize| {
            let mut rng = Prng::seed_from_u64(10);
            let spec = datasets::LowRankSpec {
                rows: 100,
                cols,
                ..datasets::LowRankSpec::small_test()
            };
            let y = datasets::sparse_lowrank(&spec, &mut rng);
            let cluster = SimCluster::new(ClusterConfig::paper_cluster());
            MllibPca::new(MllibConfig::new(2)).fit(&cluster, &y).unwrap().intermediate_bytes
        };
        let b100 = run_bytes(100);
        let b400 = run_bytes(400);
        let ratio = b400 as f64 / b100 as f64;
        assert!(ratio > 10.0, "Gram traffic must grow ~quadratically, got ×{ratio}");
    }

    #[test]
    fn driver_peak_reflects_covariance() {
        let y = tiny_data(); // D = 100 → ≥ 160 kB tracked
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let _ = MllibPca::new(MllibConfig::new(2)).fit(&cluster, &y).unwrap();
        assert!(cluster.metrics().driver_peak_bytes >= 2 * 100 * 100 * 8);
    }

    #[test]
    fn single_deterministic_iteration() {
        let y = tiny_data();
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let a = MllibPca::new(MllibConfig::new(2)).fit(&cluster, &y).unwrap();
        let b = MllibPca::new(MllibConfig::new(2)).fit(&cluster, &y).unwrap();
        assert_eq!(a.iterations.len(), 1);
        assert!(a.model.components().approx_eq(b.model.components(), 1e-12));
    }
}
