//! SVD-Bidiag PCA (the RScaLAPACK method of Section 2.2).
//!
//! Demmel–Kahan-style pipeline: QR decomposition first, then
//! bidiagonalization of R, then SVD of the bidiagonal core. O(N·D² + D³)
//! time and O(max((N+D)d, D²)) communication — the analysis rows of
//! Table 1. The implementation is centralized and dense (the method has no
//! sparse story: it mean-centers explicitly), which is exactly why the
//! paper rules it out for large D.

use linalg::decomp::bidiag::svd_via_bidiag;
use linalg::decomp::qr::qr_thin;
use linalg::{Mat, SparseMat};
use spca_core::model::PcaModel;
use spca_core::SpcaError;

/// PCA of a dense matrix via QR + bidiagonal SVD.
pub fn fit_dense(y: &Mat, d: usize) -> spca_core::Result<PcaModel> {
    let n = y.rows();
    let d_in = y.cols();
    if n == 0 || d_in == 0 {
        return Err(SpcaError::EmptyInput);
    }
    if d > n.min(d_in) {
        return Err(SpcaError::TooManyComponents { requested: d, available: n.min(d_in) });
    }

    // Explicit mean-centering: this method densifies by construction.
    let mean = y.col_means();
    let mut yc = y.clone();
    yc.sub_row_vector(&mean);

    // Step (i): QR. The R factor (min(N,D) × D) carries all the spectral
    // information of Yc.
    let r = qr_thin(&yc).r;
    // Steps (ii)+(iii): bidiagonalize R and diagonalize the core.
    let svd = svd_via_bidiag(&r)?;

    let mut c = Mat::zeros(d_in, d);
    for j in 0..d {
        for row in 0..d_in {
            c[(row, j)] = svd.vt[(j, row)];
        }
    }
    Ok(PcaModel::new(c, mean, 1e-9))
}

/// Convenience wrapper for sparse inputs: densifies first (the method's
/// inherent cost), then runs [`fit_dense`].
pub fn fit_sparse(y: &SparseMat, d: usize) -> spca_core::Result<PcaModel> {
    fit_dense(&y.to_dense(), d)
}

/// Table 1's communication bound for this method, in bytes:
/// `O(max((N + D)·d, D²))` 8-byte elements.
pub fn intermediate_bytes_estimate(n: usize, d_in: usize, d: usize) -> u64 {
    let qr_term = (n + d_in) * d;
    let bidiag_term = d_in * d_in;
    8 * qr_term.max(bidiag_term) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::decomp::{qr_thin, svd_jacobi};
    use linalg::Prng;

    #[test]
    fn matches_direct_svd_components() {
        let mut rng = Prng::seed_from_u64(12);
        let y = rng.normal_mat(40, 10);
        let model = fit_dense(&y, 3).unwrap();

        let mut yc = y.clone();
        yc.sub_row_vector(&y.col_means());
        let svd = svd_jacobi(&yc).unwrap();
        for j in 0..3 {
            let got = model.components().col(j);
            let want: Vec<f64> = (0..10).map(|r| svd.vt[(j, r)]).collect();
            let cos = linalg::vector::dot(&got, &want).abs();
            assert!(cos > 0.999, "component {j} cosine {cos}");
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = Prng::seed_from_u64(13);
        let y = rng.normal_mat(25, 8);
        let model = fit_dense(&y, 4).unwrap();
        let q = model.components();
        let qtq = q.matmul_tn(q);
        assert!(qtq.approx_eq(&Mat::identity(4), 1e-8));
        // (They come out of an SVD, so QR should not change the span.)
        let _ = qr_thin(q);
    }

    #[test]
    fn sparse_wrapper_agrees_with_dense() {
        let mut rng = Prng::seed_from_u64(14);
        let dense = Mat::from_fn(20, 6, |i, j| {
            if (i + j) % 3 == 0 {
                rng.normal()
            } else {
                0.0
            }
        });
        let sparse = SparseMat::from_dense(&dense);
        let a = fit_dense(&dense, 2).unwrap();
        let b = fit_sparse(&sparse, 2).unwrap();
        assert!(a.components().approx_eq(b.components(), 1e-10));
    }

    #[test]
    fn communication_estimate_crosses_over_at_large_d() {
        // For small D the (N+D)d term dominates; for large D the D² term.
        let small_d = intermediate_bytes_estimate(100_000, 100, 50);
        assert_eq!(small_d, 8 * (100_100 * 50) as u64);
        let large_d = intermediate_bytes_estimate(1000, 10_000, 50);
        assert_eq!(large_d, 8 * (10_000u64 * 10_000));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(fit_dense(&Mat::zeros(0, 3), 1), Err(SpcaError::EmptyInput)));
        assert!(matches!(
            fit_dense(&Mat::zeros(4, 3), 5),
            Err(SpcaError::TooManyComponents { .. })
        ));
    }
}
