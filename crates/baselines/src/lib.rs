//! Baseline PCA algorithms the paper compares against (Sections 2 and 5).
//!
//! | Module | Paper name | Platform | Communication profile |
//! |---|---|---|---|
//! | [`mahout_ssvd`] | Mahout-PCA (stochastic SVD with the PCA option) | MapReduce | O(N·k) intermediate `Q`, per-row dense mapper emissions in the Bt job — the 961 GB pathology |
//! | [`mllib_pca`] | MLlib-PCA (Gram matrix + eigendecomposition) | Spark | O(D²) partials to a single driver; fails past the driver memory cap |
//! | [`svd_bidiag`] | SVD-Bidiag (RScaLAPACK) | centralized | O(max((N+D)d, D²)) |
//! | [`svd_lanczos`] | SVD-Lanczos | centralized/sparse | efficient only without mean-centering |
//!
//! All distributed baselines return the same [`spca_core::SpcaRun`] record
//! as sPCA so the bench harness can table them side by side.

pub mod mahout_ssvd;
pub mod mllib_pca;
pub mod svd_bidiag;
pub mod svd_lanczos;

pub use mahout_ssvd::{MahoutConfig, MahoutPca};
pub use mllib_pca::{MllibConfig, MllibPca};
