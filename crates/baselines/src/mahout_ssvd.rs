//! Mahout-PCA: stochastic SVD with the PCA (mean-propagation) option, on
//! MapReduce.
//!
//! Faithful to the structure the paper analyzes (Sections 2.3 and 5.2):
//!
//! 1. **Q job** — project `Yc·Ω` onto a random `D×K` matrix
//!    (`K = d + oversampling`), orthonormalize with TSQR. Mahout
//!    materializes both the projection and the N×K `Q` matrix in HDFS —
//!    the O(N·d) communication term of Table 1.
//! 2. **Bt job** — `B = Q'·Yc`. Mahout's mapper emits, *for every non-zero
//!    of every row*, a K-vector partial keyed by column: O(nnz·K) mapper
//!    output. This is the job whose mapper output explodes 654× on Tweets
//!    in the paper's analysis; the engine meters it exactly.
//! 3. **Power iterations** — optionally recompute the projection as
//!    `Yc·B'` and repeat; each round adds accuracy and repeats the
//!    expensive passes. This is Mahout-PCA's accuracy/time knob, the
//!    counterpart of sPCA's EM iterations in Figures 4–6.
//! 4. A small K×K eigendecomposition of `B·B'` on the driver finishes the
//!    SVD; the top-d right singular vectors are the principal components.
//!
//! The PCA option keeps `Y` sparse and propagates the mean:
//! `Yc·Ω = Y·Ω − 1⊗(Ym·Ω)` and `Q'·Yc = Q'·Y − (Q'·1)⊗Ym`.

use dcluster::{SimCluster, StageOptions};
use linalg::bytes::ByteSized;
use linalg::decomp::eig::sym_eigen;
use linalg::decomp::tsqr::tsqr;
use linalg::wire::{self, Wire, WireError, WireReader};
use linalg::{Mat, Prng, SparseMat};
use mapreduce::{Emitter, MapReduceEngine, MapReduceJob};
use spca_core::accuracy;
use spca_core::model::{IterationStat, PcaModel, SpcaRun};
use spca_core::SpcaError;

/// Configuration of the Mahout-PCA baseline.
#[derive(Debug, Clone)]
pub struct MahoutConfig {
    /// Principal components to produce.
    pub components: usize,
    /// Oversampling added to the projection width (Mahout's `p`, def. 15).
    pub oversample: usize,
    /// Maximum power-iteration rounds (≥ 1; round 1 is the base SSVD).
    pub max_iters: usize,
    /// RNG seed for Ω and the error sample.
    pub seed: u64,
    /// Stop early once the sampled error reaches this value.
    pub target_error: Option<f64>,
    /// Rows sampled for error estimation.
    pub error_sample_rows: usize,
    /// Number of input partitions (`None`: one per virtual core).
    pub partitions: Option<usize>,
}

impl MahoutConfig {
    /// Defaults matching the paper's setup (d components, p = 15).
    pub fn new(components: usize) -> Self {
        MahoutConfig {
            components,
            oversample: 15,
            max_iters: 3,
            seed: 0x55d,
            target_error: None,
            error_sample_rows: 256,
            partitions: None,
        }
    }

    /// Sets the power-iteration budget.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        assert!(iters >= 1, "need at least one SSVD round");
        self.max_iters = iters;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the early-stop target error.
    pub fn with_target_error(mut self, err: f64) -> Self {
        self.target_error = Some(err);
        self
    }

    /// Fixes the partition count.
    pub fn with_partitions(mut self, parts: usize) -> Self {
        assert!(parts > 0);
        self.partitions = Some(parts);
        self
    }
}

/// The Bt job: `B = Q'·Yc` with per-row, per-non-zero emissions.
struct BtJob {
    /// This mapper's Q block rows, parallel to the input block rows.
    k: usize,
}

/// Bt-job shuffle key: one per matrix column, plus the Q column-sum needed
/// by the PCA option's mean correction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum BtKey {
    /// `Σᵢ qᵢ` (for `(Q'·1)⊗Ym`).
    SumQ,
    /// Column `j` of the input: accumulates `Σᵢ y_ij·qᵢ`.
    Col(u32),
}

impl ByteSized for BtKey {
    fn size_bytes(&self) -> u64 {
        match self {
            BtKey::SumQ => 1,
            BtKey::Col(_) => 5,
        }
    }
}

impl Wire for BtKey {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            BtKey::SumQ => out.push(0),
            BtKey::Col(c) => {
                out.push(1);
                wire::write_uvarint(out, u64::from(*c));
            }
        }
    }

    fn encoded_size(&self) -> u64 {
        match self {
            BtKey::SumQ => 1,
            BtKey::Col(c) => 1 + wire::uvarint_len(u64::from(*c)),
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BtKey::SumQ),
            1 => Ok(BtKey::Col(u32::decode_from(r)?)),
            _ => Err(WireError::Malformed("unknown BtKey tag")),
        }
    }
}

impl MapReduceJob for BtJob {
    /// One partition: the sparse block and its Q rows.
    type Input = (SparseMat, Mat);
    type Key = BtKey;
    type Value = Vec<f64>;
    type Output = Vec<f64>;

    fn map(&self, (block, q): &(SparseMat, Mat), emitter: &mut Emitter<BtKey, Vec<f64>>) {
        assert_eq!(block.rows(), q.rows(), "Q block misaligned with input block");
        let mut sum_q = vec![0.0; self.k];
        for r in 0..block.rows() {
            let q_row = q.row(r);
            // Mahout's mapper: one K-vector emission per non-zero. This is
            // the intermediate-data pathology the paper measures — do NOT
            // accumulate in mapper memory here; Mahout didn't.
            for (c, v) in block.row(r).iter() {
                let mut contrib = q_row.to_vec();
                linalg::vector::scale(v, &mut contrib);
                emitter.emit(BtKey::Col(c as u32), contrib);
            }
            linalg::vector::axpy(1.0, q_row, &mut sum_q);
        }
        emitter.emit(BtKey::SumQ, sum_q);
    }

    fn combine(&self, _key: &BtKey, values: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        vec![sum_vectors(values)]
    }

    fn reduce(&self, _key: BtKey, values: Vec<Vec<f64>>) -> Vec<f64> {
        sum_vectors(values)
    }
}

fn sum_vectors(mut values: Vec<Vec<f64>>) -> Vec<f64> {
    let mut acc = values.pop().expect("at least one value per key");
    for v in values {
        linalg::vector::axpy(1.0, &v, &mut acc);
    }
    acc
}

/// The Mahout-PCA baseline algorithm.
#[derive(Debug, Clone)]
pub struct MahoutPca {
    config: MahoutConfig,
}

impl MahoutPca {
    /// Creates the baseline with the given configuration.
    pub fn new(config: MahoutConfig) -> Self {
        MahoutPca { config }
    }

    /// Runs SSVD-PCA on the MapReduce engine.
    pub fn fit(&self, cluster: &SimCluster, y: &SparseMat) -> spca_core::Result<SpcaRun> {
        let cfg = &self.config;
        let n = y.rows();
        let d_in = y.cols();
        if n == 0 || d_in == 0 {
            return Err(SpcaError::EmptyInput);
        }
        let k = (cfg.components + cfg.oversample).min(n.min(d_in));
        if cfg.components > n.min(d_in) {
            return Err(SpcaError::TooManyComponents {
                requested: cfg.components,
                available: n.min(d_in),
            });
        }

        let start = cluster.metrics().virtual_time_secs;
        let start_bytes = cluster.metrics().intermediate_bytes;
        let engine = MapReduceEngine::new(cluster);
        let partitions =
            cfg.partitions.unwrap_or_else(|| cluster.config().total_cores()).min(n.max(1));
        let blocks = y.split_rows(partitions);

        // Driver state: Ω (D×K) and later B (K×D). Unlike sPCA this driver
        // must also hold K·D, but that is still O(D·d) — Mahout's problem
        // is communication, not driver memory.
        let _guard = cluster.alloc_driver((2 * d_in * k * 8) as u64)?;

        let mut rng = Prng::seed_from_u64(cfg.seed);
        let omega = rng.normal_mat(d_in, k);
        let mean = cluster.run_driver("meanJob(driver)", || y.col_means());
        let error_sample = accuracy::sample_rows(y, cfg.error_sample_rows, cfg.seed);

        // Initial projection basis: Ω itself.
        let mut projector = omega; // D×K: proj = Yc·projector
        let mut iterations: Vec<IterationStat> = Vec::new();
        let mut model = PcaModel::new(Mat::zeros(d_in, cfg.components), mean.clone(), 1e-9);

        for round in 1..=cfg.max_iters {
            // ---- Q job: proj = Yc·projector = Y·projector − 1⊗(Ym·projector).
            cluster.advance_time(6.0); // Hadoop job init for the Q job
            // The D×K projector ships to every node via distributed cache.
            cluster.charge_broadcast(cluster.wire_size(&projector));
            let shift = projector.vecmat(&mean); // K
            let proj_blocks: Vec<Mat> = {
                let projector = &projector;
                let shift = &shift;
                let tasks: Vec<_> = blocks
                    .iter()
                    .map(move |b| {
                        move || {
                            let mut p = b.mul_dense(projector);
                            for r in 0..p.rows() {
                                linalg::vector::axpy(-1.0, shift, p.row_mut(r));
                            }
                            p
                        }
                    })
                    .collect();
                cluster.run_stage(
                    StageOptions::new(format!("Mahout/Qjob/{round}")).with_task_overhead(1.0),
                    tasks,
                )
            };
            // Mahout writes the projection, then Q, to HDFS; Bt re-reads Q.
            let proj_bytes: u64 =
                proj_blocks.iter().map(|b| cluster.wire_size(b)).sum();
            cluster.charge_dfs_write(proj_bytes);
            let tsqr_out = cluster.run_driver("Mahout/TSQR-final", || tsqr(&proj_blocks));
            cluster.charge_dfs_write(proj_bytes); // Q matrix
            cluster.charge_dfs_read(proj_bytes); // Bt mappers read Q

            // ---- Bt job: B = Q'·Yc.
            let bt_inputs: Vec<(SparseMat, Mat)> = blocks
                .iter()
                .cloned()
                .zip(tsqr_out.q_blocks.iter().cloned())
                .collect();
            let (bt_out, _stats) =
                engine.run_job(&format!("Mahout/Btjob/{round}"), &BtJob { k }, &bt_inputs, 8);

            // Assemble B (K×D) on the driver, applying the mean correction
            // B = Q'Y − (Q'1)⊗Ym.
            let mut b = Mat::zeros(k, d_in);
            let mut sum_q = vec![0.0; k];
            for (key, value) in bt_out {
                match key {
                    BtKey::SumQ => sum_q = value,
                    BtKey::Col(j) => {
                        for (row, &v) in value.iter().enumerate() {
                            b[(row, j as usize)] = v;
                        }
                    }
                }
            }
            for (i, &sq) in sum_q.iter().enumerate() {
                linalg::vector::axpy(-sq, &mean, b.row_mut(i));
            }

            // ---- Small driver-side SVD finish: eig of B·B' (K×K).
            let c = cluster.run_driver("Mahout/finishSVD", || {
                let bbt = b.matmul_nt(&b);
                let eig = sym_eigen(&bbt)?;
                // Right singular vectors of Yc ≈ rows of B mapped through
                // U_B: V = B'·U_B·Σ⁻¹; keep the top d columns.
                let mut c = Mat::zeros(d_in, cfg.components);
                for comp in 0..cfg.components {
                    let sigma = eig.values[comp].max(0.0).sqrt();
                    if sigma <= 1e-300 {
                        continue;
                    }
                    let u_col = eig.vectors.col(comp);
                    // column = B'·u / σ.
                    for (ki, &u) in u_col.iter().enumerate() {
                        if u != 0.0 {
                            for j in 0..d_in {
                                c[(j, comp)] += b[(ki, j)] * u;
                            }
                        }
                    }
                    for j in 0..d_in {
                        c[(j, comp)] /= sigma;
                    }
                }
                Ok::<Mat, SpcaError>(c)
            })?;

            // Mahout finishes each SSVD pass with separate U-job and V-job
            // MR passes that materialize the factors in HDFS.
            cluster.advance_time(2.0 * 6.0);
            cluster.charge_dfs_write(cluster.sizing().f64_payload(n * cfg.components)); // U
            cluster.charge_dfs_write(cluster.sizing().f64_payload(d_in * cfg.components)); // V
            model = PcaModel::new(c, mean.clone(), 1e-9);
            let error = accuracy::reconstruction_error(&error_sample, &model)?;
            iterations.push(IterationStat {
                iteration: round,
                error,
                ss: 0.0,
                virtual_time_secs: cluster.metrics().virtual_time_secs - start,
            });
            if let Some(target) = cfg.target_error {
                if error <= target {
                    break;
                }
            }

            // ---- Power iteration: next projector is B' (D×K).
            if round < cfg.max_iters {
                projector = b.transpose();
            }
        }

        let end = cluster.metrics();
        Ok(SpcaRun {
            model,
            iterations,
            virtual_time_secs: end.virtual_time_secs - start,
            intermediate_bytes: end.intermediate_bytes - start_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;

    fn tiny_data() -> SparseMat {
        let mut rng = Prng::seed_from_u64(8);
        datasets::sparse_lowrank(&datasets::LowRankSpec::small_test(), &mut rng)
    }

    #[test]
    fn fits_and_reports_iterations() {
        let y = tiny_data();
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let run = MahoutPca::new(MahoutConfig::new(4).with_max_iters(2))
            .fit(&cluster, &y)
            .unwrap();
        assert_eq!(run.model.output_dim(), 4);
        assert_eq!(run.iterations.len(), 2);
        assert!(run.intermediate_bytes > 0);
    }

    #[test]
    fn components_match_exact_svd_subspace() {
        // SSVD with oversampling on low-rank data recovers the principal
        // subspace accurately.
        let y = tiny_data();
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let run = MahoutPca::new(MahoutConfig::new(3).with_max_iters(3))
            .fit(&cluster, &y)
            .unwrap();

        let mut yc = y.to_dense();
        yc.sub_row_vector(&y.col_means());
        let svd = linalg::decomp::svd_jacobi(&yc).unwrap();
        // Compare subspaces via QR overlap.
        let qa = linalg::decomp::qr_thin(run.model.components()).q;
        let mut vt_top = Mat::zeros(y.cols(), 3);
        for j in 0..3 {
            for r in 0..y.cols() {
                vt_top[(r, j)] = svd.vt[(j, r)];
            }
        }
        let overlap = qa.matmul_tn(&vt_top);
        let s = linalg::decomp::svd_jacobi(&overlap).unwrap();
        assert!(s.s.last().unwrap() > &0.98, "subspace alignment {:?}", s.s);
    }

    #[test]
    fn bt_job_emissions_dwarf_spca() {
        // The headline intermediate-data claim: Mahout emits far more than
        // sPCA on the same data and cluster shape. sPCA's mapper output is
        // independent of N, Mahout's grows with nnz — so the gap needs a
        // tall matrix to show (and widens with scale, as in the paper).
        let mut rng = Prng::seed_from_u64(8);
        let spec = datasets::LowRankSpec {
            rows: 5000,
            cols: 150,
            ..datasets::LowRankSpec::small_test()
        };
        let y = datasets::sparse_lowrank(&spec, &mut rng);
        let c1 = SimCluster::new(ClusterConfig::paper_cluster());
        let mahout = MahoutPca::new(MahoutConfig::new(4).with_max_iters(1))
            .fit(&c1, &y)
            .unwrap();
        let c2 = SimCluster::new(ClusterConfig::paper_cluster());
        let spca = spca_core::Spca::new(
            spca_core::SpcaConfig::new(4).with_max_iters(1).with_rel_tolerance(None),
        )
        .fit_mapreduce(&c2, &y)
        .unwrap();
        assert!(
            mahout.intermediate_bytes > 3 * spca.intermediate_bytes,
            "mahout {} vs spca {}",
            mahout.intermediate_bytes,
            spca.intermediate_bytes
        );
    }

    #[test]
    fn power_iterations_do_not_hurt_accuracy() {
        let y = tiny_data();
        let run = |iters| {
            let cluster = SimCluster::new(ClusterConfig::paper_cluster());
            MahoutPca::new(MahoutConfig::new(3).with_max_iters(iters))
                .fit(&cluster, &y)
                .unwrap()
                .final_error()
        };
        let e1 = run(1);
        let e3 = run(3);
        assert!(e3 <= e1 * 1.05, "power iterations regressed error: {e1} → {e3}");
    }

    #[test]
    fn rejects_empty_input() {
        let y = SparseMat::from_rows(0, 5, vec![]);
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        assert!(matches!(
            MahoutPca::new(MahoutConfig::new(2)).fit(&cluster, &y),
            Err(SpcaError::EmptyInput)
        ));
    }
}
