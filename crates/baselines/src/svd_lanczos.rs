//! SVD-Lanczos PCA (Section 2.2's sparse SVD method).
//!
//! Lanczos bidiagonalization only touches the matrix through
//! matrix–vector products, so on a *sparse* matrix it runs in
//! O(steps·nnz). The paper's criticism is specific: PCA needs the
//! *mean-centered* matrix, and if the implementation materializes the
//! centering (as Mahout's SVD job would), `z → D` and the cost degrades
//! to O(N·D²)·steps. Both code paths are provided so Table 1's contrast is
//! measurable:
//!
//! * [`fit_implicit`] — centers through the [`CenteredSparse`] operator
//!   (mean propagation applied to Lanczos; what a careful implementation
//!   could do);
//! * [`fit_densified`] — materializes the dense centered matrix first
//!   (what the analyzed implementations do).

use linalg::decomp::lanczos::lanczos_svd;
use linalg::ops::CenteredSparse;
use linalg::{Mat, Prng, SparseMat};
use spca_core::model::PcaModel;
use spca_core::SpcaError;

fn check(y: &SparseMat, d: usize) -> spca_core::Result<()> {
    if y.rows() == 0 || y.cols() == 0 {
        return Err(SpcaError::EmptyInput);
    }
    if d > y.rows().min(y.cols()) {
        return Err(SpcaError::TooManyComponents {
            requested: d,
            available: y.rows().min(y.cols()),
        });
    }
    Ok(())
}

fn model_from_vt(vt: &Mat, d_in: usize, d: usize, mean: Vec<f64>) -> PcaModel {
    let mut c = Mat::zeros(d_in, d);
    for j in 0..d {
        for r in 0..d_in {
            c[(r, j)] = vt[(j, r)];
        }
    }
    PcaModel::new(c, mean, 1e-9)
}

/// PCA via Lanczos on the implicitly centered operator (sparse-friendly).
pub fn fit_implicit(y: &SparseMat, d: usize, extra_steps: usize, seed: u64) -> spca_core::Result<PcaModel> {
    check(y, d)?;
    let mean = y.col_means();
    let op = CenteredSparse::new(y, &mean);
    let mut rng = Prng::seed_from_u64(seed);
    let svd = lanczos_svd(&op, d, extra_steps, &mut rng)?;
    Ok(model_from_vt(&svd.vt, y.cols(), d, mean))
}

/// PCA via Lanczos on the *materialized* centered matrix — the dense
/// degradation the paper analyzes. Only sensible at small scale.
pub fn fit_densified(y: &SparseMat, d: usize, extra_steps: usize, seed: u64) -> spca_core::Result<PcaModel> {
    check(y, d)?;
    let mean = y.col_means();
    let mut dense = y.to_dense();
    dense.sub_row_vector(&mean);
    let mut rng = Prng::seed_from_u64(seed);
    let svd = lanczos_svd(&dense, d, extra_steps, &mut rng)?;
    Ok(model_from_vt(&svd.vt, y.cols(), d, mean))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> SparseMat {
        let mut rng = Prng::seed_from_u64(15);
        datasets::sparse_lowrank(&datasets::LowRankSpec::small_test(), &mut rng)
    }

    #[test]
    fn implicit_and_densified_agree() {
        let y = tiny_data();
        let a = fit_implicit(&y, 3, 12, 1).unwrap();
        let b = fit_densified(&y, 3, 12, 1).unwrap();
        for j in 0..3 {
            let cos = linalg::vector::dot(&a.components().col(j), &b.components().col(j)).abs();
            assert!(cos > 0.999, "component {j} cosine {cos}");
        }
    }

    #[test]
    fn matches_exact_svd() {
        let y = tiny_data();
        let model = fit_implicit(&y, 2, 20, 2).unwrap();
        let mut yc = y.to_dense();
        yc.sub_row_vector(&y.col_means());
        let svd = linalg::decomp::svd_jacobi(&yc).unwrap();
        for j in 0..2 {
            let got = model.components().col(j);
            let want: Vec<f64> = (0..y.cols()).map(|r| svd.vt[(j, r)]).collect();
            let cos = linalg::vector::dot(&got, &want).abs();
            assert!(cos > 0.99, "component {j} cosine {cos}");
        }
    }

    #[test]
    fn rejects_oversized_rank() {
        let y = SparseMat::from_triplets(3, 4, &[(0, 0, 1.0)]);
        assert!(matches!(
            fit_implicit(&y, 5, 2, 0),
            Err(SpcaError::TooManyComponents { .. })
        ));
    }
}
