//! Seeded synthetic datasets mirroring the paper's evaluation data.
//!
//! The paper evaluates on four real datasets (Section 5). None are
//! available here, so each generator below synthesizes data with the same
//! *structure* — the properties PCA behaviour actually depends on:
//! sparsity profile, dimensionality, value type, and a planted low-rank
//! signal whose recovery the accuracy metric can track.
//!
//! | Paper dataset | Shape (paper) | Structure | Generator |
//! |---|---|---|---|
//! | Tweets | 1.26B × 71.5K binary, ~94 GB sparse | Zipf word frequencies, short documents, latent topics | [`tweets`] |
//! | Bio-Text | 8.2M × 141K binary, ~4.9 GB sparse | Zipf, longer documents, latent topics | [`biotext`] |
//! | Diabetes | 353 × 65.7K real-valued NMR spectra | smooth peak structure + low-rank patient variation | [`diabetes`] |
//! | Images | 160M × 128 dense SIFT features | dense mixture of clusters in 128-d | [`images`] |
//!
//! All generators take an explicit [`linalg::Prng`] so every experiment is
//! reproducible from a seed, and row/column counts are free parameters so
//! the benches can sweep them the way the paper sweeps dataset sizes.

pub mod biotext;
pub mod diabetes;
pub mod images;
pub mod lowrank;
pub mod tweets;

pub use lowrank::{sparse_lowrank, LowRankSpec};
