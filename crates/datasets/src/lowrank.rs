//! The core topic-model generator for sparse binary matrices.
//!
//! Text-like term–document matrices (Tweets, Bio-Text) are generated from a
//! small latent topic model: each document mixes a couple of topics, each
//! topic prefers a subset of the vocabulary, and word popularity follows a
//! Zipf law. The topic structure plants a recoverable low-rank signal —
//! what PCA converges to — while the Zipf tail reproduces the extreme,
//! skewed sparsity that makes the paper's mean-propagation optimization
//! matter.

use linalg::rng::{Prng, ZipfTable};
use linalg::SparseMat;

/// Parameters of the sparse topic-model generator.
#[derive(Debug, Clone)]
pub struct LowRankSpec {
    /// Number of rows (documents).
    pub rows: usize,
    /// Number of columns (vocabulary size).
    pub cols: usize,
    /// Number of latent topics (the planted rank).
    pub topics: usize,
    /// Mean number of distinct words per document.
    pub words_per_row: f64,
    /// Probability that a word is drawn from the row's topics rather than
    /// the global background distribution. Higher = stronger signal.
    pub topic_affinity: f64,
    /// Zipf exponent of the background word distribution (~1 for text).
    pub zipf_exponent: f64,
}

impl LowRankSpec {
    /// A tiny spec for unit tests and doctests.
    pub fn small_test() -> Self {
        LowRankSpec {
            rows: 200,
            cols: 100,
            topics: 5,
            words_per_row: 8.0,
            topic_affinity: 0.7,
            zipf_exponent: 1.0,
        }
    }
}

/// Generates a sparse binary matrix from the topic model.
pub fn sparse_lowrank(spec: &LowRankSpec, rng: &mut Prng) -> SparseMat {
    sparse_lowrank_labeled(spec, rng).0
}

/// Like [`sparse_lowrank`], additionally returning each document's primary
/// topic — ground truth for clustering-flavoured evaluations (the paper
/// motivates PCA as the dimensionality-reduction step before k-means).
pub fn sparse_lowrank_labeled(spec: &LowRankSpec, rng: &mut Prng) -> (SparseMat, Vec<usize>) {
    assert!(spec.topics > 0, "need at least one topic");
    assert!(spec.cols > 0 && spec.rows > 0, "matrix must be non-empty");
    assert!(
        (0.0..=1.0).contains(&spec.topic_affinity),
        "topic_affinity must be a probability"
    );

    let background = ZipfTable::new(spec.cols, spec.zipf_exponent);
    // Each topic owns a contiguous-ish slice of "preferred" vocabulary,
    // sampled with its own Zipf table over a permuted alphabet so topics
    // overlap the popular words but differ in their tails.
    let topic_size = (spec.cols / spec.topics).max(1);
    let topic_table = ZipfTable::new(topic_size, spec.zipf_exponent.max(0.8));
    let topic_offsets: Vec<usize> =
        (0..spec.topics).map(|t| (t * topic_size) % spec.cols).collect();

    let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(spec.rows);
    let mut labels: Vec<usize> = Vec::with_capacity(spec.rows);
    for _ in 0..spec.rows {
        // 1–2 topics per document.
        let t1 = rng.index(spec.topics);
        labels.push(t1);
        let t2 = if rng.uniform() < 0.3 { rng.index(spec.topics) } else { t1 };
        // Word count: geometric-ish around the mean, at least 1.
        let mean = spec.words_per_row;
        let count = (mean * (0.5 + rng.uniform())).round().max(1.0) as usize;

        let mut cols: Vec<u32> = Vec::with_capacity(count);
        for _ in 0..count {
            let col = if rng.uniform() < spec.topic_affinity {
                let t = if rng.uniform() < 0.5 { t1 } else { t2 };
                (topic_offsets[t] + rng.zipf(&topic_table)) % spec.cols
            } else {
                rng.zipf(&background)
            };
            cols.push(col as u32);
        }
        // Binary presence: a word repeated in a document is still one
        // non-zero (the paper's matrices are 0/1 indicators).
        cols.sort_unstable();
        cols.dedup();
        rows.push(cols.into_iter().map(|c| (c, 1.0)).collect());
    }
    (SparseMat::from_rows(spec.rows, spec.cols, rows), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_binary_values() {
        let mut rng = Prng::seed_from_u64(1);
        let m = sparse_lowrank(&LowRankSpec::small_test(), &mut rng);
        assert_eq!((m.rows(), m.cols()), (200, 100));
        for r in 0..m.rows() {
            for (_, v) in m.row(r).iter() {
                assert_eq!(v, 1.0, "entries must be binary");
            }
        }
    }

    #[test]
    fn density_tracks_words_per_row() {
        let mut rng = Prng::seed_from_u64(2);
        let spec = LowRankSpec { rows: 500, cols: 1000, ..LowRankSpec::small_test() };
        let m = sparse_lowrank(&spec, &mut rng);
        let nnz_per_row = m.nnz() as f64 / 500.0;
        // Duplicates collapse, so the stored count sits below the sampled
        // word count but in the same regime.
        assert!(nnz_per_row > 3.0 && nnz_per_row < 9.0, "nnz/row = {nnz_per_row}");
        assert!(m.density() < 0.02);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = LowRankSpec::small_test();
        let a = sparse_lowrank(&spec, &mut Prng::seed_from_u64(7));
        let b = sparse_lowrank(&spec, &mut Prng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = sparse_lowrank(&spec, &mut Prng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let mut rng = Prng::seed_from_u64(3);
        let spec = LowRankSpec { rows: 2000, cols: 500, ..LowRankSpec::small_test() };
        let m = sparse_lowrank(&spec, &mut rng);
        let sums = m.col_sums();
        let mut sorted = sums.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top20: f64 = sorted[..20].iter().sum();
        let total: f64 = sorted.iter().sum();
        assert!(top20 / total > 0.25, "top-20 words carry {}", top20 / total);
    }

    #[test]
    fn planted_topics_give_low_rank_spectrum() {
        // The centered matrix should concentrate variance in roughly
        // `topics` directions: the top-5 singular values dominate the next 5.
        let mut rng = Prng::seed_from_u64(4);
        let spec = LowRankSpec {
            rows: 300,
            cols: 60,
            topics: 3,
            words_per_row: 10.0,
            topic_affinity: 0.9,
            zipf_exponent: 1.0,
        };
        let m = sparse_lowrank(&spec, &mut rng);
        let mut dense = m.to_dense();
        let mean = m.col_means();
        dense.sub_row_vector(&mean);
        let svd = linalg::decomp::svd_jacobi(&dense).unwrap();
        let head: f64 = svd.s[..3].iter().map(|s| s * s).sum();
        let tail: f64 = svd.s[3..13].iter().map(|s| s * s).sum();
        assert!(head > tail, "head {head} should dominate tail {tail}");
    }
}
