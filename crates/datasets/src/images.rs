//! Images-like dataset: dense SIFT descriptor vectors.
//!
//! The paper's Images matrix is 160M × 128 — dense, low-dimensional, real
//! valued: the one regime where MLlib-PCA *wins* in Table 2, because a
//! 128×128 covariance matrix is trivial for the driver. The generator
//! produces a mixture of Gaussian clusters in 128 dimensions (SIFT
//! descriptors cluster by visual word) with anisotropic within-cluster
//! covariance, all entries non-negative like real SIFT bins.

use linalg::{Mat, Prng, SparseMat};

/// SIFT descriptor dimensionality.
pub const SIFT_DIM: usize = 128;
/// Number of visual-word clusters.
const CLUSTERS: usize = 12;
/// Dominant within-cluster variance directions.
const CLUSTER_RANK: usize = 4;

/// Generates `n` SIFT-like descriptors of dimensionality `dim`
/// (use [`SIFT_DIM`] for the paper's shape).
pub fn generate(n: usize, dim: usize, rng: &mut Prng) -> Mat {
    assert!(dim >= CLUSTER_RANK, "dimensionality too small");
    // Cluster centers and their dominant variance directions.
    let centers: Vec<Vec<f64>> =
        (0..CLUSTERS).map(|_| (0..dim).map(|_| 20.0 + 20.0 * rng.uniform()).collect()).collect();
    let directions: Vec<Vec<Vec<f64>>> = (0..CLUSTERS)
        .map(|_| {
            (0..CLUSTER_RANK)
                .map(|_| {
                    let mut v = rng.normal_vec(dim);
                    linalg::vector::normalize(&mut v);
                    v
                })
                .collect()
        })
        .collect();

    let mut m = Mat::zeros(n, dim);
    for i in 0..n {
        let c = rng.index(CLUSTERS);
        let row = m.row_mut(i);
        row.copy_from_slice(&centers[c]);
        for dir in &directions[c] {
            let scale = 12.0 * rng.normal();
            linalg::vector::axpy(scale, dir, row);
        }
        for v in row.iter_mut() {
            *v = (*v + 2.0 * rng.normal()).clamp(0.0, 255.0);
        }
    }
    m
}

/// Dense descriptors stored as a [`SparseMat`] for sparse-input APIs.
pub fn generate_sparse(n: usize, dim: usize, rng: &mut Prng) -> SparseMat {
    SparseMat::from_dense(&generate(n, dim, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_dense_and_bounded() {
        let mut rng = Prng::seed_from_u64(40);
        let m = generate(200, SIFT_DIM, &mut rng);
        assert_eq!(m.cols(), 128);
        assert!(m.data().iter().all(|&v| (0.0..=255.0).contains(&v)));
        let nonzero = m.data().iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero as f64 / m.data().len() as f64 > 0.95);
    }

    #[test]
    fn cluster_structure_dominates_variance() {
        let mut rng = Prng::seed_from_u64(41);
        let m = generate(400, 64, &mut rng);
        let mean = m.col_means();
        let mut centered = m.clone();
        centered.sub_row_vector(&mean);
        let svd = linalg::decomp::svd_jacobi(&centered).unwrap();
        // Between-cluster + within-cluster structure: top ~16 directions
        // carry most of the energy, the rest is the 2.0-σ noise floor.
        let head: f64 = svd.s[..16].iter().map(|s| s * s).sum();
        let total: f64 = svd.s.iter().map(|s| s * s).sum();
        assert!(head / total > 0.6, "head fraction {}", head / total);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(10, 32, &mut Prng::seed_from_u64(42));
        let b = generate(10, 32, &mut Prng::seed_from_u64(42));
        assert!(a.approx_eq(&b, 0.0));
    }
}
