//! Tweets-like dataset: very short documents, huge skew.
//!
//! The paper's Tweets matrix is 1.26B × 71.5K with binary entries and ~7
//! words per tweet (94 GB ÷ 12 B/entry ÷ 1.26 B rows). The generator keeps
//! that per-row profile and lets experiments sweep rows/columns the way
//! Figures 5–7 do.

use linalg::{Prng, SparseMat};

use crate::lowrank::{sparse_lowrank, LowRankSpec};

/// Full-control spec for the Tweets-like generator.
pub fn spec(rows: usize, cols: usize) -> LowRankSpec {
    LowRankSpec {
        rows,
        cols,
        // Scale topic count gently with vocabulary so the planted rank
        // stays recoverable with d = 50 components at every sweep size.
        topics: (cols / 400).clamp(8, 40),
        words_per_row: 7.0,
        topic_affinity: 0.65,
        zipf_exponent: 1.05,
    }
}

/// Generates a Tweets-like binary term–document matrix.
pub fn generate(rows: usize, cols: usize, rng: &mut Prng) -> SparseMat {
    sparse_lowrank(&spec(rows, cols), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tweets_are_short_and_sparse() {
        let mut rng = Prng::seed_from_u64(10);
        let m = generate(1000, 2000, &mut rng);
        let words_per_tweet = m.nnz() as f64 / 1000.0;
        assert!(words_per_tweet > 3.0 && words_per_tweet < 9.0, "{words_per_tweet}");
        assert!(m.density() < 0.005);
    }

    #[test]
    fn column_sweep_changes_dimensionality_only() {
        let mut rng = Prng::seed_from_u64(11);
        let a = generate(500, 1000, &mut rng);
        let mut rng = Prng::seed_from_u64(11);
        let b = generate(500, 4000, &mut rng);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(b.cols(), 4000);
    }
}
