//! Diabetes-like dataset: NMR spectra of urine samples.
//!
//! The paper's Diabetes matrix is 353 patients × 65,669 frequencies of
//! real-valued resonance magnitudes — few rows, enormous dimensionality,
//! *dense real values* rather than binary indicators. The generator
//! synthesizes spectra as a shared baseline of Gaussian peaks whose heights
//! vary per patient through a small number of latent metabolic factors
//! (the recoverable low-rank signal), plus measurement noise.

use linalg::{Mat, Prng, SparseMat};

/// Number of latent metabolic factors driving peak-height variation.
const FACTORS: usize = 6;
/// Peaks per 1,000 frequencies.
const PEAK_DENSITY: f64 = 8.0;

/// Generates an `n_patients × n_freqs` spectra matrix (dense values).
pub fn generate(n_patients: usize, n_freqs: usize, rng: &mut Prng) -> Mat {
    assert!(n_freqs >= 16, "need a plausible frequency axis");
    let n_peaks = ((n_freqs as f64 / 1000.0) * PEAK_DENSITY).ceil().max(4.0) as usize;

    // Shared peak positions/widths/base heights.
    let centers: Vec<f64> = (0..n_peaks).map(|_| rng.uniform() * n_freqs as f64).collect();
    let widths: Vec<f64> =
        (0..n_peaks).map(|_| 2.0 + rng.uniform() * (n_freqs as f64 / 200.0)).collect();
    let base_heights: Vec<f64> = (0..n_peaks).map(|_| 1.0 + 4.0 * rng.uniform()).collect();
    // Loading of each peak on each latent factor.
    let loadings: Vec<Vec<f64>> =
        (0..n_peaks).map(|_| (0..FACTORS).map(|_| rng.normal() * 0.6).collect()).collect();

    let mut m = Mat::zeros(n_patients, n_freqs);
    for p in 0..n_patients {
        let factors: Vec<f64> = (0..FACTORS).map(|_| rng.normal()).collect();
        let row = m.row_mut(p);
        for (k, &c) in centers.iter().enumerate() {
            let mut height = base_heights[k];
            for (f, &load) in factors.iter().zip(&loadings[k]) {
                height += f * load;
            }
            let height = height.max(0.05);
            let w = widths[k];
            // Only evaluate the Gaussian within ±4σ of the peak.
            let lo = ((c - 4.0 * w).floor().max(0.0)) as usize;
            let hi = ((c + 4.0 * w).ceil() as usize).min(n_freqs);
            for (j, slot) in row.iter_mut().enumerate().take(hi).skip(lo) {
                let dx = (j as f64 - c) / w;
                *slot += height * (-0.5 * dx * dx).exp();
            }
        }
        for slot in row.iter_mut() {
            *slot += 0.02 * rng.normal().abs();
        }
    }
    m
}

/// Dense spectra as a [`SparseMat`] (every entry stored) for algorithms
/// that take sparse input. The paper's algorithms all accept this; the
/// density simply means the sparse optimizations buy nothing — as the
/// paper notes for its dense Images dataset.
pub fn generate_sparse(n_patients: usize, n_freqs: usize, rng: &mut Prng) -> SparseMat {
    SparseMat::from_dense(&generate(n_patients, n_freqs, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectra_are_nonnegative_and_dense() {
        let mut rng = Prng::seed_from_u64(30);
        let m = generate(20, 500, &mut rng);
        assert!(m.data().iter().all(|&v| v >= 0.0));
        let nonzero = m.data().iter().filter(|&&v| v > 1e-9).count();
        assert!(nonzero as f64 / m.data().len() as f64 > 0.9, "spectra should be dense");
    }

    #[test]
    fn patients_share_peak_positions() {
        // Column means should show clear peaks: max ≫ median.
        let mut rng = Prng::seed_from_u64(31);
        let m = generate(30, 800, &mut rng);
        let means = m.col_means();
        let mut sorted = means.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        assert!(max > 3.0 * median, "max {max} vs median {median}");
    }

    #[test]
    fn latent_factors_create_low_rank_variation() {
        let mut rng = Prng::seed_from_u64(32);
        let m = generate(60, 300, &mut rng);
        let mean = m.col_means();
        let mut centered = m.clone();
        centered.sub_row_vector(&mean);
        let svd = linalg::decomp::svd_jacobi(&centered).unwrap();
        let head: f64 = svd.s[..FACTORS].iter().map(|s| s * s).sum();
        let total: f64 = svd.s.iter().map(|s| s * s).sum();
        assert!(head / total > 0.8, "factors explain {}", head / total);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(5, 100, &mut Prng::seed_from_u64(33));
        let b = generate(5, 100, &mut Prng::seed_from_u64(33));
        assert!(a.approx_eq(&b, 0.0));
    }
}
