//! Bio-Text-like dataset: longer biomedical documents.
//!
//! The paper's Bio-Text matrix is 8.2M × 141K binary with ~53 distinct
//! words per document (4.9 GB ÷ 12 B ÷ 8.2 M rows) — an order of magnitude
//! denser per row than Tweets, which is why the paper observes different
//! intermediate-data ratios between the two (Section 5.2).

use linalg::{Prng, SparseMat};

use crate::lowrank::{sparse_lowrank, LowRankSpec};

/// Full-control spec for the Bio-Text-like generator.
pub fn spec(rows: usize, cols: usize) -> LowRankSpec {
    LowRankSpec {
        rows,
        cols,
        topics: (cols / 250).clamp(10, 60),
        words_per_row: 50.0,
        topic_affinity: 0.7,
        zipf_exponent: 1.0,
    }
}

/// Generates a Bio-Text-like binary term–document matrix.
pub fn generate(rows: usize, cols: usize, rng: &mut Prng) -> SparseMat {
    sparse_lowrank(&spec(rows, cols), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_denser_than_tweets() {
        let mut rng = Prng::seed_from_u64(20);
        let bio = generate(500, 2000, &mut rng);
        let mut rng = Prng::seed_from_u64(20);
        let tw = crate::tweets::generate(500, 2000, &mut rng);
        let bio_per_row = bio.nnz() as f64 / 500.0;
        let tw_per_row = tw.nnz() as f64 / 500.0;
        assert!(
            bio_per_row > 3.0 * tw_per_row,
            "bio {bio_per_row} should be much denser than tweets {tw_per_row}"
        );
    }

    #[test]
    fn still_sparse_overall() {
        let mut rng = Prng::seed_from_u64(21);
        let m = generate(300, 5000, &mut rng);
        assert!(m.density() < 0.02);
    }
}
