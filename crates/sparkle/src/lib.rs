//! "Sparkle": a Spark-like engine over the simulated cluster.
//!
//! Models the Spark 1.0 execution environment of the paper's sPCA-Spark and
//! MLlib-PCA (Section 4.2):
//!
//! * [`Rdd`] — a partitioned, in-memory dataset. Transformations launch
//!   stages on the simulated cluster; iterating over a cached RDD touches
//!   memory only (no per-iteration disk I/O — the property that makes the
//!   Spark implementations fast), except for the spill fraction when the
//!   dataset exceeds the cluster's aggregate memory.
//! * [`Rdd::aggregate`] — accumulator-style aggregation: each task folds
//!   into a per-task local value, and only those partials travel to the
//!   driver. This is exactly Algorithm 5's `YtXSum`/`XtXSum` accumulators
//!   ("the partial results are summed up in the same map operation …
//!   eliminating the need for reduce operations").
//! * Driver memory — values collected or aggregated to the driver can be
//!   tracked against the configured driver memory through
//!   [`dcluster::SimCluster::alloc_driver`]; MLlib-PCA's D×D Gram matrix
//!   failing past the driver cap is the paper's Figure 7/8 failure mode.
//!
//! Unlike real Spark, transformations here are *eager* — each returns a
//! materialized RDD. For the linear dataflows of every algorithm in this
//! reproduction the distinction is unobservable in the metrics.

pub mod broadcast;
pub mod context;
pub mod rdd;

pub use broadcast::Broadcast;
pub use context::SparkleContext;
pub use rdd::{tree_merge, Lineage, Rdd};
