//! The driver-side entry point, analogous to `SparkContext`.

use std::sync::Arc;

use dcluster::SimCluster;

use crate::rdd::Rdd;

/// Driver context: creates RDDs on a simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct SparkleContext<'a> {
    cluster: &'a SimCluster,
    /// Virtual per-task launch overhead. Spark tasks launch in
    /// milliseconds — three orders of magnitude below Hadoop slots, which
    /// is half the story of the MapReduce-vs-Spark columns of Table 2.
    task_overhead_secs: f64,
}

impl<'a> SparkleContext<'a> {
    /// Context with Spark-like defaults (5 ms task overhead).
    pub fn new(cluster: &'a SimCluster) -> Self {
        SparkleContext { cluster, task_overhead_secs: 0.005 }
    }

    /// Overrides the per-task overhead.
    pub fn with_task_overhead(mut self, secs: f64) -> Self {
        self.task_overhead_secs = secs;
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &'a SimCluster {
        self.cluster
    }

    /// Per-task overhead used for stages launched from this context.
    pub fn task_overhead_secs(&self) -> f64 {
        self.task_overhead_secs
    }

    /// Distributes a collection across `partitions` partitions.
    pub fn parallelize<T: Send + Sync>(&self, data: Vec<T>, partitions: usize) -> Rdd<'a, T> {
        assert!(partitions > 0, "parallelize: need at least one partition");
        let n = data.len();
        let base = n / partitions;
        let extra = n % partitions;
        let mut parts = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for p in 0..partitions {
            let len = base + usize::from(p < extra);
            parts.push(Arc::new(it.by_ref().take(len).collect::<Vec<T>>()));
        }
        Rdd::from_parts(self.cluster, self.task_overhead_secs, parts)
    }

    /// Builds an RDD from pre-partitioned data (how a row-partitioned
    /// matrix enters the engine).
    pub fn from_partitions<T: Send + Sync>(&self, parts: Vec<Vec<T>>) -> Rdd<'a, T> {
        assert!(!parts.is_empty(), "from_partitions: need at least one partition");
        Rdd::from_parts(
            self.cluster,
            self.task_overhead_secs,
            parts.into_iter().map(Arc::new).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;

    #[test]
    fn parallelize_balances_partitions() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0..10).collect(), 4);
        assert_eq!(rdd.num_partitions(), 4);
        let sizes: Vec<usize> = rdd.partition_sizes();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn parallelize_with_more_partitions_than_elements() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize(vec![1, 2], 5);
        assert_eq!(rdd.num_partitions(), 5);
        assert_eq!(rdd.count(), 2);
    }

    #[test]
    fn from_partitions_preserves_layout() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.from_partitions(vec![vec![1, 2], vec![3]]);
        assert_eq!(rdd.partition_sizes(), vec![2, 1]);
    }
}
