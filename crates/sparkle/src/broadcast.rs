//! Broadcast variables.
//!
//! Spark ships read-only values (the paper's in-memory `CM` matrix,
//! Section 3.3) to every executor once per broadcast; workers then read
//! their local copy. The simulated equivalent charges the network one copy
//! per node at creation and hands out cheap `Arc` clones thereafter.

use std::ops::Deref;
use std::sync::Arc;

use dcluster::SimCluster;
use linalg::Wire;

/// A value broadcast to every node of the cluster.
#[derive(Debug, Clone)]
pub struct Broadcast<T> {
    value: Arc<T>,
    bytes: u64,
}

impl<T: Wire> Broadcast<T> {
    /// Ships `value` to every node, charging the transfer to the cluster's
    /// intermediate-data meters at its encoded size (or the legacy
    /// estimate, per the cluster's sizing policy).
    pub fn new(cluster: &SimCluster, value: T) -> Self {
        let bytes = cluster.wire_size(&value);
        cluster.charge_broadcast(bytes);
        if obs::enabled() {
            cluster.registry().counter("sparkle.broadcast_bytes").add(bytes);
        }
        Broadcast { value: Arc::new(value), bytes }
    }

    /// Payload size of one copy, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;

    #[test]
    fn creation_charges_one_copy_per_node() {
        let cluster = SimCluster::new(ClusterConfig::paper_cluster()); // 8 nodes
        // Encoded payload: 1-byte varint length + 100 raw f64s.
        let b = Broadcast::new(&cluster, vec![0.0_f64; 100]);
        assert_eq!(b.size_bytes(), 801);
        assert_eq!(cluster.metrics().network_bytes, 801 * 8);
        assert_eq!(b.len(), 100, "deref reaches the payload");
    }

    #[test]
    fn estimated_sizing_restores_legacy_broadcast_bytes() {
        let cluster =
            SimCluster::new(ClusterConfig::paper_cluster().with_estimated_sizes());
        // Legacy flat estimate: 8-byte length prefix + 100 f64s.
        let b = Broadcast::new(&cluster, vec![0.0_f64; 100]);
        assert_eq!(b.size_bytes(), 808);
        assert_eq!(cluster.metrics().network_bytes, 808 * 8);
    }

    #[test]
    fn clones_are_free() {
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let b = Broadcast::new(&cluster, vec![1.0_f64; 10]);
        let before = cluster.metrics().network_bytes;
        let c = b.clone();
        assert_eq!(cluster.metrics().network_bytes, before, "clone must not re-ship");
        assert_eq!(*c, *b);
    }
}
