//! Resilient distributed datasets (eager, simulated).

use std::sync::Arc;

use dcluster::{SimCluster, StageOptions};
use linalg::bytes::ByteSized;

/// Deterministic pairwise tree reduction: adjacent values merge in rounds
/// until one remains. The merge structure is a function of the input count
/// only — never of worker count or completion order — so drivers reducing
/// per-partition partials this way keep the bit-determinism contract while
/// cutting the reduction's dependency depth from `P − 1` to `⌈log₂ P⌉`.
///
/// An empty input returns `init()`; a single value is returned unmerged
/// (matching the old sequential fold's semantics for those cases).
pub fn tree_merge<A, FI, FM>(mut parts: Vec<A>, init: FI, merge: FM) -> A
where
    FI: FnOnce() -> A,
    FM: Fn(&mut A, A),
{
    if parts.is_empty() {
        return init();
    }
    while parts.len() > 1 {
        let mut next = Vec::with_capacity((parts.len() + 1) / 2);
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                merge(&mut a, b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.into_iter().next().expect("non-empty after rounds")
}

/// A partitioned in-memory dataset bound to a simulated cluster.
///
/// Cloning is cheap (partitions are shared `Arc`s) — the pattern for
/// iterative algorithms is to build the input RDD once, `persist` it, and
/// run one narrow stage per iteration against it, exactly how sPCA-Spark
/// keeps `Y` cached across EM iterations.
#[derive(Debug, Clone)]
pub struct Rdd<'a, T> {
    cluster: &'a SimCluster,
    task_overhead_secs: f64,
    partitions: Vec<Arc<Vec<T>>>,
    /// Bytes that do not fit in aggregate cluster memory and are re-read
    /// from disk by every stage over this RDD (0 unless `persist` finds the
    /// dataset oversized).
    spill_bytes: u64,
}

impl<'a, T: Send + Sync> Rdd<'a, T> {
    pub(crate) fn from_parts(
        cluster: &'a SimCluster,
        task_overhead_secs: f64,
        partitions: Vec<Arc<Vec<T>>>,
    ) -> Self {
        Rdd { cluster, task_overhead_secs, partitions, spill_bytes: 0 }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Element count per partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.len()).collect()
    }

    /// Total number of elements. Free — the layout is known to the driver.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// The cluster this RDD lives on.
    pub fn cluster(&self) -> &'a SimCluster {
        self.cluster
    }

    fn stage_options(&self, label: &str) -> StageOptions {
        StageOptions::new(label).with_task_overhead(self.task_overhead_secs)
    }

    /// Charges the per-stage disk penalty for the cached-but-spilled
    /// fraction, if any.
    fn charge_spill(&self) {
        if self.spill_bytes > 0 {
            self.cluster.charge_dfs_read(self.spill_bytes);
            if obs::enabled() {
                self.cluster.registry().counter("sparkle.spill_bytes").add(self.spill_bytes);
            }
        }
    }

    /// Runs one task per partition, each producing a new output partition.
    /// The fundamental narrow transformation; everything else builds on it.
    pub fn map_partitions<U, F>(&self, label: &str, f: F) -> Rdd<'a, U>
    where
        U: Send + Sync,
        F: Fn(&[T]) -> Vec<U> + Sync,
    {
        self.charge_spill();
        let f = &f;
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|p| {
                let p = Arc::clone(p);
                move || f(&p)
            })
            .collect();
        let outputs = self.cluster.run_stage(self.stage_options(label), tasks);
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            partitions: outputs.into_iter().map(Arc::new).collect(),
            spill_bytes: 0,
        }
    }

    /// [`Self::map_partitions`] with the partition's index passed to the
    /// task — Spark's `mapPartitionsWithIndex`. The index comes from the
    /// RDD's layout, not from execution order, so per-partition seeding
    /// derived from it is deterministic under any scheduling.
    pub fn map_partitions_with_index<U, F>(&self, label: &str, f: F) -> Rdd<'a, U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        self.charge_spill();
        let f = &f;
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(idx, p)| {
                let p = Arc::clone(p);
                move || f(idx, &p)
            })
            .collect();
        let outputs = self.cluster.run_stage(self.stage_options(label), tasks);
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            partitions: outputs.into_iter().map(Arc::new).collect(),
            spill_bytes: 0,
        }
    }

    /// Element-wise map.
    pub fn map<U, F>(&self, label: &str, f: F) -> Rdd<'a, U>
    where
        U: Send + Sync,
        F: Fn(&T) -> U + Sync,
    {
        self.map_partitions(label, |part| part.iter().map(&f).collect())
    }

    /// Keeps the elements satisfying the predicate.
    pub fn filter<F>(&self, label: &str, f: F) -> Rdd<'a, T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        self.map_partitions(label, |part| part.iter().filter(|t| f(t)).cloned().collect())
    }

    /// Accumulator-style aggregation (Spark `aggregate` / the paper's
    /// Algorithm 5 accumulators): each task folds its partition into a
    /// fresh local value (`init` + `fold`), then the per-task partials —
    /// and only those — cross the network to the driver, where `merge`
    /// combines them.
    ///
    /// Returns the merged value together with the number of accumulator
    /// bytes that travelled, so callers can report it (sPCA's 131 MB of
    /// intermediate data on Tweets is exactly this number).
    pub fn aggregate<A, FI, FF, FM>(
        &self,
        label: &str,
        init: FI,
        fold: FF,
        merge: FM,
    ) -> (A, u64)
    where
        A: Send + ByteSized,
        FI: Fn() -> A + Sync,
        FF: Fn(&mut A, &T) + Sync,
        FM: Fn(&mut A, A),
    {
        self.charge_spill();
        let init = &init;
        let fold = &fold;
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|p| {
                let p = Arc::clone(p);
                move || {
                    let mut acc = init();
                    for t in p.iter() {
                        fold(&mut acc, t);
                    }
                    acc
                }
            })
            .collect();
        let partials = self.cluster.run_stage(self.stage_options(label), tasks);
        self.reduce_partials(partials, init, merge)
    }

    /// Partition-at-a-time aggregation: like [`Self::aggregate`], but each
    /// task hands its *whole partition slice* to `fold_part` instead of
    /// folding element by element. This is the entry point of the batched
    /// EM path — the fold can assemble the slice into a block and run the
    /// blocked kernels over it, instead of paying per-row dispatch.
    pub fn aggregate_partitions<A, FI, FF, FM>(
        &self,
        label: &str,
        init: FI,
        fold_part: FF,
        merge: FM,
    ) -> (A, u64)
    where
        A: Send + ByteSized,
        FI: Fn() -> A + Sync,
        FF: Fn(&mut A, &[T]) + Sync,
        FM: Fn(&mut A, A),
    {
        self.charge_spill();
        let init = &init;
        let fold_part = &fold_part;
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|p| {
                let p = Arc::clone(p);
                move || {
                    let mut acc = init();
                    fold_part(&mut acc, &p);
                    acc
                }
            })
            .collect();
        let partials = self.cluster.run_stage(self.stage_options(label), tasks);
        self.reduce_partials(partials, init, merge)
    }

    /// Driver-side reduction shared by the two aggregates: charge the
    /// accumulator bytes, then [`tree_merge`] the partials (pairwise rounds
    /// — a function of the partition count only, so any worker count
    /// produces the same result).
    fn reduce_partials<A, FI, FM>(&self, partials: Vec<A>, init: FI, merge: FM) -> (A, u64)
    where
        A: ByteSized,
        FI: Fn() -> A,
        FM: Fn(&mut A, A),
    {
        let bytes: u64 = partials.iter().map(ByteSized::size_bytes).sum();
        self.cluster.charge_network(bytes);
        if obs::enabled() {
            self.cluster.registry().counter("sparkle.accumulator_bytes").add(bytes);
        }
        (tree_merge(partials, init, merge), bytes)
    }

    /// Copies every element to the driver, charging the transfer.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone + ByteSized,
    {
        self.charge_spill();
        let mut out = Vec::with_capacity(self.count());
        for p in &self.partitions {
            out.extend(p.iter().cloned());
        }
        let bytes: u64 = out.iter().map(ByteSized::size_bytes).sum();
        self.cluster.charge_network(bytes);
        out
    }

    /// Marks the RDD as cached and accounts for the fraction that does not
    /// fit in the cluster's aggregate memory: that spill is re-read from
    /// disk by every subsequent stage over this RDD. Returns the dataset's
    /// size in bytes.
    ///
    /// This is the paper's point that sPCA's small footprint "allows for
    /// the analysis of much larger datasets in the limited aggregate memory
    /// of the cluster".
    pub fn persist(&mut self) -> u64
    where
        T: ByteSized,
    {
        let total: u64 = self
            .partitions
            .iter()
            .map(|p| p.iter().map(ByteSized::size_bytes).sum::<u64>())
            .sum();
        let memory = self.cluster.config().total_memory();
        self.spill_bytes = total.saturating_sub(memory);
        total
    }

    /// Spill bytes charged per stage (0 if the dataset fits in memory).
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Concatenates two RDDs on the same cluster (partition lists are
    /// appended; no data moves).
    pub fn union(&self, other: &Rdd<'a, T>) -> Rdd<'a, T> {
        assert!(
            std::ptr::eq(self.cluster, other.cluster),
            "union: RDDs live on different clusters"
        );
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            partitions,
            spill_bytes: self.spill_bytes + other.spill_bytes,
        }
    }

    /// Bernoulli sample of the elements with probability `fraction`,
    /// seeded — the primitive behind sPCA-SG's warm-up sample.
    pub fn sample(&self, label: &str, fraction: f64, seed: u64) -> Rdd<'a, T>
    where
        T: Clone,
    {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be a probability");
        // One independent stream per partition, seeded from the partition's
        // *layout* index — not from a shared counter bumped during parallel
        // execution, whose value would depend on task scheduling order.
        self.map_partitions_with_index(label, move |pidx, part| {
            let mut rng = linalg::Prng::seed_from_u64(seed ^ ((pidx as u64).wrapping_mul(0x9e37)));
            part.iter().filter(|_| rng.uniform() < fraction).cloned().collect()
        })
    }

    /// Zips two RDDs with identical partitioning, partition by partition
    /// (Spark's `zipPartitions`) — the join pattern Mahout's Bt job uses
    /// to align `Q` rows with input rows.
    pub fn zip_partitions<U, V, F>(&self, label: &str, other: &Rdd<'a, U>, f: F) -> Rdd<'a, V>
    where
        U: Send + Sync,
        V: Send + Sync,
        F: Fn(&[T], &[U]) -> Vec<V> + Sync,
    {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip_partitions: partition counts differ"
        );
        self.charge_spill();
        other.charge_spill();
        let f = &f;
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .zip(&other.partitions)
            .map(|(a, b)| {
                let a = Arc::clone(a);
                let b = Arc::clone(b);
                move || f(&a, &b)
            })
            .collect();
        let outputs = self.cluster.run_stage(self.stage_options(label), tasks);
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            partitions: outputs.into_iter().map(Arc::new).collect(),
            spill_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SparkleContext;
    use dcluster::ClusterConfig;

    fn cluster() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    #[test]
    fn map_and_collect_roundtrip() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..100).collect(), 8);
        let doubled = rdd.map("double", |x| x * 2);
        let out = doubled.collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn filter_keeps_matching() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..20).collect(), 3);
        let evens = rdd.filter("evens", |x| x % 2 == 0);
        assert_eq!(evens.count(), 10);
    }

    #[test]
    fn aggregate_sums_partials_and_charges_network() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((1_u64..=100).collect(), 4);
        let (sum, bytes) = rdd.aggregate(
            "sum",
            || 0_u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(sum, 5050);
        // 4 partials of 8 bytes each.
        assert_eq!(bytes, 32);
        assert_eq!(c.metrics().network_bytes, 32);
    }

    #[test]
    fn aggregate_of_empty_rdd_returns_init() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize(Vec::<u64>::new(), 2);
        let (sum, _) = rdd.aggregate("sum", || 7_u64, |a, x| *a += x, |a, b| *a += b);
        assert_eq!(sum, 7 + 7, "two empty partials merge into init+init");
    }

    #[test]
    fn collect_charges_transfer_bytes() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..10).collect(), 2);
        let _ = rdd.collect();
        assert_eq!(c.metrics().network_bytes, 80);
    }

    #[test]
    fn persist_detects_oversized_dataset_and_charges_spill() {
        let small = SimCluster::new(
            ClusterConfig::paper_cluster().with_nodes(1).with_memory_per_node(100),
        );
        let ctx = SparkleContext::new(&small);
        let mut rdd = ctx.parallelize((0_u64..50).collect(), 2); // 400 B
        let total = rdd.persist();
        assert_eq!(total, 400);
        assert_eq!(rdd.spill_bytes(), 300);
        let before = small.metrics().dfs_bytes_read;
        let _ = rdd.map("touch", |x| *x);
        assert_eq!(small.metrics().dfs_bytes_read - before, 300);
    }

    #[test]
    fn persist_fits_in_memory_means_no_spill() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let mut rdd = ctx.parallelize((0_u64..50).collect(), 2);
        rdd.persist();
        assert_eq!(rdd.spill_bytes(), 0);
        let _ = rdd.map("touch", |x| *x);
        assert_eq!(c.metrics().dfs_bytes_read, 0);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..12).collect(), 3);
        let sums = rdd.map_partitions("psum", |part| vec![part.iter().sum::<u64>()]);
        assert_eq!(sums.count(), 3);
        let total: u64 = sums.collect().iter().sum();
        assert_eq!(total, 66);
    }

    #[test]
    fn union_concatenates_partitions() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let a = ctx.parallelize((0_u64..5).collect(), 2);
        let b = ctx.parallelize((5_u64..8).collect(), 1);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect(), (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn sample_is_seeded_and_roughly_proportional() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..10_000).collect(), 4);
        let s1 = rdd.sample("s", 0.2, 9);
        let s2 = rdd.sample("s", 0.2, 9);
        assert_eq!(s1.collect(), s2.collect(), "same seed, same sample");
        let count = s1.count() as f64;
        assert!((count / 10_000.0 - 0.2).abs() < 0.03, "got fraction {}", count / 10_000.0);
        let s3 = rdd.sample("s", 0.2, 10);
        assert_ne!(s1.collect(), s3.collect(), "different seed, different sample");
    }

    #[test]
    fn tree_merge_covers_every_count() {
        assert_eq!(tree_merge(Vec::<u64>::new(), || 9, |a, b| *a += b), 9);
        for n in 1..=17u64 {
            let parts: Vec<u64> = (1..=n).collect();
            assert_eq!(tree_merge(parts, || 0, |a, b| *a += b), n * (n + 1) / 2);
        }
        // The merge structure depends only on the count: pairwise rounds.
        let order = std::cell::RefCell::new(Vec::new());
        let _ = tree_merge(
            vec!["a".to_string(), "b".into(), "c".into(), "d".into(), "e".into()],
            String::new,
            |a, b| {
                order.borrow_mut().push(format!("{a}+{b}"));
                a.push_str(&b);
            },
        );
        assert_eq!(
            order.into_inner(),
            vec!["a+b", "c+d", "ab+cd", "abcd+e"],
            "fixed pairwise rounds"
        );
    }

    #[test]
    fn map_partitions_with_index_sees_layout_index() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.from_partitions(vec![vec![10_u64], vec![20, 21], vec![30]]);
        let tagged = rdd.map_partitions_with_index("tag", |idx, part| {
            part.iter().map(|x| (idx as u64, *x)).collect::<Vec<_>>()
        });
        assert_eq!(tagged.collect(), vec![(0, 10), (1, 20), (1, 21), (2, 30)]);
    }

    #[test]
    fn sample_is_identical_across_worker_counts() {
        use linalg::WorkerPool;
        let run_with = |workers: usize| {
            let c = SimCluster::new_with_pool(
                ClusterConfig::paper_cluster(),
                Arc::new(WorkerPool::new(workers)),
            );
            let ctx = SparkleContext::new(&c);
            let rdd = ctx.parallelize((0_u64..5_000).collect(), 7);
            rdd.sample("s", 0.3, 42).collect()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2), "1 vs 2 workers");
        assert_eq!(one, run_with(8), "1 vs 8 workers");
    }

    #[test]
    fn aggregate_partitions_matches_elementwise_aggregate() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((1_u64..=100).collect(), 5);
        let (by_elem, bytes_elem) =
            rdd.aggregate("sum", || 0_u64, |a, x| *a += x, |a, b| *a += b);
        let (by_part, bytes_part) = rdd.aggregate_partitions(
            "psum",
            || 0_u64,
            |a, part| *a += part.iter().sum::<u64>(),
            |a, b| *a += b,
        );
        assert_eq!(by_elem, by_part);
        assert_eq!(bytes_elem, bytes_part, "same partial count, same accumulator bytes");
    }

    #[test]
    fn zip_partitions_aligns_by_partition() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let a = ctx.from_partitions(vec![vec![1_u64, 2], vec![3]]);
        let b = ctx.from_partitions(vec![vec![10_u64, 20], vec![30]]);
        let z = a.zip_partitions("zip", &b, |xs, ys| {
            xs.iter().zip(ys).map(|(x, y)| x + y).collect::<Vec<u64>>()
        });
        assert_eq!(z.collect(), vec![11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "partition counts differ")]
    fn zip_partitions_rejects_mismatched_layout() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let a = ctx.parallelize((0_u64..4).collect(), 2);
        let b = ctx.parallelize((0_u64..4).collect(), 4);
        let _ = a.zip_partitions("zip", &b, |x, _| x.to_vec());
    }

    #[test]
    fn stages_are_recorded_with_labels() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..4).collect(), 2);
        let _ = rdd.map("step-one", |x| x + 1).map("step-two", |x| x * 2);
        let labels: Vec<String> = c.metrics().stages.iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels, vec!["step-one".to_string(), "step-two".to_string()]);
    }
}
